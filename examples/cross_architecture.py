#!/usr/bin/env python3
"""Why memory unification exists: the Figure 4 layout problem, live.

Shows (1) the same C struct laid out differently by different ABIs — the
paper's Figure 4 uses ``Move { char from, to; double score; }`` on IA32 vs
ARM — (2) address-size and endianness differences across targets, and
(3) an offload session between an ARM32 phone and an x86-64 server whose
output is correct *because* the unified layout is installed.

Run:  python examples/cross_architecture.py
"""

from repro import (FAST_WIFI, CompilerOptions, NativeOffloaderCompiler,
                   OffloadSession, compile_c, profile_module, run_local)
from repro.targets import ARM32, MIPS32BE, X86, X86_64, DataLayout

SOURCE = r"""
typedef struct { char from, to; double score; } Move;
typedef struct { char tag; void *payload; int len; } Packet;

Move *moves;
int nmoves;

double total_score(void) {
    double s = 0.0;
    int i;
    for (i = 0; i < nmoves; i++) s += moves[i].score;
    return s;
}

int main() {
    int i;
    scanf("%d", &nmoves);
    moves = (Move*) malloc(nmoves * sizeof(Move));
    for (i = 0; i < nmoves; i++) {
        moves[i].from = (char)i;
        moves[i].to = (char)(i + 1);
        moves[i].score = i * 0.5;
    }
    printf("total %.1f\n", total_score());
    return 0;
}
"""


def show_layouts() -> None:
    module = compile_c(SOURCE, "layouts")
    print("Struct layouts per target ABI (Figure 4):")
    for struct_name in ("Move", "Packet"):
        struct = module.struct(struct_name)
        print(f"\n  struct {struct_name}:")
        for arch in (ARM32, X86, X86_64, MIPS32BE):
            layout = DataLayout(arch).struct_layout(struct)
            fields = ", ".join(
                f"{name}@{off}" for (name, _), off
                in zip(struct.fields, layout.offsets))
            print(f"    {arch.name:9s} size={layout.size:3d} "
                  f"ptr={arch.pointer_bytes}B {arch.endianness:6s}  "
                  f"{fields}")
    print("\n  -> IA32 packs Move.score at offset 4 (4-byte double "
          "alignment);")
    print("     ARM aligns it to 8.  Same virtual address, different "
          "bytes —")
    print("     which is why realignment must impose the mobile layout "
          "on the server.")


def run_cross(arch_mobile, arch_server) -> None:
    module = compile_c(SOURCE, "layouts", target=arch_mobile)
    profile = profile_module(module, arch=arch_mobile, stdin=b"2000\n")
    options = CompilerOptions(mobile_arch=arch_mobile,
                              server_arch=arch_server)
    program = NativeOffloaderCompiler(options).compile(module, profile)
    local = run_local(module, arch=arch_mobile, stdin=b"6000\n")
    session = OffloadSession(program, FAST_WIFI, stdin=b"6000\n")
    result = session.run()
    report = program.unification
    match = "OK" if result.stdout == local.stdout else "MISMATCH"
    print(f"\n{arch_mobile.name} -> {arch_server.name}: output {match}; "
          f"realigned structs: {report.realigned_structs or 'none'}; "
          f"pointer conversion: {report.needs_pointer_conversion}; "
          f"endianness translation: {report.needs_endianness_translation}")
    print(f"  server pointer conversions: "
          f"{session.server.pointer_conversions}, "
          f"endian swaps: {session.server.endian_swaps}")


def main() -> None:
    show_layouts()
    run_cross(ARM32, X86_64)      # address-size conversion (32 -> 64 bit)
    run_cross(ARM32, X86)         # layout realignment (Figure 4's case)
    run_cross(MIPS32BE, X86_64)   # endianness translation, big -> little


if __name__ == "__main__":
    main()
