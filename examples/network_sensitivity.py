#!/usr/bin/env python3
"""Network sensitivity: where does offloading stop paying off?

Sweeps link bandwidth for one communication-heavy program (164.gzip) and
one compute-bound program (456.hmmer), showing the dynamic performance
estimator switching between offloading and local execution — the paper's
Section 5.1 point that the runtime "can avoid offloading under unfavorable
situations such as slow network connection".

Run:  python examples/network_sensitivity.py
"""

from repro import (CompilerOptions, NativeOffloaderCompiler, NetworkModel,
                   OffloadSession, profile_module, run_local)
from repro.workloads import workload

BANDWIDTHS_MBPS = [10, 20, 40, 80, 160, 320, 640]


def sweep(name: str) -> None:
    spec = workload(name)
    module = spec.module()
    profile = profile_module(module, stdin=spec.profile_stdin,
                             files=spec.profile_files)
    program = NativeOffloaderCompiler(CompilerOptions()).compile(
        module, profile)
    local = run_local(module, stdin=spec.eval_stdin, files=spec.eval_files)
    print(f"\n{name}  (targets: {', '.join(program.target_names())}, "
          f"local {local.seconds * 1e3:.1f} ms)")
    print(f"{'BW (Mbps)':>10s} {'time (ms)':>10s} {'speedup':>8s} "
          f"{'offloaded':>10s}")
    for mbps in BANDWIDTHS_MBPS:
        network = NetworkModel(f"{mbps}Mbps", bandwidth_bps=mbps * 1e6,
                               latency_s=2e-3, slow=mbps < 100)
        session = OffloadSession(program, network, stdin=spec.eval_stdin,
                                 files=spec.eval_files)
        result = session.run()
        assert result.stdout == local.stdout
        print(f"{mbps:>10d} {result.total_seconds * 1e3:>10.1f} "
              f"{local.seconds / result.total_seconds:>7.2f}x "
              f"{result.offloaded_invocations:>4d}/"
              f"{len(result.invocations):<4d}")


def main() -> None:
    print("Dynamic estimation across link speeds "
          "(Equation 1 with run-time values):")
    sweep("456.hmmer")   # compute-bound: offloads even on slow links
    sweep("164.gzip")    # comm-heavy: declines below the crossover


if __name__ == "__main__":
    main()
