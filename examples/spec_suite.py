#!/usr/bin/env python3
"""Run (a subset of) the SPEC-like evaluation suite and print
Figure 6(a)/(b)-style results.

Run:  python examples/spec_suite.py [workload ...]
      python examples/spec_suite.py --all          # all 17 (several min)

Without arguments a representative 5-program subset runs: one near-ideal
program (456.hmmer), one loop target (183.equake), one communication-heavy
program (164.gzip), one remote-I/O program (300.twolf) and one
function-pointer-heavy program (458.sjeng).
"""

import sys

from repro.eval import (evaluate_suite, figure6a_execution_time,
                        figure6b_battery, geomean_row, render_figure6)
from repro.workloads import spec_names

DEFAULT_SUBSET = ["456.hmmer", "183.equake", "164.gzip", "300.twolf",
                  "458.sjeng"]


def main() -> None:
    args = sys.argv[1:]
    if "--all" in args:
        names = spec_names()
    elif args:
        names = args
    else:
        names = DEFAULT_SUBSET
    print(f"evaluating {len(names)} workloads "
          "(local + ideal + fast + slow each) ...")
    results = evaluate_suite(names, verbose=True)

    time_rows = [r for r in figure6a_execution_time(results)
                 if r.program in results]
    print()
    print(render_figure6(time_rows, "Figure 6(a): normalized execution "
                                    "time"))
    gm = geomean_row(time_rows)
    print(f"\ngeomean speedups: slow {1 / gm['slow']:.2f}x, "
          f"fast {1 / gm['fast']:.2f}x, ideal {1 / gm['ideal']:.2f}x")

    energy_rows = [r for r in figure6b_battery(results)
                   if r.program in results]
    print()
    print(render_figure6(energy_rows, "Figure 6(b): normalized battery "
                                      "consumption"))
    gm = geomean_row(energy_rows)
    print(f"\ngeomean battery saving: slow {(1 - gm['slow']) * 100:.1f}%, "
          f"fast {(1 - gm['fast']) * 100:.1f}%")

    for name, result in results.items():
        assert result.outputs_match(), f"{name}: output mismatch!"
    print("\nall offloaded outputs byte-identical to local execution")


if __name__ == "__main__":
    main()
