#!/usr/bin/env python3
"""Structured tracing demo: watch the runtime offload the chess game.

Runs the paper's Figure 3 chess running example with tracing enabled
(docs/observability.md), prints the decision timeline and the metrics
registry, re-derives the Figure 7 phase totals from events alone, and
writes both export formats (JSON Lines + chrome://tracing).

Run:  python examples/trace_demo.py [output-directory]
"""

import sys

from repro.eval.runner import run_program
from repro.runtime import SessionOptions
from repro.trace import (phase_totals, render_metrics, render_timeline,
                         write_chrome_trace, write_jsonl)
from repro.workloads import workload


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."

    # One traced run on the fast Wi-Fi model.  Tracing is off by default
    # and, when off, leaves results bit-identical — enabling it only adds
    # the event stream, never simulated time.
    spec = workload("chess")
    result = run_program(
        spec, labels=("fast",),
        session_options=SessionOptions(enable_tracing=True)
    ).sessions["fast"]

    events = result.trace_events()
    print(f"{spec.name}: {len(events)} trace events "
          f"({result.trace.dropped} dropped)\n")

    # The offload decisions, one line per invocation.
    print("decisions:")
    print(render_timeline(events, categories=["estimate", "decision"]))

    # The last few events: write-back, final transfer, session summary.
    print("\ntail of the timeline:")
    print(render_timeline(events, tail=8))

    # Counters / gauges / histograms accumulated alongside the events.
    print()
    print(render_metrics(result.trace.metrics))

    # Events alone reproduce the Figure 7 phase breakdown.
    derived = phase_totals(events)
    reported = result.breakdown()
    print("\nphase totals (trace-derived vs session accounting):")
    for phase, seconds in reported.items():
        print(f"  {phase:<20s} {derived[phase] * 1e3:8.4f} ms   "
              f"{seconds * 1e3:8.4f} ms")
    assert all(abs(derived[k] - v) < 1e-9 for k, v in reported.items())

    # Interchange formats: JSONL for scripts, Chrome JSON for humans.
    jsonl_path = f"{out_dir}/chess_trace.jsonl"
    chrome_path = f"{out_dir}/chess_trace.json"
    count = write_jsonl(events, jsonl_path)
    write_chrome_trace(events, chrome_path,
                       process_name=f"{spec.name} over 802.11ac")
    print(f"\nwrote {count} events to {jsonl_path}")
    print(f"wrote Chrome trace to {chrome_path} "
          f"(open in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
