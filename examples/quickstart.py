#!/usr/bin/env python3
"""Quickstart: automatically offload a native C application.

Compiles a small C program (a naive prime sieve with an interactive
parameter), lets the Native Offloader pipeline find and offload its hot
function, and compares local execution against offloaded execution on the
fast and slow Wi-Fi models.

Run:  python examples/quickstart.py
"""

from repro import (FAST_WIFI, SLOW_WIFI, CompilerOptions,
                   NativeOffloaderCompiler, OffloadSession, compile_c,
                   profile_module, run_local)

SOURCE = r"""
int *flags;
int limit;

int count_primes(void) {
    int i, j, count = 0;
    for (i = 2; i < limit; i++) flags[i] = 1;
    for (i = 2; i < limit; i++) {
        if (flags[i]) {
            count++;
            for (j = i + i; j < limit; j += i) flags[j] = 0;
        }
    }
    return count;
}

int main() {
    int primes;
    scanf("%d", &limit);
    flags = (int*) malloc(limit * sizeof(int));
    primes = count_primes();
    printf("%d primes below %d\n", primes, limit);
    return 0;
}
"""

STDIN = b"60000\n"
PROFILE_STDIN = b"20000\n"


def main() -> None:
    # 1. Front end: C -> IR.
    module = compile_c(SOURCE, "primes")

    # 2. Hot function/loop profiling on the mobile machine model.
    profile = profile_module(module, stdin=PROFILE_STDIN)
    print("Hot candidates (profiling input):")
    for candidate in profile.hottest(3):
        print(f"  {candidate.name:24s} {candidate.total_seconds * 1e3:8.2f} ms"
              f"  x{candidate.invocations}")

    # 3. The Native Offloader compiler: select targets, unify memory,
    #    partition into mobile + server binaries.
    program = NativeOffloaderCompiler(CompilerOptions()).compile(
        module, profile)
    print(f"\nSelected offload targets: {program.target_names()}")
    print(f"Memory unification: {program.unification.summary()}")

    # 4. Baseline: run everything locally on the phone.
    local = run_local(module, stdin=STDIN)
    print(f"\nLocal execution:   {local.seconds * 1e3:8.2f} ms   "
          f"{local.energy_mj:8.1f} mJ")
    print(f"  output: {local.stdout.strip()}")

    # 5. Offloaded execution over two networks.
    for network in (FAST_WIFI, SLOW_WIFI):
        session = OffloadSession(program, network, stdin=STDIN)
        result = session.run()
        assert result.stdout == local.stdout, "offload changed the output!"
        print(f"{network.name:10s} offload: {result.total_seconds * 1e3:8.2f} ms   "
              f"{result.energy_mj:8.1f} mJ   "
              f"speedup {local.seconds / result.total_seconds:4.2f}x   "
              f"battery saving "
              f"{(1 - result.energy_mj / local.energy_mj) * 100:5.1f}%")


if __name__ == "__main__":
    main()
