#!/usr/bin/env python3
"""The paper's running example: the chess game of Figure 3.

Reproduces the three artifacts built around it:
  * Table 1 — movement computation time, smartphone vs desktop;
  * Table 3 — profiling + Equation 1 target selection;
  * the end-to-end offloaded game (user-interactive scanf moves stay on
    the phone, getAITurn runs on the server).

Run:  python examples/chess_offload.py
"""

from repro import (FAST_WIFI, SLOW_WIFI, CompilerOptions,
                   NativeOffloaderCompiler, OffloadSession, profile_module,
                   run_local)
from repro.eval import render_table1, render_table3, table1_chess_gap
from repro.workloads import CHESS, chess_stdin


def main() -> None:
    # Table 1: the mobile/desktop performance gap across difficulties.
    rows = table1_chess_gap()
    print(render_table1(rows))
    gaps = [r.gap for r in rows]
    print(f"gap range: {min(gaps):.2f}x .. {max(gaps):.2f}x "
          "(paper: 5.36x .. 5.89x)\n")

    # Table 3: what the profiler and Equation 1 decide.
    print(render_table3())
    print()

    # End-to-end: play three turns with offloaded AI.
    module = CHESS.module()
    profile = profile_module(module, stdin=CHESS.profile_stdin)
    program = NativeOffloaderCompiler(CompilerOptions()).compile(
        module, profile)
    print(f"offload targets: {program.target_names()}")
    stdin = chess_stdin(depth=5, turns=3)
    local = run_local(module, stdin=stdin)
    print(f"\nlocal AI thinking: {local.seconds * 1e3:.1f} ms")
    for network in (FAST_WIFI, SLOW_WIFI):
        result = OffloadSession(program, network, stdin=stdin).run()
        assert result.stdout == local.stdout
        print(f"{network.name:10s}: {result.total_seconds * 1e3:8.1f} ms  "
              f"speedup {local.seconds / result.total_seconds:.2f}x  "
              f"(offloaded {result.offloaded_invocations} of "
              f"{len(result.invocations)} AI turns)")


if __name__ == "__main__":
    main()
