"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with build isolation) cannot
build an editable wheel.  This shim lets ``python setup.py develop`` and
legacy ``pip install -e . --no-build-isolation`` work everywhere.
"""

from setuptools import setup

setup()
