"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import pytest

from repro.frontend import compile_c
from repro.machine import Interpreter, Machine, install_libc
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import (FAST_WIFI, OffloadSession, SessionOptions,
                           run_local)
from repro.targets import ARM32, TargetArch


def run_c(source: str, stdin: bytes = b"",
          files: Optional[Dict[str, bytes]] = None,
          arch: TargetArch = ARM32) -> Tuple[int, str]:
    """Compile and run a C snippet locally; returns (exit_code, stdout)."""
    module = compile_c(source, "test")
    result = run_local(module, arch=arch, stdin=stdin, files=files)
    return result.exit_code, result.stdout


def interp_for(source: str, arch: TargetArch = ARM32,
               role: str = "mobile") -> Interpreter:
    """Machine + interpreter with a compiled module loaded."""
    module = compile_c(source, "test")
    machine = Machine(arch, role)
    install_libc(machine)
    machine.load(module)
    return Interpreter(machine)


def offload_c(source: str, stdin: bytes = b"",
              files: Optional[Dict[str, bytes]] = None,
              profile_stdin: Optional[bytes] = None,
              network=FAST_WIFI,
              compiler_options: Optional[CompilerOptions] = None,
              session_options: Optional[SessionOptions] = None):
    """Full pipeline on a C snippet; returns (local, session_result,
    program)."""
    module = compile_c(source, "test")
    profile = profile_module(
        module,
        stdin=profile_stdin if profile_stdin is not None else stdin,
        files=files)
    program = NativeOffloaderCompiler(
        compiler_options or CompilerOptions()).compile(module, profile)
    local = run_local(module, stdin=stdin, files=files)
    session = OffloadSession(program, network, options=session_options,
                             stdin=stdin, files=files)
    return local, session.run(), program


# A compute kernel big enough for the selector to pick, small enough for
# fast tests: repeated polynomial evaluation over an array.
HOT_KERNEL_SRC = r"""
int *data;
int n;

int crunch(void) {
    int i, r, acc = 0;
    for (r = 0; r < 40; r++) {
        for (i = 0; i < n; i++) {
            acc += (data[i] * 31 + r) ^ (acc >> 3);
        }
    }
    return acc;
}

int main() {
    int i;
    scanf("%d", &n);
    data = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    printf("crunched %d\n", crunch());
    return 0;
}
"""
HOT_KERNEL_STDIN = b"600\n"
