"""Differential testing: compiled-and-interpreted C against Python
reference semantics, over hypothesis-generated inputs.

These tests pin the full stack (frontend -> IR -> interpreter -> libc) to
C's arithmetic rules: 32-bit wraparound, truncating division, shift
semantics, promotion, and pointer indexing.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.frontend import compile_c
from repro.machine import Interpreter, Machine, install_libc, to_signed
from repro.targets import ARM32, X86_64

i32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
small = st.integers(min_value=-1000, max_value=1000)


def run_fn(source, name, args, arch=ARM32):
    module = compile_c(source, "diff")
    machine = Machine(arch, "mobile" if arch is ARM32 else "server")
    install_libc(machine)
    machine.load(module)
    return Interpreter(machine).call_by_name(
        name, [a & 0xFFFFFFFF for a in args])


BINOP_SRC = r"""
int add32(int a, int b) { return a + b; }
int sub32(int a, int b) { return a - b; }
int mul32(int a, int b) { return a * b; }
int div32(int a, int b) { return a / b; }
int rem32(int a, int b) { return a % b; }
int and32(int a, int b) { return a & b; }
int xor32(int a, int b) { return a ^ b; }
int shl32(int a, int b) { return a << (b & 31); }
int main() { return 0; }
"""


def wrap32(x: int) -> int:
    return to_signed(x & 0xFFFFFFFF, 32)


@given(i32, i32)
@settings(max_examples=80, deadline=None)
def test_add_sub_mul_wrap_like_c(a, b):
    assert to_signed(run_fn(BINOP_SRC, "add32", [a, b]), 32) == \
        wrap32(a + b)
    assert to_signed(run_fn(BINOP_SRC, "sub32", [a, b]), 32) == \
        wrap32(a - b)
    assert to_signed(run_fn(BINOP_SRC, "mul32", [a, b]), 32) == \
        wrap32(a * b)


@given(i32, i32)
@settings(max_examples=80, deadline=None)
def test_division_truncates_toward_zero(a, b):
    assume(b != 0)
    assume(not (a == -(2**31) and b == -1))  # UB in C
    q = to_signed(run_fn(BINOP_SRC, "div32", [a, b]), 32)
    r = to_signed(run_fn(BINOP_SRC, "rem32", [a, b]), 32)
    assert q == int(a / b)
    assert r == a - int(a / b) * b
    assert q * b + r == a


@given(i32, i32)
@settings(max_examples=60, deadline=None)
def test_bitwise_matches_python(a, b):
    assert to_signed(run_fn(BINOP_SRC, "and32", [a, b]), 32) == \
        wrap32((a & 0xFFFFFFFF) & (b & 0xFFFFFFFF))
    assert to_signed(run_fn(BINOP_SRC, "xor32", [a, b]), 32) == \
        wrap32((a & 0xFFFFFFFF) ^ (b & 0xFFFFFFFF))


@given(i32, st.integers(min_value=0, max_value=31))
@settings(max_examples=60, deadline=None)
def test_shift_left_wraps(a, s):
    assert to_signed(run_fn(BINOP_SRC, "shl32", [a, s]), 32) == \
        wrap32(a << s)


POLY_SRC = r"""
int poly(int x, int a, int b, int c) {
    return a * x * x + b * x + c;
}
int main() { return 0; }
"""


@given(small, small, small, small)
@settings(max_examples=60, deadline=None)
def test_polynomial_identical_on_both_architectures(x, a, b, c):
    """The same IR computes the same values on the mobile and server
    machine models — the premise of cross-architecture offloading."""
    mobile = run_fn(POLY_SRC, "poly", [x, a, b, c], ARM32)
    server = run_fn(POLY_SRC, "poly", [x, a, b, c], X86_64)
    assert mobile == server
    assert to_signed(mobile, 32) == wrap32(a * x * x + b * x + c)


SUM_SRC = r"""
int *scratch;
int checksum(int n, int seed) {
    int i;
    long acc = 0;
    for (i = 0; i < n; i++) scratch[i] = seed + i * 7;
    for (i = 0; i < n; i++) acc += scratch[i] * (i + 1);
    return (int)(acc % 1000003);
}
int main() {
    scratch = (int*) malloc(512 * sizeof(int));
    return 0;
}
"""


@given(st.integers(min_value=1, max_value=256), small)
@settings(max_examples=25, deadline=None)
def test_array_walk_matches_reference(n, seed):
    module = compile_c(SUM_SRC, "diff")
    machine = Machine(ARM32)
    install_libc(machine)
    machine.load(module)
    interp = Interpreter(machine)
    interp.run_main()  # allocates scratch
    got = to_signed(interp.call_by_name(
        "checksum", [n, seed & 0xFFFFFFFF]), 32)
    acc = sum(wrap32(seed + i * 7) * (i + 1) for i in range(n))
    expected = wrap32(int(acc % 1000003) if acc >= 0
                      else -((-acc) % 1000003))
    # C's % on long follows truncation; acc fits in 64 bits here
    a = acc
    expected = a - int(a / 1000003) * 1000003
    assert got == wrap32(expected)


COND_SRC = r"""
int clamp(int x, int lo, int hi) {
    return x < lo ? lo : (x > hi ? hi : x);
}
int main() { return 0; }
"""


@given(i32, small, small)
@settings(max_examples=60, deadline=None)
def test_clamp_matches_python(x, lo, hi):
    assume(lo <= hi)
    got = to_signed(run_fn(COND_SRC, "clamp", [x, lo, hi]), 32)
    assert got == max(lo, min(hi, x))
