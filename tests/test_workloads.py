"""Tests for the workload suite: every program compiles, runs, and keeps
the structural properties its Table 4 row documents."""

import pytest

from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import run_local
from repro.workloads import (ALL_WORKLOADS, CHESS, SPEC_WORKLOADS,
                             WORKLOADS, chess_stdin, spec_names, workload)

ALL_NAMES = [w.name for w in ALL_WORKLOADS]


class TestRegistry:
    def test_seventeen_spec_programs(self):
        assert len(SPEC_WORKLOADS) == 17
        assert len(spec_names()) == 17

    def test_paper_order(self):
        assert spec_names()[0] == "164.gzip"
        assert spec_names()[-1] == "482.sphinx3"

    def test_lookup(self):
        assert workload("458.sjeng").name == "458.sjeng"
        with pytest.raises(KeyError):
            workload("999.nothing")

    def test_chess_included(self):
        assert "chess" in WORKLOADS

    def test_paper_rows_populated(self):
        for spec in SPEC_WORKLOADS:
            assert spec.paper.target
            assert spec.paper.coverage_pct > 0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_compiles(name):
    module = workload(name).module()
    assert module.get_function("main") is not None


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_runs_on_profile_input(name):
    spec = workload(name)
    result = run_local(spec.module(), stdin=spec.profile_stdin,
                       files=spec.profile_files)
    assert result.exit_code == 0
    assert result.stdout  # every program reports something


@pytest.mark.parametrize("name", ["164.gzip", "456.hmmer", "458.sjeng",
                                  "183.equake", "445.gobmk"])
def test_selected_target_matches_paper_shape(name):
    """The compiler's chosen target corresponds to the paper's Table 4
    target for representative programs."""
    spec = workload(name)
    module = spec.module()
    profile = profile_module(module, stdin=spec.profile_stdin,
                             files=spec.profile_files)
    program = NativeOffloaderCompiler(CompilerOptions()).compile(
        module, profile)
    targets = program.target_names()
    expectations = {
        "164.gzip": "spec_compress",
        "456.hmmer": "main_loop_serial",
        "458.sjeng": "think",
        "183.equake": "main_for",      # outlined main loop
        "445.gobmk": "gtp_main_loop",
    }
    assert any(t.startswith(expectations[name]) for t in targets), \
        f"{name}: {targets}"


def test_module_caching_returns_fresh_clones():
    spec = workload("456.hmmer")
    a = spec.module()
    b = spec.module()
    assert a is not b
    a.remove_function("main")
    assert b.get_function("main") is not None


def test_chess_stdin_builder():
    stdin = chess_stdin(depth=3, turns=2)
    lines = stdin.decode().strip().split("\n")
    assert lines[0] == "3 2"
    assert len(lines) == 3


def test_loc_counts_reasonable():
    for spec in ALL_WORKLOADS:
        assert 30 < spec.loc < 400, spec.name


class TestAndroidSurvey:
    def test_twenty_apps(self):
        from repro.workloads import TOP20_APPS
        assert len(TOP20_APPS) == 20

    def test_survey_summary_matches_paper_claim(self):
        # "around one third of the 20 applications include native codes
        # more than 50% and spend more than 20% of the total execution
        # time to execute them"
        from repro.workloads import survey_summary
        summary = survey_summary()
        assert summary["total_apps"] == 20
        assert 6 <= summary["both"] <= 8

    def test_firefox_ratio(self):
        from repro.workloads import TOP20_APPS
        firefox = next(a for a in TOP20_APPS if a.name == "Firefox")
        assert firefox.native_loc_ratio_pct == pytest.approx(52.19,
                                                             abs=0.01)

    def test_pure_java_apps_have_zero_native(self):
        from repro.workloads import TOP20_APPS
        zeros = [a for a in TOP20_APPS if a.c_cpp_loc == 0]
        assert len(zeros) == 9
        assert all(a.native_exec_ratio_pct == 0.0 for a in zeros)
