"""Full-pipeline integration tests on real workloads (profiling inputs,
to stay fast) plus the public one-call API."""

import pytest

import repro
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import (FAST_WIFI, IDEAL_NETWORK, OffloadSession,
                           SLOW_WIFI, SessionOptions, run_local)
from repro.workloads import workload


def run_full(name, networks=(FAST_WIFI,)):
    spec = workload(name)
    module = spec.module()
    profile = profile_module(module, stdin=spec.profile_stdin,
                             files=spec.profile_files)
    program = NativeOffloaderCompiler(CompilerOptions()).compile(
        module, profile)
    local = run_local(module, stdin=spec.profile_stdin,
                      files=spec.profile_files)
    results = {}
    for network in networks:
        session = OffloadSession(program, network,
                                 stdin=spec.profile_stdin,
                                 files=spec.profile_files)
        results[network.name] = session.run()
    return local, results, program


@pytest.mark.parametrize("name", ["456.hmmer", "462.libquantum",
                                  "175.vpr", "chess"])
def test_offload_preserves_output(name):
    local, results, _ = run_full(name, (IDEAL_NETWORK, FAST_WIFI,
                                        SLOW_WIFI))
    for label, result in results.items():
        assert result.stdout == local.stdout, f"{name} on {label}"
        assert result.exit_code == local.exit_code


def test_hmmer_offloads_and_wins():
    local, results, program = run_full("456.hmmer")
    result = results[FAST_WIFI.name]
    assert result.offloaded_invocations == 1
    assert result.total_seconds < local.seconds
    assert result.energy_mj < local.energy_mj


def test_gobmk_pays_remote_io_and_fn_ptr(

):
    local, results, program = run_full("445.gobmk")
    result = results[FAST_WIFI.name]
    assert program.fn_ptr_sites > 0
    assert program.remote_io_sites > 0
    assert result.stdout == local.stdout
    assert result.remote_io_seconds > 0
    assert result.fnptr_seconds > 0


def test_twolf_reads_cell_file_remotely():
    local, results, _ = run_full("300.twolf")
    result = results[FAST_WIFI.name]
    assert result.stdout == local.stdout
    assert result.remote_io_seconds > 0


def test_equake_loop_outlined_and_offloaded():
    local, results, program = run_full("183.equake")
    assert any(t.kind == "loop" for t in program.targets)
    assert program.outlined_loops
    result = results[FAST_WIFI.name]
    assert result.stdout == local.stdout
    assert result.offloaded_invocations >= 1


def test_public_offload_app_api():
    src = r"""
    int work(int n) {
        int i, acc = 0;
        for (i = 0; i < n; i++) acc += i * i;
        return acc;
    }
    int main() {
        int n;
        scanf("%d", &n);
        printf("%d\n", work(n));
        return 0;
    }
    """
    result = repro.offload_app(src, stdin=b"20000\n")
    assert result.exit_code == 0
    assert result.stdout.strip().lstrip("-").isdigit()
    assert result.offloaded_invocations >= 1


def test_version_exposed():
    assert repro.__version__
