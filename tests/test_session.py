"""End-to-end tests of the offload session: semantics preservation,
decision making, overhead accounting, and the unification ablations."""

import pytest

from repro.offload import CompilerOptions
from repro.runtime import (FAST_WIFI, IDEAL_NETWORK, SLOW_WIFI,
                           NetworkModel, SessionOptions)

from conftest import HOT_KERNEL_SRC, HOT_KERNEL_STDIN, offload_c

FN_PTR_SRC = r"""
typedef int (*OP)(int);
int twice(int x) { return 2 * x; }
int square(int x) { return x * x; }
OP ops[2] = { twice, square };

int kernel(int n) {
    int i, acc = 0;
    for (i = 0; i < n; i++) {
        OP op = ops[i & 1];
        acc += op(i);
    }
    return acc;
}

int main() {
    int n;
    scanf("%d", &n);
    printf("%d\n", kernel(n));
    return 0;
}
"""

REMOTE_IO_SRC = r"""
int *data;
int kernel(int n, void *f) {
    char line[32];
    int i, acc = 0;
    while (fgets(line, 32, f)) acc += atoi(line);
    for (i = 0; i < n; i++) acc += data[i % 64] * i;
    printf("acc %d\n", acc);
    return acc;
}
int main() {
    int i, n;
    void *f;
    scanf("%d", &n);
    data = (int*) malloc(64 * sizeof(int));
    for (i = 0; i < 64; i++) data[i] = i;
    f = fopen("nums.txt", "r");
    if (!f) return 1;
    printf("%d\n", kernel(n, f));
    fclose(f);
    return 0;
}
"""
REMOTE_IO_FILES = {"nums.txt": b"1\n2\n3\n4\n"}


class TestSemanticsPreservation:
    def test_output_identical_on_every_network(self):
        for network in (IDEAL_NETWORK, FAST_WIFI, SLOW_WIFI):
            local, result, program = offload_c(
                HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN, network=network)
            assert result.stdout == local.stdout
            assert result.exit_code == local.exit_code == 0

    def test_fn_ptr_program_offloads_correctly(self):
        local, result, program = offload_c(FN_PTR_SRC, stdin=b"4000\n")
        assert program.fn_ptr_sites > 0
        assert result.stdout == local.stdout
        assert result.offloaded_invocations >= 1
        assert result.fnptr_seconds > 0

    def test_remote_io_program(self):
        local, result, program = offload_c(
            REMOTE_IO_SRC, stdin=b"5000\n", files=dict(REMOTE_IO_FILES))
        assert program.remote_io_sites > 0
        assert result.stdout == local.stdout
        assert result.remote_io_seconds > 0

    def test_mutated_heap_written_back(self):
        src = r"""
        int *buf;
        int fill(int n) {
            int i;
            for (i = 0; i < n; i++) buf[i] = i * i;
            return buf[n - 1];
        }
        int main() {
            int n, i, check = 0;
            scanf("%d", &n);
            buf = (int*) malloc(n * sizeof(int));
            fill(n);
            /* read the server-written data back on the mobile side */
            for (i = 0; i < n; i += 7) check += buf[i];
            printf("%d\n", check);
            return 0;
        }
        """
        local, result, program = offload_c(src, stdin=b"9000\n")
        assert result.stdout == local.stdout
        assert result.offloaded_invocations == 1
        assert result.bytes_to_mobile > 9000 * 4 / 2  # dirty write-back


class TestDecisions:
    def test_force_local_never_offloads(self):
        local, result, _ = offload_c(
            HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
            session_options=SessionOptions(force_local=True))
        assert result.offloaded_invocations == 0
        assert result.stdout == local.stdout
        assert result.total_seconds == pytest.approx(local.seconds,
                                                     rel=0.02)

    def test_always_offload_without_dynamic_estimation(self):
        local, result, _ = offload_c(
            HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
            session_options=SessionOptions(
                enable_dynamic_estimation=False))
        assert result.declined_invocations == 0
        assert result.offloaded_invocations >= 1

    def test_terrible_network_declined(self):
        dialup = NetworkModel("dialup", bandwidth_bps=56e3, latency_s=0.2,
                              slow=True)
        local, result, _ = offload_c(HOT_KERNEL_SRC,
                                     stdin=HOT_KERNEL_STDIN,
                                     network=dialup)
        assert result.offloaded_invocations == 0
        assert result.stdout == local.stdout

    def test_fast_network_speedup(self):
        local, result, _ = offload_c(HOT_KERNEL_SRC,
                                     stdin=HOT_KERNEL_STDIN)
        assert local.seconds / result.total_seconds > 1.5

    def test_ideal_speedup_approaches_ratio(self):
        local, result, program = offload_c(
            HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN, network=IDEAL_NETWORK,
            session_options=SessionOptions(zero_overhead=True))
        speedup = local.seconds / result.total_seconds
        ratio = program.options.resolved_ratio()
        assert 0.6 * ratio < speedup <= ratio * 1.02


class TestAccounting:
    def test_breakdown_sums_close_to_total(self):
        _, result, _ = offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN)
        parts = sum(result.breakdown().values())
        assert parts == pytest.approx(result.total_seconds, rel=0.15)

    def test_energy_positive_and_traced(self):
        _, result, _ = offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN)
        assert result.energy_mj > 0
        assert result.power_trace.total_energy_mj == pytest.approx(
            result.energy_mj)
        states = {iv.state for iv in result.power_trace.intervals}
        assert "compute" in states
        assert "wait" in states

    def test_invocation_records(self):
        _, result, _ = offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN)
        offloaded = [r for r in result.invocations if r.offloaded]
        assert offloaded
        record = offloaded[0]
        assert record.bytes_to_server > 0
        assert record.server_seconds > 0
        assert record.init_seconds > 0

    def test_offload_saves_energy_on_fast_network(self):
        local, result, _ = offload_c(HOT_KERNEL_SRC,
                                     stdin=HOT_KERNEL_STDIN)
        local_energy = local.energy_mj
        assert result.energy_mj < local_energy * 0.6


class TestUnificationAblations:
    """Disabling unification components must break cross-machine
    execution — that is the paper's whole argument."""

    GLOBAL_DEP_SRC = r"""
    int knob;
    int *buf;
    int kernel(int n) {
        int i, acc = 0;
        for (i = 0; i < n; i++) acc += buf[i % 256] * knob;
        return acc;
    }
    int main() {
        int n, i;
        scanf("%d %d", &knob, &n);
        buf = (int*) malloc(256 * sizeof(int));
        for (i = 0; i < 256; i++) buf[i] = i;
        printf("%d\n", kernel(n));
        return 0;
    }
    """

    def test_without_global_realloc_server_crashes_or_miscomputes(self):
        # The server resolves @buf/@knob to *its own* globals (different
        # back-end addresses): buf is NULL there, so the offloaded kernel
        # dereferences NULL — or, at best, computes garbage.
        from repro.machine import SegmentationFault
        try:
            local, result, _ = offload_c(
                self.GLOBAL_DEP_SRC, stdin=b"5 6000\n",
                compiler_options=CompilerOptions(
                    enable_global_realloc=False,
                    forced_targets=["kernel"]),
                session_options=SessionOptions(
                    enable_dynamic_estimation=False))
        except SegmentationFault:
            return  # NULL dereference on the server: expected failure
        assert result.stdout != local.stdout

    def test_with_global_realloc_correct(self):
        local, result, _ = offload_c(
            self.GLOBAL_DEP_SRC, stdin=b"5 6000\n",
            session_options=SessionOptions(
                enable_dynamic_estimation=False))
        assert result.stdout == local.stdout

    def test_without_layout_realignment_cross_abi_breaks(self):
        from repro.targets import ARM32, X86
        src = r"""
        typedef struct { char tag; double score; } Rec;
        Rec *recs;
        double total(int n) {
            double s = 0.0;
            int i;
            for (i = 0; i < n; i++) s += recs[i].score;
            return s;
        }
        int main() {
            int n, i;
            scanf("%d", &n);
            recs = (Rec*) malloc(n * sizeof(Rec));
            for (i = 0; i < n; i++) { recs[i].tag = 1; recs[i].score = i; }
            printf("%.1f\n", total(n));
            return 0;
        }
        """
        # Force only the reading kernel to the server: the data is then
        # written under the ARM layout and read under the IA32 layout.
        broken = CompilerOptions(mobile_arch=ARM32, server_arch=X86,
                                 enable_layout_realignment=False,
                                 forced_targets=["total"])
        local, result, _ = offload_c(
            src, stdin=b"3000\n", compiler_options=broken,
            session_options=SessionOptions(
                enable_dynamic_estimation=False))
        # IA32 reads Move.score at offset 4 while ARM wrote it at 8:
        # garbage values (Figure 4's failure mode)
        assert result.stdout != local.stdout

    def test_with_layout_realignment_cross_abi_works(self):
        from repro.targets import ARM32, X86
        src = self.GLOBAL_DEP_SRC
        local, result, _ = offload_c(
            src, stdin=b"3 5000\n",
            compiler_options=CompilerOptions(mobile_arch=ARM32,
                                             server_arch=X86),
            session_options=SessionOptions(
                enable_dynamic_estimation=False))
        assert result.stdout == local.stdout


class TestCommAblations:
    def test_prefetch_off_forces_cod(self):
        local, with_pf, _ = offload_c(HOT_KERNEL_SRC,
                                      stdin=HOT_KERNEL_STDIN)
        _, without_pf, _ = offload_c(
            HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
            session_options=SessionOptions(enable_prefetch=False))
        assert without_pf.cod_faults > with_pf.cod_faults
        assert without_pf.stdout == local.stdout

    def test_batching_off_costs_more_time(self):
        _, batched, _ = offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
                                  network=SLOW_WIFI)
        _, unbatched, _ = offload_c(
            HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN, network=SLOW_WIFI,
            session_options=SessionOptions(
                enable_batching=False,
                enable_dynamic_estimation=False))
        if batched.offloaded_invocations and \
                unbatched.offloaded_invocations:
            assert unbatched.comm_seconds >= batched.comm_seconds
