"""Tests for the incremental UVA data plane (docs/uva-data-plane.md):
cross-invocation page cache, sub-page dirty deltas, adaptive prefetch.

Two layers of coverage:

* unit tests drive a ``UVAManager`` pair directly through sync /
  prefetch / fault / write-back / abort cycles and check the cache,
  delta, and advisor bookkeeping in isolation;
* a differential suite runs a multi-invocation workload end to end with
  the three features on vs. off and asserts identical program output
  and byte-identical mobile memory — including under injected link
  faults that kill the link mid-finalize, which exercises the
  DESIGN.md §5 abort-and-replay rollback of the cache state.
"""

import pytest

from repro.frontend import compile_c
from repro.machine import (GLOBAL_BASES, Machine, UVA_HEAP_BASE,
                           UVA_HEAP_SIZE, install_libc)
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import (CommunicationManager, FAST_WIFI, FaultPlan,
                           OffloadSession, PrefetchAdvisor, SessionOptions,
                           UVAManager, run_local)
from repro.runtime.uva import DELTA_BREAK_EVEN
from repro.targets import ARM32, X86_64


def make_pair(**uva_flags):
    mobile = Machine(ARM32, "mobile")
    server = Machine(X86_64, "server")
    for m in (mobile, server):
        install_libc(m)
    comm = CommunicationManager(FAST_WIFI)
    uva = UVAManager(mobile, server, comm, **uva_flags)
    return mobile, server, comm, uva


def offload_cycle(uva, pages, target="kernel"):
    """One minimal invocation: sync, prefetch, (caller runs server
    accesses), then ``finish_cycle`` below commits."""
    uva.begin_invocation(target)
    uva.synchronize_page_table()
    uva.prefetch(pages)


def finish_cycle(uva):
    uva.write_back(defer_commit=True)
    uva.commit_finalize()
    uva.end_invocation()


PAGE0 = UVA_HEAP_BASE


class TestPageCache:
    def test_unchanged_pages_survive_sync_and_skip_prefetch(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(PAGE0, 8)
        mobile.memory.write(PAGE0, b"const!!!")
        pidx = mobile.memory.page_index(PAGE0)

        offload_cycle(uva, [pidx])
        server.memory.read(PAGE0, 8)
        finish_cycle(uva)
        assert uva.stats.prefetched_pages == 1

        # no mobile write in between: the server copy is still valid
        sent_before = comm.stats.bytes_to_server
        offload_cycle(uva, [pidx])
        finish_cycle(uva)
        assert uva.stats.cache_kept_pages >= 1
        assert uva.stats.cache_skipped_prefetch_pages == 1
        assert uva.stats.prefetched_pages == 1  # nothing re-shipped
        # only the (minimal) version-vector metadata crossed the wire
        metadata = comm.stats.bytes_to_server - sent_before
        assert metadata < uva.page_size

    def test_mobile_write_bumps_version_and_invalidates(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(PAGE0, 8)
        mobile.memory.write(PAGE0, b"version1")
        pidx = mobile.memory.page_index(PAGE0)

        offload_cycle(uva, [pidx])
        finish_cycle(uva)
        mobile.memory.write(PAGE0, b"version2")
        offload_cycle(uva, [pidx])
        finish_cycle(uva)
        # the stale server copy must not be kept...
        assert uva.stats.cache_skipped_prefetch_pages == 0
        # ...and the refreshed content must be what the server reads next
        offload_cycle(uva, [pidx])
        assert server.memory.read(PAGE0, 8) == b"version2"
        finish_cycle(uva)

    def test_naive_mode_invalidates_everything(self):
        mobile, server, comm, uva = make_pair(
            enable_page_cache=False, enable_delta_transfer=False,
            enable_adaptive_prefetch=False)
        mobile.map_range(PAGE0, 8)
        mobile.memory.write(PAGE0, b"whatever")
        pidx = mobile.memory.page_index(PAGE0)
        for _ in range(3):
            offload_cycle(uva, [pidx])
            finish_cycle(uva)
        assert uva.stats.cache_kept_pages == 0
        assert uva.stats.cache_skipped_prefetch_pages == 0
        assert uva.stats.prefetched_pages == 3


class TestSubPageDeltas:
    def test_small_server_write_ships_as_delta(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(PAGE0, uva.page_size)
        pidx = mobile.memory.page_index(PAGE0)
        offload_cycle(uva, [pidx])
        server.memory.write(PAGE0 + 64, b"tinydelta")
        finish_cycle(uva)
        assert uva.stats.delta_pages == 1
        assert uva.stats.delta_records == 1
        assert uva.stats.delta_saved_bytes > 0
        assert uva.stats.written_back_bytes < uva.page_size
        assert mobile.memory.read(PAGE0 + 64, 9) == b"tinydelta"

    def test_rewritten_page_falls_back_to_full_transfer(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(PAGE0, uva.page_size)
        pidx = mobile.memory.page_index(PAGE0)
        offload_cycle(uva, [pidx])
        # dirty more than the break-even fraction of the page
        span = int(uva.page_size * DELTA_BREAK_EVEN) + 64
        server.memory.write(PAGE0, b"\xab" * span)
        finish_cycle(uva)
        assert uva.stats.delta_pages == 0
        assert uva.stats.written_back_bytes == uva.page_size
        assert mobile.memory.read(PAGE0, span) == b"\xab" * span

    def test_cod_refill_uses_stale_base_delta(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(PAGE0, uva.page_size)
        mobile.memory.write(PAGE0, bytes(range(256)) * (uva.page_size // 256))
        pidx = mobile.memory.page_index(PAGE0)
        offload_cycle(uva, [pidx])
        finish_cycle(uva)
        # small mobile churn invalidates the server copy but leaves a
        # known-version stale base behind
        mobile.memory.write(PAGE0 + 8, b"!!")
        offload_cycle(uva, [])
        assert server.memory.read(PAGE0 + 8, 2) == b"!!"  # CoD fault
        assert uva.stats.cod_faults == 1
        assert uva.stats.cod_bytes < uva.page_size  # delta refill
        assert uva.stats.delta_pages >= 1
        finish_cycle(uva)

    def test_delta_disabled_ships_full_pages(self):
        mobile, server, comm, uva = make_pair(enable_delta_transfer=False)
        mobile.map_range(PAGE0, uva.page_size)
        pidx = mobile.memory.page_index(PAGE0)
        offload_cycle(uva, [pidx])
        server.memory.write(PAGE0 + 64, b"tinydelta")
        finish_cycle(uva)
        assert uva.stats.delta_pages == 0
        assert uva.stats.written_back_bytes == uva.page_size


class TestAbortRollback:
    def test_abort_discards_staged_writeback_and_cache_state(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(PAGE0, uva.page_size)
        mobile.memory.write(PAGE0, b"original")
        pidx = mobile.memory.page_index(PAGE0)
        offload_cycle(uva, [pidx])
        server.memory.write(PAGE0, b"poisoned")
        uva.write_back(defer_commit=True)
        uva.abort_invocation()
        # nothing from the failed run reached the mobile device
        assert mobile.memory.read(PAGE0, 8) == b"original"
        # the diverged server copy is gone from the cache: a replayed
        # invocation re-ships pre-offload state instead of keeping it
        offload_cycle(uva, [pidx])
        assert server.memory.read(PAGE0, 8) == b"original"
        finish_cycle(uva)

    def test_replay_after_abort_matches_pre_offload_state(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(PAGE0, uva.page_size)
        mobile.memory.write(PAGE0, b"preoffld")
        pidx = mobile.memory.page_index(PAGE0)
        offload_cycle(uva, [pidx])
        finish_cycle(uva)
        snapshot = bytes(mobile.memory.pages[pidx])
        offload_cycle(uva, [pidx])
        server.memory.write(PAGE0 + 100, b"garbage")
        uva.write_back(defer_commit=True)
        uva.abort_invocation()
        assert bytes(mobile.memory.pages[pidx]) == snapshot


class TestAdaptivePrefetch:
    def test_faulted_page_promoted_into_next_prefetch(self):
        advisor = PrefetchAdvisor()
        advisor.observe("k", shipped=set(), touched=set(), faulted={7})
        adjusted, promoted, _ = advisor.adjust("k", {1, 2})
        assert 7 in adjusted
        assert promoted == 1

    def test_untouched_page_demoted_after_wasted_streak(self):
        advisor = PrefetchAdvisor()
        # shipped twice, never touched -> demoted from the third set
        for _ in range(2):
            advisor.observe("k", shipped={3}, touched=set(), faulted=set())
        adjusted, _, demoted = advisor.adjust("k", {3, 4})
        assert 3 not in adjusted
        assert 4 in adjusted
        assert demoted == 1

    def test_fault_resurrects_demoted_page(self):
        advisor = PrefetchAdvisor()
        for _ in range(2):
            advisor.observe("k", shipped={3}, touched=set(), faulted=set())
        advisor.observe("k", shipped=set(), touched=set(), faulted={3})
        adjusted, _, _ = advisor.adjust("k", {3})
        assert 3 in adjusted

    def test_histories_are_per_target(self):
        advisor = PrefetchAdvisor()
        advisor.observe("a", shipped=set(), touched=set(), faulted={9})
        adjusted, promoted, _ = advisor.adjust("b", {1})
        assert 9 not in adjusted and promoted == 0

    def test_session_records_hits_and_waste(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(PAGE0, uva.page_size * 2)
        p0 = mobile.memory.page_index(PAGE0)
        p1 = p0 + 1
        offload_cycle(uva, [p0, p1])
        server.memory.read(PAGE0, 4)      # p0 used, p1 wasted
        finish_cycle(uva)
        assert uva.stats.prefetch_hits == 1
        assert uva.stats.prefetch_wasted == 1
        assert uva.stats.prefetch_hit_ratio == 0.5


# -- differential: features on vs. off, end to end ----------------------
#
# The workload offloads the same hot function five times with small
# working-set churn between calls — the shape the cross-invocation
# cache is built for.  ``forced_targets`` pins the offload target to the
# function itself so each call is a separate invocation (left to its own
# devices the outliner would lift main's loop and fuse all five).
MULTI_SRC = r"""
int *buf;
int n;

int crunch(int salt) {
    int i, r, acc = 0;
    for (r = 0; r < 4; r++) {
        for (i = 0; i < n; i++) {
            acc += ((buf[i] ^ salt) * (i & 7)) + (acc >> 5);
        }
    }
    for (i = 0; i < 64; i++) {
        buf[i] = acc + i;
    }
    return acc;
}

int main() {
    int i, k, total = 0;
    scanf("%d", &n);
    buf = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) buf[i] = i * 2654435761u;
    for (k = 0; k < 5; k++) {
        buf[100 + k] = buf[100 + k] ^ (k * 97);
        total = total ^ crunch(k);
        printf("%d %d\n", k, total);
    }
    printf("total=%d\n", total);
    return 0;
}
"""
MULTI_STDIN = b"1500\n"

NAIVE_FLAGS = dict(enable_page_cache=False, enable_delta_transfer=False,
                   enable_adaptive_prefetch=False)


@pytest.fixture(scope="module")
def multi():
    module = compile_c(MULTI_SRC, "multi")
    profile = profile_module(module, stdin=MULTI_STDIN)
    program = NativeOffloaderCompiler(
        CompilerOptions(forced_targets=["crunch"])).compile(module, profile)
    local = run_local(module, stdin=MULTI_STDIN)
    return program, local


def run_session(program, fault_plan=None, **flags):
    options = SessionOptions(enable_dynamic_estimation=False,
                             fault_plan=fault_plan, **flags)
    session = OffloadSession(program, FAST_WIFI, options=options,
                             stdin=MULTI_STDIN)
    return session.run(), session


def shared_pages(machine):
    """Mobile pages holding program state the data plane is responsible
    for: the UVA heap and the globals segment."""
    mem = machine.memory
    lo_heap = UVA_HEAP_BASE
    hi_heap = UVA_HEAP_BASE + UVA_HEAP_SIZE
    lo_glob = GLOBAL_BASES["mobile"]
    hi_glob = GLOBAL_BASES["server"]
    out = {}
    for pidx, page in mem.pages.items():
        base = pidx * mem.page_size
        if lo_heap <= base < hi_heap or lo_glob <= base < hi_glob:
            out[pidx] = bytes(page)
    return out


class TestDifferential:
    def test_identical_output_and_memory(self, multi):
        program, local = multi
        naive, s_naive = run_session(program, **NAIVE_FLAGS)
        incr, s_incr = run_session(program)
        assert naive.stdout == local.stdout
        assert incr.stdout == local.stdout
        # whole-memory comparison: every mapped mobile page byte-equal
        mn, mi = s_naive.mobile.memory, s_incr.mobile.memory
        assert sorted(mn.pages) == sorted(mi.pages)
        for pidx in mn.pages:
            assert bytes(mn.pages[pidx]) == bytes(mi.pages[pidx]), (
                f"page {pidx:#x} diverged")

    def test_repeated_offloads_and_reduced_traffic(self, multi):
        program, _ = multi
        naive, _ = run_session(program, **NAIVE_FLAGS)
        incr, _ = run_session(program)
        assert len(incr.invocations) == 5
        assert incr.offloaded_invocations == naive.offloaded_invocations
        total_naive = naive.bytes_to_server + naive.bytes_to_mobile
        total_incr = incr.bytes_to_server + incr.bytes_to_mobile
        # the formal >=40% bar lives in benchmarks/test_bytes_on_wire.py;
        # here we pin that the features engage and traffic drops
        assert total_incr < total_naive
        us = incr.uva_stats
        assert us.cache_kept_pages > 0
        assert us.cache_skipped_prefetch_pages > 0
        assert us.delta_saved_bytes > 0

    def test_stats_surface_phase_seconds(self, multi):
        program, _ = multi
        result, _ = run_session(program,
                                enable_batching=False)
        us = result.uva_stats
        # outside a batching window the phases charge real link time
        assert us.prefetch_seconds > 0
        assert us.writeback_seconds > 0


class TestDifferentialUnderFaults:
    """Link dies after N messages — for small N during init, for larger
    N mid-finalize — then recovers.  Every schedule must end with output
    identical to local and shared memory identical to the fault-free
    ground truth (abort rollback + local replay)."""

    SWEEP = (1, 2, 3, 4, 6, 8, 11)

    @pytest.fixture(scope="class")
    def ground_truth(self, multi):
        program, local = multi
        naive, session = run_session(program, **NAIVE_FLAGS)
        assert naive.stdout == local.stdout
        return shared_pages(session.mobile)

    @pytest.mark.parametrize("after", SWEEP)
    def test_fault_schedule(self, multi, ground_truth, after):
        program, local = multi
        plan = FaultPlan(seed=7, disconnect_after_messages=after,
                         reconnect_rate=0.6)
        result, session = run_session(program, fault_plan=plan)
        assert result.stdout == local.stdout
        assert shared_pages(session.mobile) == ground_truth

    def test_sweep_exercises_aborts(self, multi):
        program, local = multi
        aborted = 0
        for after in self.SWEEP:
            plan = FaultPlan(seed=7, disconnect_after_messages=after,
                             reconnect_rate=0.6)
            result, _ = run_session(program, fault_plan=plan)
            aborted += result.aborted_invocations
        assert aborted > 0  # the sweep really hit mid-flight failures
