"""Tests for scalar encode/decode — byte order, pointer width, floats."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import IntType, PointerType, I8, I16, I32, I64, F32, F64, ptr
from repro.machine import decode_scalar, encode_scalar, scalar_size, \
    to_signed, to_unsigned
from repro.targets import ARM32, MIPS32BE, X86_64, DataLayout

LITTLE = DataLayout(ARM32)
BIG = DataLayout(MIPS32BE)
WIDE = DataLayout(X86_64)


class TestSignHelpers:
    def test_to_signed(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127
        assert to_signed(0x80, 8) == -128
        assert to_signed(5, 32) == 5

    def test_to_unsigned(self):
        assert to_unsigned(-1, 8) == 0xFF
        assert to_unsigned(-1, 32) == 0xFFFFFFFF
        assert to_unsigned(300, 8) == 44

    def test_inverse(self):
        for bits in (8, 16, 32, 64):
            for v in (-1, 0, 1, 2**(bits - 1) - 1, -(2**(bits - 1))):
                assert to_signed(to_unsigned(v, bits), bits) == v


class TestEncodeDecode:
    def test_int_little_endian(self):
        assert encode_scalar(0x01020304, I32, LITTLE) == \
            b"\x04\x03\x02\x01"

    def test_int_big_endian(self):
        assert encode_scalar(0x01020304, I32, BIG) == b"\x01\x02\x03\x04"

    def test_double_roundtrip(self):
        for layout in (LITTLE, BIG):
            data = encode_scalar(3.14159, F64, layout)
            assert len(data) == 8
            assert decode_scalar(data, F64, layout) == 3.14159

    def test_float32_precision(self):
        data = encode_scalar(1.5, F32, LITTLE)
        assert len(data) == 4
        assert decode_scalar(data, F32, LITTLE) == 1.5

    def test_pointer_width_follows_layout(self):
        assert len(encode_scalar(0x1000, ptr(I8), LITTLE)) == 4
        assert len(encode_scalar(0x1000, ptr(I8), WIDE)) == 8

    def test_narrow_pointer_overflow_detected(self):
        """A 64-bit address cannot be stored through a 32-bit unified
        pointer — the precondition of address-size unification."""
        with pytest.raises(OverflowError):
            encode_scalar(1 << 33, ptr(I8), LITTLE)

    def test_pointer_zero_extension_on_load(self):
        unified = DataLayout(X86_64, pointer_bytes=4)
        data = encode_scalar(0x40001234, ptr(I8), unified)
        assert len(data) == 4
        assert decode_scalar(data, ptr(I8), unified) == 0x40001234

    def test_scalar_size(self):
        assert scalar_size(I8, LITTLE) == 1
        assert scalar_size(I64, LITTLE) == 8
        assert scalar_size(F32, LITTLE) == 4
        assert scalar_size(ptr(I8), WIDE) == 8


@given(st.integers(min_value=0, max_value=2**64 - 1),
       st.sampled_from([I8, I16, I32, I64]),
       st.sampled_from([LITTLE, BIG, WIDE]))
@settings(max_examples=200, deadline=None)
def test_int_roundtrip_any_endianness(value, itype, layout):
    value &= itype.max_unsigned
    data = encode_scalar(value, itype, layout)
    assert decode_scalar(data, itype, layout) == value


@given(st.floats(allow_nan=False, allow_infinity=True, width=64),
       st.sampled_from([LITTLE, BIG]))
@settings(max_examples=150, deadline=None)
def test_double_roundtrip_property(value, layout):
    data = encode_scalar(value, F64, layout)
    assert decode_scalar(data, F64, layout) == value


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_endianness_translation_is_byte_reversal(value):
    """Little- and big-endian encodings of the same value are exact byte
    reversals — the invariant the endianness-translation pass relies on."""
    little = encode_scalar(value, I32, LITTLE)
    big = encode_scalar(value, I32, BIG)
    assert little == big[::-1]
