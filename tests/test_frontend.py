"""Tests for the mini-C frontend: lexer, parser, and end-to-end codegen
semantics (each snippet is compiled, executed, and its output checked)."""

import pytest

from repro.frontend import (LexError, ParseError, compile_c, parse_c,
                            preprocess, tokenize)

from conftest import run_c


class TestLexer:
    def test_tokens(self):
        toks = tokenize("int x = 42;")
        assert [(t.kind, t.text) for t in toks[:-1]] == [
            ("kw", "int"), ("id", "x"), ("op", "="), ("int", "42"),
            ("op", ";")]

    def test_numbers(self):
        toks = tokenize("1 0x1F 2.5 1e3 3.0f 42u 7L")
        values = [t.value for t in toks[:-1]]
        assert values == [1, 31, 2.5, 1000.0, 3.0, 42, 7]

    def test_char_and_string_escapes(self):
        toks = tokenize(r"'\n' "
                        r'"a\tb\0"')
        assert toks[0].value == 10
        assert toks[1].value == "a\tb\0"

    def test_adjacent_strings_merge(self):
        toks = tokenize('"foo" "bar"')
        assert toks[0].value == "foobar"

    def test_comments_stripped(self):
        text = preprocess("a /* multi\nline */ b // tail\nc")
        assert "multi" not in text and "tail" not in text
        assert text.count("\n") == 2  # line numbers preserved

    def test_defines_substituted(self):
        text = preprocess("#define N 10\nint a[N];")
        assert "int a[10];" in text

    def test_nested_defines(self):
        text = preprocess("#define A B\n#define B 3\nx = A;")
        assert "x = 3;" in text

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestParser:
    def test_typedef_struct(self):
        unit = parse_c("typedef struct { int a; double b; } Pair;"
                       "Pair p;")
        kinds = [type(d).__name__ for d in unit.decls]
        assert "StructDef" in kinds
        assert "TypedefDecl" in kinds

    def test_function_pointer_typedef(self):
        unit = parse_c("typedef int (*CB)(int, double);")
        td = unit.decls[-1]
        assert td.type.func_params is not None
        assert td.type.func_pointers == 1

    def test_enum_constants_fold(self):
        unit = parse_c("enum { A, B = 5, C }; int x[C];")
        glob = unit.decls[-1]
        assert glob.type.array_dims == [6]

    def test_const_expr_array_dim(self):
        unit = parse_c("#define N 8\nint grid[N * N + 1];")
        assert unit.decls[-1].type.array_dims == [65]

    def test_error_reports_line(self):
        with pytest.raises(ParseError, match="line 3"):
            parse_c("int main() {\n  int x;\n  x = ;\n}")

    def test_statement_before_case_rejected(self):
        with pytest.raises(ParseError):
            parse_c("int main(){switch(1){int x;}}")


class TestExpressionSemantics:
    def test_precedence(self):
        assert run_c(r'int main(){printf("%d\n", 2 + 3 * 4);return 0;}')[1] \
            == "14\n"

    def test_ternary(self):
        src = r'int main(){int x = 5;' \
              r'printf("%d\n", x > 3 ? x * 2 : -1);return 0;}'
        assert run_c(src)[1] == "10\n"

    def test_short_circuit_and(self):
        src = r'''
        int calls = 0;
        int bump(void) { calls++; return 1; }
        int main() {
            int r = 0 && bump();
            printf("%d %d\n", r, calls);
            return 0;
        }
        '''
        assert run_c(src)[1] == "0 0\n"

    def test_short_circuit_or(self):
        src = r'''
        int calls = 0;
        int bump(void) { calls++; return 0; }
        int main() {
            int r = 1 || bump();
            printf("%d %d\n", r, calls);
            return 0;
        }
        '''
        assert run_c(src)[1] == "1 0\n"

    def test_pre_post_increment(self):
        src = r'''
        int main() {
            int i = 5;
            printf("%d ", i++);
            printf("%d ", i);
            printf("%d ", ++i);
            printf("%d\n", i--);
            return 0;
        }
        '''
        assert run_c(src)[1] == "5 6 7 7\n"

    def test_compound_assignment(self):
        src = r'''
        int main() {
            int x = 10;
            x += 5; x *= 2; x -= 6; x /= 4; x %= 4;
            printf("%d\n", x);
            return 0;
        }
        '''
        assert run_c(src)[1] == "2\n"

    def test_unsigned_comparison(self):
        src = r'''
        int main() {
            unsigned int big = 0xFFFFFFFF;
            printf("%d\n", big > 5u ? 1 : 0);
            return 0;
        }
        '''
        assert run_c(src)[1] == "1\n"

    def test_signed_division_and_modulo(self):
        src = r'int main(){printf("%d %d\n", -7 / 2, -7 % 2);return 0;}'
        assert run_c(src)[1] == "-3 -1\n"

    def test_integer_promotion_char_arith(self):
        src = r'''
        int main() {
            char a = 100; char b = 100;
            int sum = a + b;          /* promoted: no 8-bit wrap */
            char wrapped = (char)(a + b);
            printf("%d %d\n", sum, wrapped);
            return 0;
        }
        '''
        assert run_c(src)[1] == "200 -56\n"

    def test_float_int_conversions(self):
        src = r'''
        int main() {
            double d = 7.9;
            int i = (int) d;
            double back = i / 2.0;
            printf("%d %.1f\n", i, back);
            return 0;
        }
        '''
        assert run_c(src)[1] == "7 3.5\n"

    def test_sizeof(self):
        src = r'''
        typedef struct { char c; double d; } S;
        int main() {
            printf("%d %d %d %d\n", (int)sizeof(int),
                   (int)sizeof(double), (int)sizeof(S),
                   (int)sizeof(char*));
            return 0;
        }
        '''
        # compiled for the 32-bit mobile target (ARM layout)
        assert run_c(src)[1] == "4 8 16 4\n"

    def test_comma_operator(self):
        src = r'int main(){int x = (1, 2, 3); printf("%d\n", x);return 0;}'
        assert run_c(src)[1] == "3\n"

    def test_bitwise_ops(self):
        src = r'int main(){printf("%d %d %d %d\n",' \
              r' 12 & 10, 12 | 10, 12 ^ 10, ~0 & 255);return 0;}'
        assert run_c(src)[1] == "8 14 6 255\n"


class TestPointersAndArrays:
    def test_pointer_arithmetic(self):
        src = r'''
        int main() {
            int a[5]; int *p = a; int i;
            for (i = 0; i < 5; i++) a[i] = i * i;
            printf("%d %d %d\n", *p, *(p + 3), p[4]);
            return 0;
        }
        '''
        assert run_c(src)[1] == "0 9 16\n"

    def test_pointer_difference(self):
        src = r'''
        int main() {
            int a[10];
            int *p = &a[7];
            int *q = &a[2];
            printf("%d\n", (int)(p - q));
            return 0;
        }
        '''
        assert run_c(src)[1] == "5\n"

    def test_2d_array(self):
        src = r'''
        int main() {
            int m[3][4];
            int i, j, s = 0;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            for (i = 0; i < 3; i++) s += m[i][i];
            printf("%d %d\n", s, m[2][3]);
            return 0;
        }
        '''
        assert run_c(src)[1] == "33 23\n"

    def test_pointer_to_pointer(self):
        src = r'''
        int main() {
            int x = 7;
            int *p = &x;
            int **pp = &p;
            **pp = 9;
            printf("%d\n", x);
            return 0;
        }
        '''
        assert run_c(src)[1] == "9\n"

    def test_array_decay_to_function(self):
        src = r'''
        int sum(int *v, int n) {
            int i, s = 0;
            for (i = 0; i < n; i++) s += v[i];
            return s;
        }
        int main() {
            int a[4];
            int i;
            for (i = 0; i < 4; i++) a[i] = i + 1;
            printf("%d\n", sum(a, 4));
            return 0;
        }
        '''
        assert run_c(src)[1] == "10\n"

    def test_string_literal_global(self):
        src = r'''
        char *msg = "shared";
        int main() { printf("%s %s\n", msg, "inline"); return 0; }
        '''
        assert run_c(src)[1] == "shared inline\n"

    def test_local_array_initializer(self):
        src = r'''
        int main() {
            int a[4] = { 3, 1, 4, 1 };
            printf("%d\n", a[0] * 1000 + a[1] * 100 + a[2] * 10 + a[3]);
            return 0;
        }
        '''
        assert run_c(src)[1] == "3141\n"


class TestStructs:
    def test_struct_member_access(self):
        src = r'''
        typedef struct { int x; int y; } Point;
        int main() {
            Point p;
            p.x = 3; p.y = 4;
            printf("%d\n", p.x * p.x + p.y * p.y);
            return 0;
        }
        '''
        assert run_c(src)[1] == "25\n"

    def test_struct_pointer_arrow(self):
        src = r'''
        typedef struct Node { int value; struct Node *next; } Node;
        int main() {
            Node a; Node b;
            a.value = 1; a.next = &b;
            b.value = 2; b.next = NULL;
            int total = 0;
            Node *cur = &a;
            while (cur) { total += cur->value; cur = cur->next; }
            printf("%d\n", total);
            return 0;
        }
        '''
        assert run_c(src)[1] == "3\n"

    def test_struct_by_value_argument(self):
        src = r'''
        typedef struct { int a; int b; } Pair;
        int apply(Pair p) { p.a = 99; return p.a + p.b; }
        int main() {
            Pair p; p.a = 1; p.b = 2;
            int r = apply(p);
            printf("%d %d\n", r, p.a);   /* caller copy untouched */
            return 0;
        }
        '''
        assert run_c(src)[1] == "101 1\n"

    def test_struct_return_by_value(self):
        src = r'''
        typedef struct { char from, to; double score; } Move;
        Move mk(double s) { Move m; m.from = 1; m.to = 2; m.score = s; return m; }
        int main() {
            Move m = mk(4.5);
            printf("%d %d %.1f\n", m.from, m.to, m.score);
            return 0;
        }
        '''
        assert run_c(src)[1] == "1 2 4.5\n"

    def test_struct_assignment_copies(self):
        src = r'''
        typedef struct { int v[3]; } Box;
        int main() {
            Box a; Box b;
            a.v[0] = 1; a.v[1] = 2; a.v[2] = 3;
            b = a;
            b.v[1] = 99;
            printf("%d %d\n", a.v[1], b.v[1]);
            return 0;
        }
        '''
        assert run_c(src)[1] == "2 99\n"

    def test_array_of_structs(self):
        src = r'''
        typedef struct { char tag; int n; } Cell;
        Cell cells[4];
        int main() {
            int i, s = 0;
            for (i = 0; i < 4; i++) { cells[i].tag = 'a'; cells[i].n = i; }
            for (i = 0; i < 4; i++) s += cells[i].n;
            printf("%d %c\n", s, cells[2].tag);
            return 0;
        }
        '''
        assert run_c(src)[1] == "6 a\n"


class TestControlFlow:
    def test_switch_with_fallthrough(self):
        src = r'''
        int classify(int x) {
            int r = 0;
            switch (x) {
                case 1:
                case 2: r = 12; break;
                case 3: r = 3; break;
                default: r = -1;
            }
            return r;
        }
        int main() {
            printf("%d %d %d %d\n", classify(1), classify(2),
                   classify(3), classify(9));
            return 0;
        }
        '''
        assert run_c(src)[1] == "12 12 3 -1\n"

    def test_do_while(self):
        src = r'''
        int main() {
            int i = 10, n = 0;
            do { n++; i--; } while (i > 7);
            printf("%d\n", n);
            return 0;
        }
        '''
        assert run_c(src)[1] == "3\n"

    def test_break_continue(self):
        src = r'''
        int main() {
            int i, s = 0;
            for (i = 0; i < 100; i++) {
                if (i % 2) continue;
                if (i > 10) break;
                s += i;
            }
            printf("%d\n", s);
            return 0;
        }
        '''
        assert run_c(src)[1] == "30\n"

    def test_nested_loops(self):
        src = r'''
        int main() {
            int i, j, c = 0;
            for (i = 0; i < 5; i++)
                for (j = i; j < 5; j++)
                    c++;
            printf("%d\n", c);
            return 0;
        }
        '''
        assert run_c(src)[1] == "15\n"

    def test_global_initializers(self):
        src = r'''
        int scalar = 42;
        double pi = 3.25;
        int table[4] = { 9, 8, 7 };
        int main() {
            printf("%d %.2f %d %d %d\n", scalar, pi,
                   table[0], table[2], table[3]);
            return 0;
        }
        '''
        assert run_c(src)[1] == "42 3.25 9 7 0\n"

    def test_function_pointer_param(self):
        src = r'''
        typedef int (*OP)(int, int);
        int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        int fold(OP op, int *v, int n, int seed) {
            int i, acc = seed;
            for (i = 0; i < n; i++) acc = op(acc, v[i]);
            return acc;
        }
        int main() {
            int v[3];
            int i;
            for (i = 0; i < 3; i++) v[i] = i + 2;
            printf("%d %d\n", fold(add, v, 3, 0), fold(mul, v, 3, 1));
            return 0;
        }
        '''
        assert run_c(src)[1] == "9 24\n"
