"""Tests for the ABI layout engine — including the paper's Figure 4 case —
plus hypothesis property tests over random structs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (ArrayType, FloatType, IntType, PointerType,
                      StructType, I8, I16, I32, I64, F32, F64, ptr)
from repro.targets import (ARM32, MIPS32BE, X86, X86_64, DataLayout,
                           StructLayout, layouts_differ)


def move_struct() -> StructType:
    return StructType("Move", [("from", I8), ("to", I8), ("score", F64)])


class TestFigure4:
    """The paper's Figure 4: Move has different layouts on IA32 and ARM."""

    def test_arm_layout(self):
        layout = DataLayout(ARM32).struct_layout(move_struct())
        assert layout.offsets == (0, 1, 8)
        assert layout.size == 16

    def test_ia32_layout(self):
        layout = DataLayout(X86).struct_layout(move_struct())
        assert layout.offsets == (0, 1, 4)
        assert layout.size == 12

    def test_layouts_differ_detects_it(self):
        diff = layouts_differ(DataLayout(ARM32), DataLayout(X86),
                              [move_struct()])
        assert diff == ["Move"]

    def test_arm_and_x86_64_agree_on_move(self):
        diff = layouts_differ(DataLayout(ARM32), DataLayout(X86_64),
                              [move_struct()])
        assert diff == []

    def test_pointer_field_differs_between_32_and_64(self):
        packet = StructType("Packet", [("tag", I8), ("p", ptr(I8)),
                                       ("len", I32)])
        a = DataLayout(ARM32).struct_layout(packet)
        b = DataLayout(X86_64).struct_layout(packet)
        assert a.offsets == (0, 4, 8)
        assert b.offsets == (0, 8, 16)
        assert a.size == 12 and b.size == 24


class TestScalarSizes:
    def test_int_sizes(self):
        layout = DataLayout(ARM32)
        assert layout.size_of(I8) == 1
        assert layout.size_of(I16) == 2
        assert layout.size_of(I32) == 4
        assert layout.size_of(I64) == 8

    def test_pointer_size_tracks_target(self):
        assert DataLayout(ARM32).size_of(ptr(I8)) == 4
        assert DataLayout(X86_64).size_of(ptr(I8)) == 8

    def test_pointer_size_override(self):
        unified = DataLayout(X86_64, pointer_bytes=4)
        assert unified.size_of(ptr(I8)) == 4
        assert unified.arch is X86_64

    def test_array_size(self):
        assert DataLayout(ARM32).size_of(ArrayType(I32, 10)) == 40

    def test_element_offset(self):
        layout = DataLayout(ARM32)
        assert layout.element_offset(ArrayType(I64, 8), 3) == 24
        assert layout.element_offset(move_struct(), 2) == 8


class TestStructOverride:
    def test_override_replaces_native(self):
        native = DataLayout(X86)
        unified_layout = DataLayout(ARM32).struct_layout(move_struct())
        overridden = native.clone_with(
            struct_overrides={"Move": unified_layout})
        assert overridden.struct_layout(move_struct()).offsets == (0, 1, 8)
        # the original is untouched
        assert native.struct_layout(move_struct()).offsets == (0, 1, 4)


# -- hypothesis property tests --------------------------------------------

_scalar_types = st.sampled_from(
    [I8, I16, I32, I64, F32, F64, ptr(I8), ptr(I64)])
_field_lists = st.lists(_scalar_types, min_size=1, max_size=8)
_arches = st.sampled_from([ARM32, X86, X86_64, MIPS32BE])

_counter = [0]


def _fresh_struct(types) -> StructType:
    _counter[0] += 1
    return StructType(f"S{_counter[0]}",
                      [(f"f{i}", t) for i, t in enumerate(types)])


@given(_field_lists, _arches)
@settings(max_examples=120, deadline=None)
def test_layout_invariants(types, arch):
    """Every field offset is aligned, fields never overlap, and the struct
    size is a multiple of its alignment and covers every field."""
    struct = _fresh_struct(types)
    layout = DataLayout(arch)
    sl = layout.struct_layout(struct)
    end = 0
    for (name, ftype), offset in zip(struct.fields, sl.offsets):
        align = layout.align_of(ftype)
        assert offset % align == 0, f"{name} misaligned"
        assert offset >= end, f"{name} overlaps the previous field"
        end = offset + layout.size_of(ftype)
    assert sl.size >= end
    assert sl.size % sl.align == 0
    assert sl.align == max(layout.align_of(t) for _, t in struct.fields)


@given(_field_lists)
@settings(max_examples=60, deadline=None)
def test_unified_layout_fits_on_every_target(types):
    """The mobile (ARM32) layout, imposed on any other target, still has
    room for every field as stored under the *unified* pointer width."""
    struct = _fresh_struct(types)
    mobile = DataLayout(ARM32)
    unified = mobile.struct_layout(struct)
    for arch in (X86, X86_64, MIPS32BE):
        target = DataLayout(arch, pointer_bytes=4,
                            struct_overrides={struct.name: unified})
        sl = target.struct_layout(struct)
        assert sl == unified
        end = 0
        for (_, ftype), offset in zip(struct.fields, sl.offsets):
            assert offset >= end
            end = offset + target.size_of(ftype)
        assert sl.size >= end


@given(_field_lists, _arches)
@settings(max_examples=60, deadline=None)
def test_layout_is_deterministic(types, arch):
    struct = _fresh_struct(types)
    a = DataLayout(arch).struct_layout(struct)
    b = DataLayout(arch).struct_layout(struct)
    assert a == b
