"""Tests for the simulated C library."""

import pytest

from conftest import run_c


class TestPrintf:
    def test_integers(self):
        out = run_c(r'int main(){printf("%d %d %u\n", -5, 42, 7);return 0;}')
        assert out[1] == "-5 42 7\n"

    def test_long(self):
        out = run_c(r'int main(){long x = 5000000000; '
                    r'printf("%ld\n", x); return 0;}')
        assert out[1] == "5000000000\n"

    def test_floats(self):
        out = run_c(r'int main(){printf("%.2f %.3lf\n", 1.5, 2.0/3.0);'
                    r'return 0;}')
        assert out[1] == "1.50 0.667\n"

    def test_strings_and_chars(self):
        out = run_c(r'int main(){printf("%s:%c!\n", "hey", 65);return 0;}')
        assert out[1] == "hey:A!\n"

    def test_hex_and_percent(self):
        out = run_c(r'int main(){printf("%x 100%%\n", 255);return 0;}')
        assert out[1] == "ff 100%\n"

    def test_width_and_padding(self):
        out = run_c(r'int main(){printf("[%5d][%-4d][%04d]\n", 42, 7, 3);'
                    r'return 0;}')
        assert out[1] == "[   42][7   ][0003]\n"

    def test_sprintf(self):
        src = r'''
        int main() {
            char buf[64];
            sprintf(buf, "v=%d", 12);
            printf("%s|%d\n", buf, (int) strlen(buf));
            return 0;
        }
        '''
        assert run_c(src)[1] == "v=12|4\n"


class TestScanf:
    def test_ints(self):
        src = r'int main(){int a,b; scanf("%d %d",&a,&b);' \
              r'printf("%d\n", a*b); return 0;}'
        assert run_c(src, stdin=b"6 7\n")[1] == "42\n"

    def test_negative(self):
        src = r'int main(){int a; scanf("%d",&a);printf("%d\n",a);return 0;}'
        assert run_c(src, stdin=b"-13")[1] == "-13\n"

    def test_double(self):
        src = r'int main(){double d; scanf("%lf",&d);' \
              r'printf("%.1f\n", d*2.0); return 0;}'
        assert run_c(src, stdin=b"2.25")[1] == "4.5\n"

    def test_string_token(self):
        src = r'int main(){char w[32]; scanf("%s", w);' \
              r'printf("[%s]\n", w); return 0;}'
        assert run_c(src, stdin=b"  hello world")[1] == "[hello]\n"

    def test_return_value_counts_assignments(self):
        src = r'int main(){int a,b; int n = scanf("%d %d",&a,&b);' \
              r'printf("%d\n", n); return 0;}'
        assert run_c(src, stdin=b"5\n")[1] == "1\n"


class TestStringsAndMemory:
    def test_strcmp_orders(self):
        src = r'''
        int main() {
            printf("%d %d %d\n",
                   strcmp("abc", "abc"),
                   strcmp("abc", "abd") < 0 ? -1 : 1,
                   strcmp("b", "a") > 0 ? 1 : -1);
            return 0;
        }
        '''
        assert run_c(src)[1] == "0 -1 1\n"

    def test_strcpy_strcat(self):
        src = r'''
        int main() {
            char buf[32];
            strcpy(buf, "foo");
            strcat(buf, "bar");
            printf("%s %d\n", buf, (int) strlen(buf));
            return 0;
        }
        '''
        assert run_c(src)[1] == "foobar 6\n"

    def test_memset_memcpy(self):
        src = r'''
        int main() {
            char a[8]; char b[8];
            int i;
            memset(a, 65, 7);
            a[7] = 0;
            memcpy(b, a, 8);
            printf("%s\n", b);
            return 0;
        }
        '''
        assert run_c(src)[1] == "AAAAAAA\n"

    def test_atoi(self):
        src = r'int main(){printf("%d\n", atoi("  123junk"));return 0;}'
        assert run_c(src)[1] == "123\n"

    def test_calloc_zeroes(self):
        src = r'''
        int main() {
            int *p = (int*) calloc(10, sizeof(int));
            int i, s = 0;
            for (i = 0; i < 10; i++) s += p[i];
            printf("%d\n", s);
            return 0;
        }
        '''
        assert run_c(src)[1] == "0\n"

    def test_realloc_preserves(self):
        src = r'''
        int main() {
            int *p = (int*) malloc(2 * sizeof(int));
            p[0] = 11; p[1] = 22;
            p = (int*) realloc(p, 8 * sizeof(int));
            printf("%d %d\n", p[0], p[1]);
            return 0;
        }
        '''
        assert run_c(src)[1] == "11 22\n"


class TestFiles:
    FILES = {"data.txt": b"10\n20\n30\n"}

    def test_fopen_fgets(self):
        src = r'''
        int main() {
            void *f = fopen("data.txt", "r");
            char line[16];
            int total = 0;
            if (!f) return 1;
            while (fgets(line, 16, f)) total += atoi(line);
            fclose(f);
            printf("%d\n", total);
            return 0;
        }
        '''
        assert run_c(src, files=dict(self.FILES))[1] == "60\n"

    def test_fopen_missing_returns_null(self):
        src = r'''
        int main() {
            void *f = fopen("nope.txt", "r");
            printf("%d\n", f == NULL ? 1 : 0);
            return 0;
        }
        '''
        assert run_c(src)[1] == "1\n"

    def test_fread_fwrite_roundtrip(self):
        src = r'''
        int main() {
            char buf[8];
            void *w = fopen("out.bin", "w");
            fwrite("abcdef", 1, 6, w);
            fclose(w);
            void *r = fopen("out.bin", "r");
            int got = (int) fread(buf, 1, 6, r);
            buf[got] = 0;
            printf("%d %s\n", got, buf);
            return 0;
        }
        '''
        assert run_c(src)[1] == "6 abcdef\n"

    def test_feof_and_fgetc(self):
        src = r'''
        int main() {
            void *f = fopen("data.txt", "r");
            int n = 0;
            while (!feof(f)) {
                int c = fgetc(f);
                if (c == EOF) break;
                if (c == 10) n++;
            }
            fclose(f);
            printf("%d lines\n", n);
            return 0;
        }
        '''
        assert run_c(src, files=dict(self.FILES))[1] == "3 lines\n"


class TestMathAndMisc:
    def test_math_functions(self):
        src = r'''
        int main() {
            printf("%.1f %.1f %.1f %.1f\n",
                   sqrt(16.0), fabs(-2.5), pow(2.0, 10.0), floor(3.7));
            return 0;
        }
        '''
        assert run_c(src)[1] == "4.0 2.5 1024.0 3.0\n"

    def test_abs(self):
        assert run_c(r'int main(){printf("%d\n", abs(-9));return 0;}')[1] \
            == "9\n"

    def test_rand_deterministic(self):
        src = r'''
        int main() {
            srand(7);
            int a = rand();
            srand(7);
            int b = rand();
            printf("%d\n", a == b ? 1 : 0);
            return 0;
        }
        '''
        assert run_c(src)[1] == "1\n"

    def test_exit_code(self):
        assert run_c(r'int main(){exit(3); return 0;}')[0] == 3

    def test_puts_putchar(self):
        src = r'int main(){puts("line"); putchar(88); putchar(10);return 0;}'
        assert run_c(src)[1] == "line\nX\n"
