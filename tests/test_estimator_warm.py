"""Warm-traffic coverage for both estimators (docs/uva-data-plane.md):
the static ``warm_transfer_fraction`` discount and the dynamic
estimator's cold/warm traffic split, including the post-abort cold
restart."""

from __future__ import annotations

import pytest

from repro.offload.estimator import (EstimatorParams,
                                     StaticPerformanceEstimator, mbps)
from repro.offload.partition import OffloadTarget
from repro.profiler.profile_data import CandidateProfile, ProfileData
from repro.runtime import DynamicPerformanceEstimator, FAST_WIFI


def _candidate(seconds=1.0, invocations=1, mem_bytes=64 * 1024):
    prof = CandidateProfile("t", "function", "t")
    prof.total_seconds = seconds
    prof.invocations = invocations
    prof.pages_touched = set(range(max(1, mem_bytes // 4096)))
    return prof


def _profile(seconds=1.0, invocations=1, mem_bytes=64 * 1024):
    prof = _candidate(seconds, invocations, mem_bytes)
    return ProfileData(module_name="m", arch_name="arm32",
                       program_seconds=seconds, candidates={"t": prof})


class TestStaticWarmFraction:
    def _params(self, warm=1.0):
        return EstimatorParams(performance_ratio=4.0,
                               bandwidth_bytes_per_s=mbps(200),
                               warm_transfer_fraction=warm)

    def test_default_is_the_papers_equation(self):
        est = StaticPerformanceEstimator(self._params())
        cand = _candidate(invocations=5)
        out = est.estimate(cand)
        # every invocation pays the full 2M/BW
        assert out.t_comm == pytest.approx(
            2.0 * cand.memory_bytes / mbps(200) * 5)

    def test_warm_fraction_discounts_repeat_invocations(self):
        est = StaticPerformanceEstimator(self._params(warm=0.2))
        cand = _candidate(invocations=5)
        out = est.estimate(cand)
        # first invocation cold, the other four at 20%
        assert out.t_comm == pytest.approx(
            2.0 * cand.memory_bytes / mbps(200) * (1.0 + 4 * 0.2))

    def test_single_invocation_pays_full_cold_cost(self):
        cold = StaticPerformanceEstimator(self._params())
        warm = StaticPerformanceEstimator(self._params(warm=0.1))
        cand = _candidate(invocations=1)
        # the discount has nothing to discount on a single invocation
        assert warm.estimate(cand).t_comm == \
            pytest.approx(cold.estimate(cand).t_comm)

    def test_zero_invocations_zero_comm(self):
        est = StaticPerformanceEstimator(self._params(warm=0.5))
        out = est.estimate(_candidate(invocations=0))
        # nothing ever crosses the wire, so the gain is pure t_ideal
        assert out.t_comm == 0.0
        assert out.t_gain == pytest.approx(out.t_ideal)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            self._params(warm=0.0)
        with pytest.raises(ValueError):
            self._params(warm=1.5)
        with pytest.raises(ValueError):
            self._params(warm=-0.1)


class TestDynamicWarmSplit:
    def _estimator(self):
        return DynamicPerformanceEstimator(_profile(), 4.0, FAST_WIFI)

    def test_first_invocation_uses_profiled_memory(self):
        est = self._estimator()
        out = est.estimate(OffloadTarget(1, "t", "function"))
        assert not out.observed_traffic
        assert out.memory_bytes == pytest.approx(64 * 1024)

    def test_first_observation_is_the_cold_figure(self):
        est = self._estimator()
        est.record_offload_traffic("t", 100_000.0)
        state = est.state["t"]
        assert state.observed_traffic_bytes == 100_000.0
        assert state.warm_traffic_bytes is None
        # with no warm figure yet, estimates still use the cold one
        out = est.estimate(OffloadTarget(1, "t", "function"))
        assert out.memory_bytes == pytest.approx(100_000.0)

    def test_warm_figure_preferred_and_smoothed(self):
        est = self._estimator()
        est.record_offload_traffic("t", 100_000.0)   # cold
        est.record_offload_traffic("t", 10_000.0)    # first warm
        out = est.estimate(OffloadTarget(1, "t", "function"))
        assert out.memory_bytes == pytest.approx(10_000.0)
        est.record_offload_traffic("t", 20_000.0)    # smoothed 0.5/0.5
        out = est.estimate(OffloadTarget(1, "t", "function"))
        assert out.memory_bytes == pytest.approx(15_000.0)

    def test_post_abort_cold_restart_refreshes_cold_figure(self):
        """An abort purges the page cache, so the next success ships
        cold traffic again; it must replace the cold figure, not drag
        the warm EWMA toward cold volumes."""
        est = self._estimator()
        est.record_offload_traffic("t", 100_000.0)   # cold
        est.record_offload_traffic("t", 10_000.0)    # warm
        est.record_offload_failure("t")
        state = est.state["t"]
        assert state.cold_restart
        est.record_offload_traffic("t", 120_000.0)   # cold again
        assert state.observed_traffic_bytes == 120_000.0
        assert state.warm_traffic_bytes == pytest.approx(10_000.0)
        assert not state.cold_restart
        # the next observation goes back into warm smoothing
        est.record_offload_traffic("t", 12_000.0)
        assert state.warm_traffic_bytes == pytest.approx(11_000.0)

    def test_success_clears_failure_backoff(self):
        est = self._estimator()
        est.record_offload_failure("t")
        state = est.state["t"]
        assert state.cooldown == 1
        est.record_offload_traffic("t", 50_000.0)
        assert state.failures == 0
        assert state.cooldown == 0
