"""Tests for the IR type system."""

import pytest

from repro.ir import (ArrayType, FloatType, FunctionType, IntType,
                      PointerType, StructType, VoidType, VOID, I1, I8, I16,
                      I32, I64, F32, F64, ptr, array)


class TestIntType:
    def test_singletons_have_expected_widths(self):
        assert I1.bits == 1
        assert I8.bits == 8
        assert I32.bits == 32
        assert I64.bits == 64

    def test_structural_equality(self):
        assert IntType(32) == I32
        assert IntType(32) != IntType(64)
        assert hash(IntType(8)) == hash(I8)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(12)

    def test_bounds(self):
        assert I8.max_unsigned == 255
        assert I8.min_signed == -128
        assert I8.max_signed == 127
        assert I32.max_signed == 2**31 - 1

    def test_predicates(self):
        assert I32.is_integer and I32.is_scalar
        assert not I32.is_float and not I32.is_pointer


class TestFloatType:
    def test_widths(self):
        assert F32.bits == 32
        assert F64.bits == 64
        with pytest.raises(ValueError):
            FloatType(80)

    def test_str(self):
        assert str(F32) == "float"
        assert str(F64) == "double"


class TestPointerType:
    def test_equality_is_structural(self):
        assert ptr(I32) == PointerType(I32)
        assert ptr(I32) != ptr(I64)

    def test_nested(self):
        pp = ptr(ptr(I8))
        assert pp.pointee == ptr(I8)
        assert str(pp) == "i8**"

    def test_is_scalar(self):
        assert ptr(VOID).is_scalar
        assert ptr(VOID).is_pointer


class TestArrayType:
    def test_basic(self):
        a = array(I32, 10)
        assert a.element == I32
        assert a.count == 10
        assert a.is_aggregate
        assert str(a) == "[10 x i32]"

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(I32, -1)

    def test_equality(self):
        assert array(I8, 4) == array(I8, 4)
        assert array(I8, 4) != array(I8, 5)


class TestStructType:
    def test_nominal_equality(self):
        a = StructType("Foo", [("x", I32)])
        b = StructType("Foo", [("x", I64)])  # same name, different body
        assert a == b  # nominal typing
        assert a != StructType("Bar", [("x", I32)])

    def test_field_access(self):
        s = StructType("Move", [("from", I8), ("to", I8), ("score", F64)])
        assert s.field_index("score") == 2
        assert s.field_names == ["from", "to", "score"]
        assert s.field_types[2] == F64
        with pytest.raises(KeyError):
            s.field_index("nope")

    def test_opaque(self):
        s = StructType("Fwd")
        assert s.is_opaque
        with pytest.raises(ValueError):
            _ = s.fields
        s.set_body([("a", I32)])
        assert not s.is_opaque

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            StructType("Bad", [("x", I32), ("x", I64)])


class TestFunctionType:
    def test_basic(self):
        ft = FunctionType(I32, [I32, F64])
        assert ft.ret == I32
        assert ft.params == [I32, F64]
        assert not ft.variadic

    def test_variadic_str(self):
        ft = FunctionType(VOID, [ptr(I8)], variadic=True)
        assert "..." in str(ft)

    def test_equality(self):
        assert FunctionType(I32, [I8]) == FunctionType(I32, [I8])
        assert FunctionType(I32, [I8]) != FunctionType(I32, [I8],
                                                       variadic=True)


def test_void_is_not_scalar():
    assert VOID.is_void
    assert not VOID.is_scalar
    assert isinstance(VOID, VoidType)
