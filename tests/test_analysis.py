"""Tests for CFG, dominators, natural loops and the call graph."""

import pytest

from repro.analysis import CFG, CallGraph, DominatorTree, LoopInfo
from repro.frontend import compile_c

NESTED_LOOPS = r"""
int work(int n) {
    int i, j, acc = 0;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            acc += i * j;
        }
    }
    while (acc > 100) acc /= 2;
    return acc;
}
int main() { printf("%d\n", work(10)); return 0; }
"""


@pytest.fixture()
def work_fn():
    return compile_c(NESTED_LOOPS, "m").function("work")


class TestCFG:
    def test_entry_and_reachability(self, work_fn):
        cfg = CFG(work_fn)
        reachable = cfg.reachable_blocks()
        assert reachable[0] is work_fn.entry
        assert len(reachable) == len(work_fn.blocks)

    def test_predecessors_inverse_of_successors(self, work_fn):
        cfg = CFG(work_fn)
        for block in work_fn.blocks:
            for succ in cfg.successors[block]:
                assert block in cfg.predecessors[succ]

    def test_remove_unreachable(self):
        module = compile_c(
            "int f(void) { return 1; int dead = 2; return dead; }"
            "int main() { return f(); }", "m")
        fn = module.function("f")
        removed = CFG(fn).remove_unreachable_blocks()
        assert removed >= 1
        assert all(b in CFG(fn).reachable_blocks() for b in fn.blocks)


class TestDominators:
    def test_entry_dominates_everything(self, work_fn):
        cfg = CFG(work_fn)
        dom = DominatorTree(cfg)
        for block in cfg.reachable_blocks():
            assert dom.dominates(work_fn.entry, block)

    def test_dominance_is_reflexive(self, work_fn):
        dom = DominatorTree(CFG(work_fn))
        for block in work_fn.blocks:
            assert dom.dominates(block, block)

    def test_loop_header_dominates_body(self, work_fn):
        info = LoopInfo(work_fn)
        dom = info.domtree
        for loop in info.loops:
            for block in loop.blocks:
                assert dom.dominates(loop.header, block)


class TestLoops:
    def test_finds_all_three_loops(self, work_fn):
        info = LoopInfo(work_fn)
        assert len(info.loops) == 3

    def test_nesting(self, work_fn):
        info = LoopInfo(work_fn)
        by_depth = sorted(info.loops, key=lambda lp: lp.depth)
        assert by_depth[0].depth == 0
        inner = [lp for lp in info.loops if lp.depth == 1]
        assert len(inner) == 1
        assert inner[0].parent in info.top_level_loops()

    def test_loop_names_use_paper_style(self, work_fn):
        info = LoopInfo(work_fn)
        names = {lp.name for lp in info.loops}
        assert any(name.startswith("work_for.cond") for name in names)
        assert any(name.startswith("work_while.cond") for name in names)

    def test_exit_blocks_outside_loop(self, work_fn):
        info = LoopInfo(work_fn)
        for loop in info.loops:
            for exit_block in loop.exit_blocks():
                assert exit_block not in loop.blocks

    def test_innermost_lookup(self, work_fn):
        info = LoopInfo(work_fn)
        inner = [lp for lp in info.loops if lp.depth == 1][0]
        assert info.innermost_loop_of(inner.header) is inner


class TestCallGraph:
    SRC = r"""
    typedef int (*FN)(int);
    int leaf(int x) { return x + 1; }
    int helper(int x) { return leaf(x) * 2; }
    FN indirect_target = leaf;
    int dispatch(int x) { return indirect_target(x); }
    int main() { return helper(1) + dispatch(2); }
    """

    def test_direct_edges(self):
        module = compile_c(self.SRC, "m")
        cg = CallGraph(module)
        assert "leaf" in cg.callees("helper")
        assert "helper" in cg.callers("leaf")

    def test_transitive(self):
        module = compile_c(self.SRC, "m")
        cg = CallGraph(module)
        assert "leaf" in cg.transitive_callees("main")

    def test_address_taken_via_global_initializer(self):
        module = compile_c(self.SRC, "m")
        cg = CallGraph(module)
        assert "leaf" in cg.address_taken

    def test_indirect_caller_links_to_address_taken(self):
        module = compile_c(self.SRC, "m")
        cg = CallGraph(module)
        assert "leaf" in cg.transitive_callees("dispatch")

    def test_reachable_from(self):
        module = compile_c(self.SRC, "m")
        cg = CallGraph(module)
        reach = cg.reachable_from(["helper"])
        assert reach == {"helper", "leaf"}
