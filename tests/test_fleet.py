"""Fleet-scale runtime tests: the ExecutionBackend seam, the server
pool, the lockstep scheduler, the estimator's contention term, and the
seed fan-out (docs/fleet.md)."""

from __future__ import annotations

import json

import pytest

from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.offload.partition import OffloadTarget
from repro.profiler import profile_module
from repro.profiler.profile_data import CandidateProfile, ProfileData
from repro.runtime import (Admission, DynamicPerformanceEstimator,
                           FAST_WIFI, FaultPlan, OffloadSession,
                           Rejection, SessionOptions, run_local)
from repro.runtime.backend import DirectDispatcher
from repro.fleet import (DeviceSpec, FleetScheduler, PoolOptions,
                         SeedFanout, ServerPool, arrival_offsets,
                         derive_seed)
from repro.trace import write_jsonl
from repro.trace.tracer import CATEGORIES, TraceEvent

# A hot kernel invoked several times, so the pool sees repeat traffic.
MULTI_SRC = r"""
int *data;
int n;

int crunch(void) {
    int i, r, acc = 0;
    for (r = 0; r < 40; r++) {
        for (i = 0; i < n; i++) {
            acc += (data[i] * 31 + r) ^ (acc >> 3);
        }
    }
    return acc;
}

int main() {
    int i, k;
    scanf("%d", &n);
    data = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    for (k = 0; k < 3; k++) printf("crunched %d\n", crunch());
    return 0;
}
"""
STDIN = b"600\n"


@pytest.fixture(scope="module")
def fleet_program():
    module = compile_c(MULTI_SRC, "fleet")
    profile = profile_module(module, stdin=STDIN)
    program = NativeOffloaderCompiler(
        CompilerOptions(forced_targets=["crunch"])).compile(
            module, profile)
    local = run_local(module, stdin=STDIN)
    return module, program, local


def _run_fleet(program, devices=1, offsets=None, pool_options=None,
               tracing=True, fault_plans=None):
    specs = []
    for i in range(devices):
        plan = fault_plans[i] if fault_plans else None
        specs.append(DeviceSpec(
            device_id=f"dev{i:02d}", program=program, network=FAST_WIFI,
            stdin=STDIN,
            start_offset_s=offsets[i] if offsets else 0.0,
            options=SessionOptions(enable_tracing=tracing,
                                   fault_plan=plan)))
    pool = ServerPool(pool_options or PoolOptions())
    return FleetScheduler(specs, pool).run()


class TestBackendSeamDifferential:
    """A 1-device/1-server fleet must be bit-identical to the plain
    single-session path (ISSUE 4 acceptance criterion)."""

    def test_fleet_of_one_is_bit_identical(self, fleet_program):
        _, program, local = fleet_program
        session = OffloadSession(program, FAST_WIFI,
                                 options=SessionOptions(
                                     enable_tracing=True),
                                 stdin=STDIN)
        solo = session.run()
        fleet = _run_fleet(program, devices=1)
        dev = fleet.devices[0].result

        assert dev.stdout == solo.stdout == local.stdout
        assert dev.exit_code == solo.exit_code
        assert dev.total_seconds == solo.total_seconds
        assert dev.energy_mj == solo.energy_mj
        assert dev.bytes_to_server == solo.bytes_to_server
        assert dev.bytes_to_mobile == solo.bytes_to_mobile
        assert dev.cod_faults == solo.cod_faults
        assert dev.offloaded_invocations == solo.offloaded_invocations
        assert dev.breakdown() == solo.breakdown()

    def test_trace_stream_identical_modulo_sid(self, fleet_program):
        _, program, _ = fleet_program
        session = OffloadSession(program, FAST_WIFI,
                                 options=SessionOptions(
                                     enable_tracing=True),
                                 stdin=STDIN)
        solo = session.run()
        fleet = _run_fleet(program, devices=1)
        solo_events = solo.trace.events()
        fleet_events = fleet.devices[0].result.trace.events()
        assert len(solo_events) == len(fleet_events)
        for a, b in zip(solo_events, fleet_events):
            assert (a.t, a.seq, a.category, a.name, a.dur, a.payload) == \
                   (b.t, b.seq, b.category, b.name, b.dur, b.payload)
        assert all(e.sid is None for e in solo_events)
        assert all(e.sid == "dev00" for e in fleet_events)

    def test_direct_dispatcher_is_also_identical(self, fleet_program):
        """The explicit dedicated-server dispatcher adds no arithmetic
        either — admission with zero wait changes nothing."""
        _, program, _ = fleet_program
        plain = OffloadSession(program, FAST_WIFI, stdin=STDIN).run()
        direct = OffloadSession(
            program, FAST_WIFI,
            options=SessionOptions(dispatcher=DirectDispatcher()),
            stdin=STDIN).run()
        assert direct.stdout == plain.stdout
        assert direct.total_seconds == plain.total_seconds
        assert direct.energy_mj == plain.energy_mj
        assert direct.breakdown() == plain.breakdown()


class TestServerPool:
    def test_idle_pool_admits_immediately(self):
        pool = ServerPool(PoolOptions(servers=2, capacity=1))
        adm = pool.admit("t", 0.0)
        assert isinstance(adm, Admission)
        assert adm.queue_seconds == 0.0
        assert adm.server_id == 0

    def test_queueing_wait_reflects_actual_release(self):
        pool = ServerPool(PoolOptions(servers=1, capacity=1))
        first = pool.admit("t", 0.0)
        pool.release(first, 10.0)
        second = pool.admit("t", 2.0)
        assert second.queue_seconds == pytest.approx(8.0)
        assert second.start_s == pytest.approx(10.0)
        pool.release(second, 15.0)
        assert pool.stats[0].busy_seconds == pytest.approx(15.0)
        assert pool.total_queue_delay_s == pytest.approx(8.0)

    def test_least_loaded_server_wins(self):
        pool = ServerPool(PoolOptions(servers=2, capacity=1))
        a = pool.admit("t", 0.0)
        pool.release(a, 10.0)
        b = pool.admit("t", 1.0)   # server 0 busy until 10 -> server 1
        assert b.server_id == 1
        assert b.queue_seconds == 0.0
        pool.release(b, 5.0)

    def test_bounded_queue_rejects(self):
        pool = ServerPool(PoolOptions(servers=1, capacity=1,
                                      queue_limit=1))
        a = pool.admit("t", 0.0)
        pool.release(a, 100.0)
        b = pool.admit("t", 1.0)   # waits, queue depth 1 (the limit)
        pool.release(b, 110.0)
        c = pool.admit("t", 2.0)   # b still waiting at t=2 -> refused
        assert isinstance(c, Rejection)
        assert c.estimated_wait_s == pytest.approx(108.0)
        assert pool.total_rejected == 1
        assert pool.stats[0].rejected == 1

    def test_priority_reserve_admits_priority_only(self):
        pool = ServerPool(PoolOptions(servers=1, capacity=1,
                                      queue_limit=2,
                                      priority_reserve=1))
        a = pool.admit("t", 0.0)
        pool.release(a, 100.0)
        b = pool.admit("t", 1.0)          # ordinary: uses the 1 free slot
        pool.release(b, 110.0)
        c = pool.admit("t", 2.0)          # ordinary: only reserve left
        assert isinstance(c, Rejection)
        d = pool.admit("t", 3.0, priority=True)   # reserve admits it
        assert isinstance(d, Admission)
        pool.release(d, 120.0)

    def test_capacity_slots_run_concurrently(self):
        pool = ServerPool(PoolOptions(servers=1, capacity=2))
        a = pool.admit("t", 0.0)
        pool.release(a, 50.0)
        b = pool.admit("t", 1.0)   # second slot is free
        assert b.queue_seconds == 0.0
        pool.release(b, 60.0)
        assert pool.utilization(100.0)[0] == pytest.approx(
            (50.0 + 59.0) / 200.0)

    def test_admit_requires_released_history(self):
        pool = ServerPool(PoolOptions())
        pool.admit("t", 0.0)
        with pytest.raises(RuntimeError):
            pool.admit("t", 1.0)   # previous admission never released

    def test_options_validation(self):
        with pytest.raises(ValueError):
            PoolOptions(servers=0)
        with pytest.raises(ValueError):
            PoolOptions(capacity=0)
        with pytest.raises(ValueError):
            PoolOptions(queue_limit=-1)
        with pytest.raises(ValueError):
            PoolOptions(queue_limit=1, priority_reserve=2)


class TestContention:
    def test_burst_fleet_queues_and_degrades(self, fleet_program):
        _, program, local = fleet_program
        result = _run_fleet(
            program, devices=6,
            pool_options=PoolOptions(servers=1, capacity=1,
                                     queue_limit=2))
        summary = result.summary()
        # Everyone still computes the right answer...
        assert all(d.result.stdout == local.stdout
                   for d in result.devices)
        # ...but the pool visibly pushed back.
        assert summary["queue"]["total_delay_s"] > 0.0
        assert summary["invocations"]["rejected"] > 0
        assert summary["invocations"]["local_fallbacks"] > 0
        assert 0.0 < summary["servers_detail"][0]["utilization"] <= 1.0

    def test_decline_rate_rises_with_fleet_size(self, fleet_program):
        _, program, _ = fleet_program
        small = _run_fleet(program, devices=2,
                           pool_options=PoolOptions(servers=1,
                                                    capacity=1,
                                                    queue_limit=2),
                           tracing=False)
        big = _run_fleet(program, devices=8,
                         pool_options=PoolOptions(servers=1, capacity=1,
                                                  queue_limit=2),
                         tracing=False)
        assert (big.summary()["decline_rate"]
                > small.summary()["decline_rate"])

    def test_queue_seconds_charged_to_device_timeline(self, fleet_program):
        """Queueing delay lands on the device clock and battery exactly
        like link time: a queued device finishes later and spends more
        energy than the same device alone."""
        _, program, _ = fleet_program
        alone = _run_fleet(program, devices=1, tracing=False)
        contended = _run_fleet(
            program, devices=4,
            pool_options=PoolOptions(servers=1, capacity=1),
            tracing=False)
        queued = [d for d in contended.devices
                  if d.result.queue_seconds > 0.0]
        assert queued, "burst arrivals must queue somewhere"
        baseline = alone.devices[0].result
        for device in queued:
            r = device.result
            assert r.total_seconds > baseline.total_seconds
            assert r.energy_mj > baseline.energy_mj
            # and the gap is at least the queueing delay itself
            assert (r.total_seconds - baseline.total_seconds
                    >= r.queue_seconds * 0.99)


class TestDeterminism:
    def _summary_and_trace(self, program, tmp_path, tag):
        fan = SeedFanout(7)
        offsets = arrival_offsets("poisson", 4, 0.001,
                                  fan.rng("arrivals"))
        plans = [FaultPlan(seed=fan.seed("fault", i), drop_rate=0.05)
                 for i in range(4)]
        result = _run_fleet(
            program, devices=4, offsets=offsets,
            pool_options=PoolOptions(servers=2, capacity=1,
                                     queue_limit=2),
            fault_plans=plans)
        payload = json.dumps(result.summary(), sort_keys=False)
        trace_path = tmp_path / f"fleet-{tag}.jsonl"
        write_jsonl(result.merged_events(), trace_path)
        return payload, trace_path.read_bytes()

    def test_same_seed_runs_are_byte_identical(self, fleet_program,
                                               tmp_path):
        _, program, _ = fleet_program
        payload1, trace1 = self._summary_and_trace(program, tmp_path, "a")
        payload2, trace2 = self._summary_and_trace(program, tmp_path, "b")
        assert payload1 == payload2
        assert trace1 == trace2


class TestMergedTrace:
    def test_merged_events_are_globally_ordered_and_tagged(
            self, fleet_program):
        _, program, _ = fleet_program
        result = _run_fleet(
            program, devices=3, offsets=[0.0, 0.005, 0.010],
            pool_options=PoolOptions(servers=1, capacity=1))
        events = result.merged_events()
        assert events
        assert {e.sid for e in events} == {"dev00", "dev01", "dev02"}
        times = [e.t for e in events]
        assert times == sorted(times)
        # offset shift: a later device's session.start lands later
        starts = {e.sid: e.t for e in events
                  if e.category == "session.start"}
        assert starts["dev00"] < starts["dev01"] < starts["dev02"]
        assert all(e.category in CATEGORIES for e in events)

    def test_queue_and_reject_events_emitted(self, fleet_program):
        _, program, _ = fleet_program
        result = _run_fleet(
            program, devices=6,
            pool_options=PoolOptions(servers=1, capacity=1,
                                     queue_limit=1))
        cats = {e.category for e in result.merged_events()}
        assert "offload.queue" in cats
        assert "offload.reject" in cats

    def test_sid_serialization_round_trip(self):
        tagged = TraceEvent(t=1.0, seq=0, category="decision", name="t",
                            sid="dev03")
        data = tagged.to_dict()
        assert data["sid"] == "dev03"
        assert TraceEvent.from_dict(data).sid == "dev03"
        plain = TraceEvent(t=1.0, seq=0, category="decision", name="t")
        data = plain.to_dict()
        assert "sid" not in data   # single-session wire format unchanged
        assert TraceEvent.from_dict(data).sid is None


def _profile_with(name, seconds, invocations, mem_bytes):
    prof = CandidateProfile(name, "function", name)
    prof.total_seconds = seconds
    prof.invocations = invocations
    prof.pages_touched = set(range(max(1, mem_bytes // 4096)))
    return ProfileData(module_name="m", arch_name="arm32",
                       program_seconds=seconds,
                       candidates={name: prof})


class TestQueueingAwareEstimator:
    def _estimator(self):
        data = _profile_with("t", 1.0, 1, 64 * 1024)
        return DynamicPerformanceEstimator(data, 4.0, FAST_WIFI)

    def test_no_observations_means_zero_queue_term(self):
        est = self._estimator()
        result = est.estimate(OffloadTarget(1, "t", "function"))
        assert result.t_queue == 0.0
        assert result.gain == pytest.approx(result.t_ideal
                                            - result.t_comm)

    def test_queue_delay_ewma_feeds_gain(self):
        est = self._estimator()
        target = OffloadTarget(1, "t", "function")
        base = est.estimate(target)
        est.record_queue_delay(0, 2.0)
        contended = est.estimate(target)
        assert contended.t_queue == pytest.approx(2.0)
        assert contended.gain == pytest.approx(base.gain - 2.0)
        est.record_queue_delay(0, 0.0)   # pool drained
        assert est.expected_queue_seconds() == pytest.approx(1.0)

    def test_best_server_sets_the_expectation(self):
        est = self._estimator()
        est.record_queue_delay(0, 5.0)
        est.record_queue_delay(1, 0.5)
        # the dispatcher would route to server 1
        assert est.expected_queue_seconds() == pytest.approx(0.5)

    def test_rejections_floor_the_expectation(self):
        est = self._estimator()
        est.record_queue_delay(0, 0.0)       # completed admissions fine
        est.record_pool_rejection(4.0)       # but the pool says no
        assert est.pool_rejections == 1
        assert est.expected_queue_seconds() == pytest.approx(4.0)

    def test_queue_pressure_reason(self):
        est = self._estimator()
        target = OffloadTarget(1, "t", "function")
        assert est.should_offload(target)
        assert est.last_reason == "positive_gain"
        est.record_queue_delay(0, 100.0)     # saturate the pool
        assert not est.should_offload(target)
        assert est.last_reason == "queue_pressure"
        assert est.last_estimate.t_queue == pytest.approx(100.0)

    def test_saturated_fleet_declines_offload(self, fleet_program):
        """End to end: devices arriving into a saturated pool start
        declining (the generalized Equation 1 at work)."""
        _, program, _ = fleet_program
        result = _run_fleet(
            program, devices=8,
            pool_options=PoolOptions(servers=1, capacity=1),
            tracing=False)
        declined = sum(d.result.declined_invocations
                       for d in result.devices)
        assert declined > 0


class TestSeedFanout:
    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(0, "fault", 1) == derive_seed(0, "fault", 1)
        assert derive_seed(0, "fault", 1) != derive_seed(0, "fault", 2)
        assert derive_seed(0, "fault", 1) != derive_seed(1, "fault", 1)
        assert derive_seed(0, "a", "bc") != derive_seed(0, "ab", "c")

    def test_rng_streams_are_independent(self):
        fan = SeedFanout(3)
        a = [fan.rng("x").random() for _ in range(3)]
        b = [fan.rng("x").random() for _ in range(3)]
        assert a == b                      # same label -> same stream
        assert fan.rng("y").random() != a[0]

    def test_arrival_patterns(self):
        fan = SeedFanout(0)
        assert arrival_offsets("uniform", 3, 0.5, fan.rng("a")) == \
            [0.0, 0.5, 1.0]
        assert arrival_offsets("burst", 3, 0.5, fan.rng("a")) == \
            [0.0, 0.0, 0.0]
        poisson = arrival_offsets("poisson", 4, 0.5, fan.rng("a"))
        assert poisson[0] == 0.0
        assert poisson == sorted(poisson)
        assert poisson == arrival_offsets("poisson", 4, 0.5,
                                          fan.rng("a"))
        with pytest.raises(ValueError):
            arrival_offsets("weird", 1, 0.5, fan.rng("a"))
