"""The placement layer of ISSUE 7: ServerSpec/PoolOptions validation,
the four decision engines, heterogeneous speed + tier network
overrides, the speed-aware estimator, and the SLO-driven autoscaler
(docs/placement.md)."""

from __future__ import annotations

import pytest

from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import CLOUD_WAN, FAST_WIFI, SessionOptions, run_local
from repro.runtime.backend import Admission, Rejection
from repro.runtime.dynamic_estimator import DynamicPerformanceEstimator
from repro.fleet import (Autoscaler, AutoscalerOptions, Candidate,
                         DeviceSpec, FleetScheduler, PoolOptions,
                         ServerPool, ServerSpec, ServerStats,
                         behavior_key, make_engine, make_scheduler)
from repro.fleet.engines import (BestFitEngine, DeadlineAwareEngine,
                                 DecisionEngine, FifoEngine,
                                 WorstFitEngine)

SRC = r"""
int *data;
int n;

int crunch(void) {
    int i, r, acc = 0;
    for (r = 0; r < 40; r++) {
        for (i = 0; i < n; i++) {
            acc += (data[i] * 31 + r) ^ (acc >> 3);
        }
    }
    return acc;
}

int main() {
    int i, k;
    scanf("%d", &n);
    data = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    for (k = 0; k < 3; k++) printf("crunched %d\n", crunch());
    return 0;
}
"""
STDIN = b"150\n"


@pytest.fixture(scope="module")
def program():
    module = compile_c(SRC, "placement")
    profile = profile_module(module, stdin=STDIN)
    return NativeOffloaderCompiler(
        CompilerOptions(forced_targets=["crunch"])).compile(
            module, profile)


@pytest.fixture(scope="module")
def module():
    return compile_c(SRC, "placement-local")


def _spec(program, device_id="dev00", offset=0.0, **kw):
    return DeviceSpec(device_id=device_id, program=program,
                      network=FAST_WIFI, stdin=STDIN,
                      start_offset_s=offset,
                      options=SessionOptions(enable_tracing=True), **kw)


class TestValidation:
    """Zero/negative capacity, queue depth 0 and unknown tiers are
    construction-time errors (ISSUE 7 satellite)."""

    @pytest.mark.parametrize("kw", [
        {"speed": 0.0}, {"speed": -1.0},
        {"capacity": 0}, {"capacity": -2},
        {"queue_limit": 0}, {"queue_limit": -1},
        {"tier": "fog"}, {"tier": ""},
    ])
    def test_server_spec_rejects(self, kw):
        with pytest.raises(ValueError):
            ServerSpec(**kw)

    @pytest.mark.parametrize("kw", [
        {"servers": 0}, {"servers": -1},
        {"capacity": 0}, {"capacity": -3},
        {"queue_limit": 0}, {"queue_limit": -4},
        {"priority_reserve": -1},
        {"specs": ()},
    ])
    def test_pool_options_rejects(self, kw):
        with pytest.raises(ValueError):
            PoolOptions(**kw)

    def test_priority_reserve_checked_against_every_spec(self):
        with pytest.raises(ValueError, match="priority_reserve"):
            PoolOptions(priority_reserve=3,
                        specs=(ServerSpec(queue_limit=8),
                               ServerSpec(queue_limit=2)))

    def test_defaults_are_valid(self):
        assert ServerSpec().tier == "edge"
        assert PoolOptions().server_specs() == (ServerSpec(),)

    def test_specs_win_over_homogeneous_knobs(self):
        opts = PoolOptions(servers=5, capacity=9,
                           specs=(ServerSpec(capacity=2),))
        assert opts.server_specs() == (ServerSpec(capacity=2),)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown decision engine"):
            make_engine("random")
        with pytest.raises(ValueError, match="unknown decision engine"):
            ServerPool(PoolOptions(), engine="lifo")

    def test_engine_instances_pass_through(self):
        engine = WorstFitEngine()
        assert make_engine(engine) is engine
        assert ServerPool(PoolOptions(), engine=engine).engine is engine

    @pytest.mark.parametrize("kw", [
        {"interval_s": 0.0}, {"interval_s": -1.0},
        {"max_servers": 0}, {"scale_down_after": 0},
    ])
    def test_autoscaler_options_reject(self, kw):
        with pytest.raises(ValueError):
            AutoscalerOptions(**kw)


def _cand(server_id, wait=0.0, free=1, spec=None, stats=None):
    return Candidate(server_id=server_id, wait=wait, free_slots=free,
                     queue_len=0, spec=spec or ServerSpec(),
                     stats=stats or ServerStats(server_id=server_id),
                     slot_idx=0, server=None)


def _req(arrival_t=0.0, deadline_t=None):
    from repro.fleet import PlacementRequest
    return PlacementRequest(target="crunch", arrival_t=arrival_t,
                            deadline_t=deadline_t)


class TestEngines:
    """Selection is a pure function of the candidates — exercised
    directly, one policy at a time."""

    def test_fifo_least_wait_then_lowest_id(self):
        picked = FifoEngine().select(
            [_cand(0, wait=0.5), _cand(1, wait=0.0), _cand(2, wait=0.0)],
            _req())
        assert picked.server_id == 1

    def test_worst_fit_prefers_most_free_slots(self):
        picked = WorstFitEngine().select(
            [_cand(0, free=1), _cand(1, free=3), _cand(2, free=3)],
            _req())
        assert picked.server_id == 1   # id breaks the free-slot tie

    def test_worst_fit_degrades_to_wait_when_saturated(self):
        picked = WorstFitEngine().select(
            [_cand(0, wait=0.4, free=0), _cand(1, wait=0.1, free=0)],
            _req())
        assert picked.server_id == 1

    def test_best_fit_picks_tightest_idle_server(self):
        picked = BestFitEngine().select(
            [_cand(0, free=3), _cand(1, free=1), _cand(2, free=2)],
            _req())
        assert picked.server_id == 1   # fifo would have picked 0

    def test_deadline_aware_uses_observed_service_history(self):
        slow = ServerStats(server_id=0, admitted=2, busy_seconds=2.0)
        fast = ServerStats(server_id=1, admitted=2, busy_seconds=0.5)
        picked = DeadlineAwareEngine().select(
            [_cand(0, stats=slow), _cand(1, stats=fast)], _req())
        assert picked.server_id == 1   # fifo would have picked 0

    def test_deadline_aware_scales_pool_mean_by_speed(self):
        # Server 1 has no history of its own; the pool mean (1.0 s at
        # speed 1) scaled by its 4x speed predicts a 0.25 s service.
        seen = ServerStats(server_id=0, admitted=4, busy_seconds=4.0)
        fresh = ServerStats(server_id=1)
        picked = DeadlineAwareEngine().select(
            [_cand(0, stats=seen),
             _cand(1, stats=fresh, spec=ServerSpec(speed=4.0))],
            _req())
        assert picked.server_id == 1

    def test_deadline_aware_meeting_beats_missing(self):
        # Server 1 queues the request but still meets the deadline;
        # server 0 starts now and misses it.
        slow = ServerStats(server_id=0, admitted=1, busy_seconds=1.0)
        quick = ServerStats(server_id=1, admitted=1, busy_seconds=0.05)
        picked = DeadlineAwareEngine().select(
            [_cand(0, wait=0.0, stats=slow),
             _cand(1, wait=0.4, free=0, stats=quick)],
            _req(deadline_t=0.5))
        assert picked.server_id == 1

    def test_deadline_aware_refuses_when_every_candidate_misses(self):
        # Admission control: both servers would finish past the
        # deadline, so the engine declines to place at all and the pool
        # turns that into a Rejection (local fallback beats queueing
        # past the deadline).
        slow = ServerStats(server_id=0, admitted=1, busy_seconds=1.0)
        slower = ServerStats(server_id=1, admitted=1, busy_seconds=2.0)
        picked = DeadlineAwareEngine().select(
            [_cand(0, stats=slow), _cand(1, stats=slower)],
            _req(deadline_t=0.5))
        assert picked is None

    def test_deadline_aware_without_history_degrades_to_fifo(self):
        picked = DeadlineAwareEngine().select(
            [_cand(0, wait=0.2), _cand(1, wait=0.1)], _req())
        assert picked.server_id == 1

    def test_base_engine_is_abstract(self):
        with pytest.raises(NotImplementedError):
            DecisionEngine().select([_cand(0)], _req())


class TestPoolPlacement:
    """The pool's admit/release bookkeeping under non-fifo engines."""

    def test_worst_fit_spreads_across_servers(self):
        pool = ServerPool(PoolOptions(servers=2, capacity=2),
                          engine="worst-fit")
        first = pool.admit("crunch", 0.0)
        pool.release(first, 10.0)       # busy until t=10
        second = pool.admit("crunch", 1.0)
        pool.release(second, 10.0)
        assert first.server_id == 0
        assert second.server_id == 1    # fifo would pack server 0

    def test_admission_carries_the_spec(self):
        pool = ServerPool(PoolOptions(specs=(
            ServerSpec(speed=3.0, tier="cloud", network=CLOUD_WAN),)))
        outcome = pool.admit("crunch", 0.0, priority=True,
                             deadline_s=0.25)
        assert isinstance(outcome, Admission)
        assert outcome.speed == 3.0
        assert outcome.tier == "cloud"
        assert outcome.network is CLOUD_WAN
        assert outcome.deadline_s == 0.25
        assert outcome.priority is True
        pool.release(outcome, 0.5)

    def test_rejection_quotes_minimum_wait_across_tiers(self):
        pool = ServerPool(PoolOptions(specs=(
            ServerSpec(queue_limit=1), ServerSpec(queue_limit=1))))
        waits = []
        for t, end in ((0.0, 4.0), (0.0, 5.0), (0.1, 4.5), (0.2, 5.5)):
            outcome = pool.admit("crunch", t)
            waits.append(outcome)
            pool.release(outcome, end)
        refused = pool.admit("crunch", 0.3)
        assert isinstance(refused, Rejection)
        # The closest slot frees at t=4.5 (server 0's queued third
        # admission runs until then) -> quote 4.2 from t=0.3.
        assert refused.estimated_wait_s == pytest.approx(4.2)

    def test_deadline_admission_control_rejects_at_the_pool(self):
        # Same admission sequence, two engines: fifo queues the tight-
        # deadline request; deadline-aware refuses it (the server's
        # observed 1.0 s service cannot meet a 0.5 s deadline), so the
        # pool rejects and the device would fall back to local.
        outcomes = {}
        for engine in ("fifo", "deadline-aware"):
            pool = ServerPool(PoolOptions(servers=1), engine=engine)
            first = pool.admit("crunch", 0.0)
            pool.release(first, 1.0)    # service history: 1.0 s
            second = pool.admit("crunch", 0.2)
            pool.release(second, 2.0)
            outcomes[engine] = pool.admit("crunch", 0.4,
                                          deadline_s=0.5)
            if isinstance(outcomes[engine], Admission):
                pool.release(outcomes[engine], 3.0)
        assert isinstance(outcomes["fifo"], Admission)
        assert isinstance(outcomes["deadline-aware"], Rejection)
        # The refusal is charged and quoted like a full-pool rejection.
        assert outcomes["deadline-aware"].estimated_wait_s == \
            pytest.approx(1.6)

    def test_elasticity_add_remove(self):
        pool = ServerPool(PoolOptions(servers=1))
        adm = pool.admit("crunch", 0.0)
        pool.release(adm, 2.0)
        new_id = pool.add_server(ServerSpec(tier="cloud"))
        assert new_id == 1
        assert pool.active_servers == 2
        assert pool.remove_server(new_id, 3.0) is True   # idle clone
        assert pool.active_servers == 1
        # Ids are never reused, even across scale-down cycles.
        assert pool.add_server(ServerSpec()) == 2

    def test_remove_server_refusals(self):
        pool = ServerPool(PoolOptions(servers=1))
        # The last active server can never be retired.
        assert pool.remove_server(0, 100.0) is False
        sid = pool.add_server(ServerSpec())
        adm = pool.admit("crunch", 0.0)
        pool.release(adm, 5.0)          # server 0 busy until t=5
        assert pool.remove_server(0, 1.0) is False   # still serving
        assert pool.remove_server(sid, 1.0) is True  # idle clone goes
        assert pool.remove_server(sid, 2.0) is False  # already retired
        assert pool.active_servers == 1

    def test_servers_detail_rows(self):
        pool = ServerPool(PoolOptions(specs=(
            ServerSpec(), ServerSpec(speed=2.0, tier="cloud"))))
        adm = pool.admit("crunch", 0.0)
        pool.release(adm, 1.0)
        rows = pool.servers_detail(horizon_s=2.0)
        assert [r["id"] for r in rows] == [0, 1]
        assert rows[1]["tier"] == "cloud"
        assert rows[1]["speed"] == 2.0
        assert rows[0]["admitted"] == 1
        assert rows[0]["utilization"] == pytest.approx(0.5)
        assert all(r["active"] for r in rows)
        assert {"busy_seconds", "queue_delay_s", "queued_admissions",
                "max_queue_depth", "rejected"} <= set(rows[0])


class TestEstimatorSpeedAwareness:
    """Equation 1's ratio follows the server the device lands on."""

    def _estimator(self):
        from repro.profiler.profile_data import ProfileData
        return DynamicPerformanceEstimator(
            ProfileData(module_name="placement", arch_name="x86"),
            performance_ratio=8.0, network=FAST_WIFI)

    def test_expected_speed_tracks_best_queue_server(self):
        est = self._estimator()
        assert est.expected_server_speed() == 1.0
        est.record_queue_delay(0, 0.010, speed=1.0)
        est.record_queue_delay(1, 0.001, speed=4.0)
        # Server 1 has the best EWMA, so its speed is the expectation.
        assert est.expected_server_speed() == 4.0
        est.record_queue_delay(1, 0.100, speed=4.0)
        assert est.expected_server_speed() == 1.0

    def test_speed_one_is_bit_identical(self):
        est = self._estimator()
        est.record_queue_delay(0, 0.0)      # default speed 1.0
        assert est.performance_ratio * est.expected_server_speed() \
            == est.performance_ratio


class TestHeterogeneousFleet:
    """End-to-end: speed multipliers and tier network overrides are
    visible in device results, and the deadline/tier/priority fields
    thread through to InvocationRecord."""

    def _run(self, program, pool, **spec_kw):
        return FleetScheduler(
            [_spec(program, **spec_kw)], pool).run()

    def test_faster_server_shortens_the_run(self, program, module):
        slow = self._run(program, ServerPool(PoolOptions()))
        fast = self._run(program, ServerPool(PoolOptions(
            specs=(ServerSpec(speed=4.0),))))
        local = run_local(module, stdin=STDIN)
        assert fast.devices[0].result.stdout == local.stdout
        assert slow.devices[0].result.stdout == local.stdout
        assert (fast.devices[0].result.total_seconds
                < slow.devices[0].result.total_seconds)

    def test_cloud_tier_swaps_the_network(self, program):
        edge = self._run(program, ServerPool(PoolOptions()))
        cloud = self._run(program, ServerPool(PoolOptions(specs=(
            ServerSpec(tier="cloud", network=CLOUD_WAN),))))
        rec = cloud.devices[0].result.invocations[0]
        assert rec.tier == "cloud"
        assert edge.devices[0].result.invocations[0].tier == "edge"
        # cloud-wan's 25 ms RTTs dominate 802.11ac's 1 ms: same
        # program, strictly more link time.
        assert (cloud.devices[0].result.total_seconds
                > edge.devices[0].result.total_seconds)
        # The device's own network is restored after each invocation.
        assert cloud.devices[0].result.stdout \
            == edge.devices[0].result.stdout

    def test_deadline_and_priority_recorded(self, program):
        result = FleetScheduler(
            [_spec(program, deadline_s=0.5, priority=True)],
            ServerPool(PoolOptions())).run()
        recs = [r for r in result.devices[0].result.invocations
                if r.offloaded]
        assert recs
        assert all(r.deadline_s == 0.5 for r in recs)
        assert all(r.priority for r in recs)
        assert all(r.tier == "edge" for r in recs)

    def test_behavior_key_separates_engines_and_deadlines(self, program):
        spec = _spec(program)
        assert behavior_key(spec, "fifo") != behavior_key(spec,
                                                          "worst-fit")
        assert behavior_key(spec) != behavior_key(
            _spec(program, deadline_s=0.1))


class TestAutoscaler:
    """The SLO feedback loop, unit-level and end-to-end."""

    def _admission(self, wait):
        return Admission(server_id=0, queue_seconds=wait, start_s=0.0,
                         token=(0, 0, 0.0))

    def test_scale_up_on_queue_pressure(self):
        pool = ServerPool(PoolOptions(servers=1))
        scaler = Autoscaler(AutoscalerOptions(max_servers=3))
        for i in range(4):
            scaler.observe(0.01 * i, self._admission(wait=0.02))
        scaler.evaluate(0.04, pool)
        assert pool.active_servers == 2
        assert scaler.actions[0]["action"] == "scale_up"
        assert scaler.actions[0]["rule"] == "queue_pressure"
        assert scaler.findings and \
            scaler.findings[0].rule == "queue_pressure"

    def test_scale_up_capped_at_max_servers(self):
        pool = ServerPool(PoolOptions(servers=1))
        scaler = Autoscaler(AutoscalerOptions(max_servers=2))
        for tick in range(1, 4):
            t = tick * 0.05
            for i in range(6):
                scaler.observe(t - 0.001 * i,
                               self._admission(wait=0.02))
            scaler.evaluate(t, pool)
        assert pool.active_servers == 2          # capped
        assert len(scaler.findings) == 3         # still reported
        assert scaler.summary()["scale_ups"] == 1

    def test_scale_down_after_healthy_stretch(self):
        pool = ServerPool(PoolOptions(servers=1))
        scaler = Autoscaler(AutoscalerOptions(max_servers=3,
                                              scale_down_after=2))
        for i in range(4):
            scaler.observe(0.01 * i, self._admission(wait=0.02))
        scaler.evaluate(0.04, pool)
        assert pool.active_servers == 2
        # Quiet windows (no samples) count as healthy ticks; after two
        # the idle clone is retired.
        scaler.evaluate(1.0, pool)
        scaler.evaluate(2.0, pool)
        assert pool.active_servers == 1
        summary = scaler.summary()
        assert summary["scale_ups"] == 1
        assert summary["scale_downs"] == 1

    def test_lockstep_refuses_an_autoscaler(self, program):
        with pytest.raises(ValueError, match="lockstep"):
            make_scheduler([_spec(program)], ServerPool(PoolOptions()),
                           engine="lockstep", autoscaler=Autoscaler())

    def test_autoscaled_burst_fleet_grows_the_pool(self, program):
        # Six devices arriving at once against one single-slot server:
        # queue pressure is immediate and sustained.
        specs = [_spec(program, device_id=f"dev{i:02d}", offset=0.0)
                 for i in range(6)]
        pool = ServerPool(PoolOptions(servers=1, capacity=1,
                                      queue_limit=2))
        scaler = Autoscaler(AutoscalerOptions(interval_s=0.002,
                                              max_servers=4))
        result = FleetScheduler(specs, pool, autoscaler=scaler).run()
        summary = result.summary()
        assert summary["autoscale"]["scale_ups"] >= 1
        assert summary["servers"] > 1
        assert summary["engine"] == "fifo"
        # Retired servers (if any) stay in the detail rows.
        assert len(summary["servers_detail"]) == summary["servers"]

    def test_no_autoscaler_reports_empty_block(self, program):
        result = FleetScheduler([_spec(program)],
                                ServerPool(PoolOptions())).run()
        assert result.summary()["autoscale"] == {}
