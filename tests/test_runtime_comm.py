"""Tests for networks, the communication manager (batching, compression)
and the function address table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_c
from repro.machine import Machine, install_libc
from repro.runtime import (CommunicationManager, FAST_WIFI,
                           FunctionAddressTable, IDEAL_NETWORK,
                           MESSAGE_HEADER_BYTES, NetworkModel,
                           SLOW_WIFI, UnmappableFunctionPointer)
from repro.runtime.comm import PER_ITEM_HEADER_BYTES


class TestNetworkModel:
    def test_one_way_time(self):
        net = NetworkModel("t", bandwidth_bps=8e6, latency_s=0.001)
        # 1 MB/s effective: 1000 bytes + 64-byte message header
        # -> 1.064 ms serialize + 1 ms latency
        assert net.one_way_time(1000) == pytest.approx(0.002064)

    def test_round_trip(self):
        net = NetworkModel("t", bandwidth_bps=8e6, latency_s=0.001)
        assert net.round_trip_time(0, 0) == pytest.approx(0.002128)

    def test_zero_byte_message_pays_header(self):
        """Regression: a zero-byte payload is not free — it pays the
        link latency plus serialization of the per-message header, and
        round_trip_time agrees with one_way_time in both directions."""
        net = NetworkModel("t", bandwidth_bps=8e6, latency_s=0.001)
        header_s = MESSAGE_HEADER_BYTES / net.bandwidth_bytes_per_s
        assert net.one_way_time(0) == pytest.approx(
            net.latency_s + header_s)
        assert net.one_way_time(0) > net.latency_s
        assert net.round_trip_time(123, 456) == pytest.approx(
            net.one_way_time(123) + net.one_way_time(456))

    def test_presets_ordering(self):
        assert SLOW_WIFI.bandwidth_bps < FAST_WIFI.bandwidth_bps
        assert SLOW_WIFI.slow and not FAST_WIFI.slow
        assert IDEAL_NETWORK.one_way_time(10**9) < 1e-6


class TestBatching:
    def test_batching_amortizes_latency(self):
        payloads = [b"x" * 100 for _ in range(50)]
        batched = CommunicationManager(SLOW_WIFI, enable_batching=True)
        unbatched = CommunicationManager(SLOW_WIFI, enable_batching=False)
        t_batched = batched.send_to_server(list(payloads)).seconds
        t_unbatched = unbatched.send_to_server(list(payloads)).seconds
        assert t_batched < t_unbatched / 5

    def test_batch_window_flushes_once(self):
        comm = CommunicationManager(FAST_WIFI)
        comm.begin_batch(to_server=True)
        r1 = comm.send_to_server([b"a" * 100])
        r2 = comm.send_to_server([b"b" * 100])
        assert r1.seconds == 0 and r2.seconds == 0
        flush = comm.flush_batch()
        assert flush.seconds > 0
        assert comm.stats.bytes_to_server == 200
        assert comm.stats.messages == 1

    def test_batch_window_direction_isolated(self):
        comm = CommunicationManager(FAST_WIFI)
        comm.begin_batch(to_server=True)
        reverse = comm.send_to_mobile([b"y" * 2000])
        assert reverse.seconds > 0  # opposite direction not captured
        comm.flush_batch()

    def test_empty_flush(self):
        comm = CommunicationManager(FAST_WIFI)
        comm.begin_batch(to_server=False)
        assert comm.flush_batch().seconds == 0

    def test_empty_flush_sends_nothing(self):
        """An empty batching window costs nothing and moves nothing —
        no message, no wire bytes, no simulated time."""
        comm = CommunicationManager(FAST_WIFI)
        comm.begin_batch(to_server=True)
        result = comm.flush_batch()
        assert result.seconds == 0 and result.wire_bytes == 0
        assert comm.stats.messages == 0
        assert comm.stats.comm_seconds == 0.0
        assert comm.stats.wire_bytes_to_server == 0
        # flushing again with no open window is also a no-op
        assert comm.flush_batch().seconds == 0

    def test_single_item_batch_framing(self):
        """A batch of one item pays exactly one per-item header plus one
        per-message header over the payload."""
        comm = CommunicationManager(FAST_WIFI, enable_compression=False)
        comm.begin_batch(to_server=True)
        payload = b"z" * 1000
        comm.send_to_server([payload])
        result = comm.flush_batch()
        assert result.wire_bytes == (len(payload) + PER_ITEM_HEADER_BYTES
                                     + MESSAGE_HEADER_BYTES)
        assert result.seconds == pytest.approx(
            FAST_WIFI.one_way_time(len(payload) + PER_ITEM_HEADER_BYTES))

    def test_discard_batch_transmits_nothing(self):
        """The abort path: a discarded batching window never reaches the
        wire."""
        comm = CommunicationManager(FAST_WIFI)
        comm.begin_batch(to_server=True)
        comm.send_to_server([b"q" * 4096])
        comm.discard_batch()
        assert comm.flush_batch().seconds == 0
        assert comm.stats.messages == 0
        assert comm.stats.wire_bytes_to_server == 0
        assert comm.stats.comm_seconds == 0.0


class TestCompression:
    def test_compressible_payload_shrinks_wire_bytes(self):
        comm = CommunicationManager(SLOW_WIFI, enable_compression=True)
        payload = b"A" * 65536
        result = comm.send_to_mobile([payload])
        assert result.wire_bytes < len(payload) // 10
        assert comm.stats.compression_saved_bytes > 0
        assert comm.stats.bytes_to_mobile == 65536  # logical payload

    def test_compression_only_server_to_mobile(self):
        comm = CommunicationManager(SLOW_WIFI, enable_compression=True)
        payload = b"A" * 65536
        result = comm.send_to_server([payload])
        assert result.wire_bytes >= len(payload)

    def test_incompressible_payload_not_inflated(self):
        comm = CommunicationManager(SLOW_WIFI, enable_compression=True)
        payload = bytes(range(256)) * 16
        result = comm.send_to_mobile([payload])
        assert result.wire_bytes <= len(payload) + 128

    def test_incompressible_wire_bytes_bounded_by_framing(self):
        """Server->mobile payloads the codec cannot shrink must never
        inflate the wire bytes beyond payload + framing: the manager
        keeps the raw bytes whenever deflate would grow them."""
        import random as _random
        rng = _random.Random(1234)
        payloads = [bytes(rng.getrandbits(8) for _ in range(3000))
                    for _ in range(3)]
        comm = CommunicationManager(SLOW_WIFI, enable_compression=True,
                                    enable_batching=True)
        result = comm.send_to_mobile(list(payloads))
        total = sum(len(p) for p in payloads)
        framing = (PER_ITEM_HEADER_BYTES * len(payloads)
                   + MESSAGE_HEADER_BYTES)
        assert result.wire_bytes <= total + framing
        # unbatched: each item pays its own message framing, still no
        # inflation beyond it
        comm2 = CommunicationManager(SLOW_WIFI, enable_compression=True,
                                     enable_batching=False)
        result2 = comm2.send_to_mobile(list(payloads))
        framing2 = ((PER_ITEM_HEADER_BYTES + MESSAGE_HEADER_BYTES)
                    * len(payloads))
        assert result2.wire_bytes <= total + framing2

    def test_disable_compression(self):
        on = CommunicationManager(SLOW_WIFI, enable_compression=True)
        off = CommunicationManager(SLOW_WIFI, enable_compression=False)
        payload = b"B" * 32768
        assert off.send_to_mobile([payload]).seconds > \
            on.send_to_mobile([payload]).seconds

    def test_compression_charges_codec_time(self):
        comm = CommunicationManager(SLOW_WIFI, enable_compression=True)
        comm.send_to_mobile([b"C" * 65536])
        assert comm.stats.compression_seconds > 0


class TestStreamAndRoundTrip:
    def test_stream_cheaper_than_message(self):
        comm = CommunicationManager(SLOW_WIFI)
        streamed = comm.stream_to_mobile(b"line\n").seconds
        messaged = comm.round_trip(5, 0).seconds
        assert streamed < messaged

    def test_stream_without_batching_pays_latency(self):
        comm = CommunicationManager(SLOW_WIFI, enable_batching=False)
        assert comm.stream_to_mobile(b"x").seconds >= SLOW_WIFI.latency_s

    def test_round_trip_counts_two_messages(self):
        comm = CommunicationManager(FAST_WIFI)
        comm.round_trip(100, 200)
        assert comm.stats.messages == 2
        assert comm.stats.bytes_to_server == 100
        assert comm.stats.bytes_to_mobile == 200


@given(st.lists(st.binary(min_size=1, max_size=512), min_size=1,
                max_size=12),
       st.booleans(), st.booleans())
@settings(max_examples=60, deadline=None)
def test_accounting_invariants(payloads, batching, compression):
    """Payload accounting is exact and time is nonnegative and finite,
    whatever the feature flags."""
    comm = CommunicationManager(FAST_WIFI, enable_batching=batching,
                                enable_compression=compression)
    total = sum(len(p) for p in payloads)
    up = comm.send_to_server(list(payloads))
    down = comm.send_to_mobile(list(payloads))
    assert comm.stats.bytes_to_server == total
    assert comm.stats.bytes_to_mobile == total
    assert up.seconds > 0 and down.seconds > 0
    assert comm.stats.comm_seconds == pytest.approx(
        up.seconds + down.seconds)


class TestFunctionAddressTable:
    def _machines(self):
        src = """
        int f(int x) { return x; }
        int g(int x) { return -x; }
        int main() { return f(1) + g(2); }
        """
        module = compile_c(src, "m")
        mobile = Machine(__import__("repro.targets", fromlist=["ARM32"])
                         .ARM32, "mobile")
        from repro.targets import X86_64
        server = Machine(X86_64, "server")
        for m in (mobile, server):
            install_libc(m)
            m.load(module.clone())
        return mobile, server

    def test_bidirectional_mapping(self):
        mobile, server = self._machines()
        table = FunctionAddressTable(mobile, server)
        m_addr = mobile.address_of_function("f")
        s_addr = server.address_of_function("f")
        assert m_addr != s_addr  # different back ends, different addresses
        assert table.map_m2s(m_addr) == s_addr
        assert table.map_s2m(s_addr) == m_addr

    def test_unmappable_address_raises(self):
        mobile, server = self._machines()
        table = FunctionAddressTable(mobile, server)
        with pytest.raises(UnmappableFunctionPointer):
            table.map_m2s(0xDEADBEEF)

    def test_lookup_counter(self):
        mobile, server = self._machines()
        table = FunctionAddressTable(mobile, server)
        table.map_m2s(mobile.address_of_function("f"))
        table.map_s2m(server.address_of_function("g"))
        assert table.total_lookups == 2
