"""Tests for the simulated I/O environment and the IR printer."""

import pytest

from repro.frontend import compile_c
from repro.ir import print_function, print_module
from repro.machine import IOEnvironment, SimFile


class TestIOEnvironment:
    def test_open_read(self):
        io = IOEnvironment(files={"a.txt": b"hello"})
        handle = io.open("a.txt", "r")
        assert handle > 0
        assert io.file(handle).read(5) == b"hello"
        assert io.file(handle).at_eof

    def test_open_missing_for_read_fails(self):
        io = IOEnvironment()
        assert io.open("missing", "r") == 0

    def test_write_mode_truncates(self):
        io = IOEnvironment(files={"a.txt": b"old content"})
        handle = io.open("a.txt", "w")
        io.file(handle).write(b"new")
        assert io.files["a.txt"] == bytearray(b"new")

    def test_append_mode(self):
        io = IOEnvironment(files={"a.txt": b"one"})
        handle = io.open("a.txt", "a")
        io.file(handle).write(b"two")
        assert io.files["a.txt"] == bytearray(b"onetwo")

    def test_close(self):
        io = IOEnvironment(files={"a.txt": b"x"})
        handle = io.open("a.txt", "r")
        assert io.close(handle) == 0
        assert io.file(handle) is None
        assert io.close(handle) == -1

    def test_read_line(self):
        f = SimFile("t", bytearray(b"ab\ncd\n"), writable=False)
        assert f.read_line(16) == b"ab\n"
        assert f.read_line(16) == b"cd\n"
        assert f.read_line(16) == b""

    def test_read_line_respects_limit(self):
        f = SimFile("t", bytearray(b"abcdefgh\n"), writable=False)
        assert f.read_line(4) == b"abc"   # limit-1 bytes, like fgets

    def test_stdout_capture(self):
        io = IOEnvironment()
        io.write_stdout(b"a")
        io.write_stdout(b"b")
        io.write_stderr(b"!")
        assert io.stdout_text() == "ab"
        assert io.stderr_text() == "!"
        assert io.stdout_ops == 2

    def test_stdin_stream(self):
        io = IOEnvironment(stdin=b"12345")
        assert io.read_stdin(3) == b"123"
        assert io.read_stdin(10) == b"45"

    def test_write_extends_file(self):
        f = SimFile("t", bytearray(b"ab"), writable=True)
        f.pos = 4
        f.write(b"xy")
        assert bytes(f.data) == b"ab\x00\x00xy"

    def test_readonly_write_is_noop(self):
        f = SimFile("t", bytearray(b"ab"), writable=False)
        assert f.write(b"zz") == 0
        assert bytes(f.data) == b"ab"


class TestPrinter:
    SRC = r"""
    typedef struct { int a; double b; } Pair;
    Pair box;
    int table[3] = { 1, 2, 3 };
    char *msg = "hi";
    int helper(int x) { return x > 0 ? x : -x; }
    int main() {
        box.a = helper(-5);
        printf("%d\n", box.a + table[1]);
        return 0;
    }
    """

    @pytest.fixture(scope="class")
    def text(self):
        return print_module(compile_c(self.SRC, "p"))

    def test_struct_printed(self, text):
        assert "%Pair = type { i32 a, double b }" in text

    def test_globals_printed(self, text):
        assert "@box = global" in text
        assert "@table = global [3 x i32] [1, 2, 3]" in text
        assert "@msg = global i8* @.str.0+0" in text

    def test_functions_printed(self, text):
        assert "define i32 @helper(i32 %x)" in text
        assert "define i32 @main()" in text
        assert "declare i32 @printf" in text

    def test_instructions_printed(self, text):
        assert "call" in text
        assert "gep" in text
        assert "ret i32" in text
        assert "br " in text

    def test_every_result_named_uniquely(self):
        module = compile_c(self.SRC, "p")
        text = print_function(module.function("main"))
        names = [line.split(" = ")[0].strip()
                 for line in text.splitlines() if " = " in line]
        assert len(names) == len(set(names))

    def test_uva_marker_printed(self):
        module = compile_c(self.SRC, "p")
        module.global_("box").uva_allocated = True
        assert "@box = global uva" in print_module(module)
