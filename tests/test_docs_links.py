"""Tier-1 wrapper around tools/check_doc_links.py: every intra-repo
markdown link must resolve, so stale doc cross-references fail the
normal test run, not just the CI docs step."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "check_doc_links.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_doc_links", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_intra_repo_markdown_links_resolve(capsys):
    tool = _load_tool()
    problems = []
    for path in tool.iter_markdown(REPO_ROOT):
        problems.extend(tool.check_file(path, REPO_ROOT))
    assert not problems, "broken markdown links:\n" + "\n".join(problems)


def test_checker_catches_a_broken_link(tmp_path):
    tool = _load_tool()
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "real.md").write_text("# here\n")
    (tmp_path / "a.md").write_text(
        "ok [good](docs/real.md) and [bad](docs/missing.md)\n"
        "external [x](https://example.com/missing) is ignored\n"
        "anchor-only [y](#section) is ignored\n"
        "```\n[inside a fence](docs/missing-too.md)\n"
        "```cpp\n"  # nested opener is fence *content*, not a closer
        "[still inside](docs/also-missing.md)\n```\n")
    problems = tool.check_file(tmp_path / "a.md", tmp_path)
    assert len(problems) == 1
    assert "docs/missing.md" in problems[0]


def test_checker_cli_exit_codes(tmp_path):
    tool = _load_tool()
    (tmp_path / "clean.md").write_text("no links here\n")
    assert tool.main(["check_doc_links", str(tmp_path)]) == 0
    (tmp_path / "dirty.md").write_text("[gone](nope.md)\n")
    assert tool.main(["check_doc_links", str(tmp_path)]) == 1
