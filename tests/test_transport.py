"""Tests for the layered transport stack: fault plans, the raw link,
the retrying transport, failure-aware estimation, and the two
fault-model invariants of DESIGN.md §5 — the zero-fault no-op and
abort-and-replay semantics preservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_c
from repro.machine.machine import STACK_SIZE
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import (FAST_WIFI, FaultPlan, Link, LinkDownError,
                           NO_FAULTS, NetworkModel, OffloadSession,
                           RetryPolicy, SessionOptions, Transport,
                           run_local)

NET = NetworkModel("t", bandwidth_bps=8e6, latency_s=0.001)


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_defaults_are_empty(self):
        assert FaultPlan().is_empty
        assert NO_FAULTS.is_empty
        # a seed alone injects nothing
        assert FaultPlan(seed=99).is_empty

    def test_any_knob_makes_it_nonempty(self):
        assert not FaultPlan(drop_rate=0.1).is_empty
        assert not FaultPlan(max_jitter_s=1e-4).is_empty
        assert not FaultPlan(disconnect_after_messages=3).is_empty
        assert not FaultPlan(disconnect_rate=0.01).is_empty
        assert not FaultPlan(bandwidth_factor=0.5).is_empty

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(disconnect_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(max_jitter_s=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(bandwidth_factor=0.0)
        with pytest.raises(ValueError):
            FaultPlan(disconnect_after_messages=-1)


# ---------------------------------------------------------------------------
# Link (raw medium)
# ---------------------------------------------------------------------------
class TestLink:
    def test_faultless_is_exactly_the_network_formula(self):
        link = Link(NET)
        assert link.faultless
        att = link.transmit(1000)
        assert att.delivered
        assert att.seconds == NET.one_way_time(1000)  # bit-identical

    def test_empty_plan_normalized_to_faultless(self):
        assert Link(NET, FaultPlan()).faultless
        assert Link(NET, FaultPlan(seed=7)).faultless

    def test_same_seed_same_schedule(self):
        plan = FaultPlan(seed=42, drop_rate=0.5, max_jitter_s=1e-3)
        a = [Link(NET, plan).transmit(100) for _ in range(1)]
        outcomes = []
        for _ in range(2):
            link = Link(NET, plan)
            outcomes.append([(link.transmit(100).delivered,
                              link.transmit(100).seconds)
                             for _ in range(20)])
        assert outcomes[0] == outcomes[1]

    def test_certain_drop_never_delivers(self):
        link = Link(NET, FaultPlan(drop_rate=1.0))
        for _ in range(5):
            att = link.transmit(10)
            assert not att.delivered and not att.disconnected
            assert att.seconds == 0.0
        assert link.alive  # drops are transient, the link is not dead

    def test_disconnect_after_messages(self):
        link = Link(NET, FaultPlan(disconnect_after_messages=2))
        assert link.transmit(10).delivered
        assert link.transmit(10).delivered
        att = link.transmit(10)
        assert att.disconnected and not att.delivered
        assert not link.alive
        assert not link.can_reconnect  # no reconnect_rate configured
        assert not link.try_reconnect()

    def test_jitter_bounded(self):
        plan = FaultPlan(seed=5, max_jitter_s=2e-3)
        link = Link(NET, plan)
        base = NET.one_way_time(500)
        for _ in range(20):
            att = link.transmit(500)
            assert base <= att.seconds < base + 2e-3

    def test_bandwidth_collapse_slows_delivery(self):
        slow = Link(NET, FaultPlan(bandwidth_factor=0.25))
        att = slow.transmit(100_000)
        assert att.seconds > NET.one_way_time(100_000) * 2

    def test_reconnect_draws_from_the_same_rng(self):
        plan = FaultPlan(seed=1, disconnect_rate=1.0, reconnect_rate=1.0)
        link = Link(NET, plan)
        att = link.transmit(10)
        assert att.disconnected and not link.alive
        assert link.can_reconnect
        assert link.try_reconnect()
        assert link.alive


# ---------------------------------------------------------------------------
# RetryPolicy / Transport
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        p = RetryPolicy(backoff_base_s=0.01, backoff_multiplier=2.0)
        assert p.backoff_s(0) == pytest.approx(0.01)
        assert p.backoff_s(3) == pytest.approx(0.08)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_factor=0.0)

    def test_max_delivery_seconds_bounds_the_budget(self):
        p = RetryPolicy()
        expected = NET.one_way_time(1000)
        assert p.max_delivery_seconds(expected) > expected


class TestTransport:
    def test_faultless_passthrough_is_bit_identical(self):
        t = Transport(Link(NET))
        assert t.deliver(1234) == NET.one_way_time(1234)
        assert t.stats.messages == 1
        assert t.stats.retries == 0 and t.stats.drops == 0

    def test_retries_after_transient_drops(self):
        # seed chosen freely: with drop_rate=0.5 some of 30 deliveries
        # will need retries, and all must eventually succeed
        plan = FaultPlan(seed=9, drop_rate=0.5)
        t = Transport(Link(NET, plan),
                      policy=RetryPolicy(max_attempts=12))
        total = sum(t.deliver(100) for _ in range(30))
        assert t.stats.messages == 30
        assert t.stats.retries > 0 and t.stats.drops == t.stats.retries
        # retried deliveries cost timeout + backoff on top of transfer
        assert total > 30 * NET.one_way_time(100)
        assert t.stats.timeout_seconds > 0
        assert t.stats.backoff_seconds > 0

    def test_gives_up_within_the_retry_budget(self):
        plan = FaultPlan(drop_rate=1.0)
        policy = RetryPolicy(max_attempts=3)
        t = Transport(Link(NET, plan), policy=policy)
        with pytest.raises(LinkDownError) as exc:
            t.deliver(1000)
        assert t.stats.failed_deliveries == 1
        assert t.stats.drops == 3
        elapsed = exc.value.elapsed_seconds
        assert 0 < elapsed <= policy.max_delivery_seconds(
            NET.one_way_time(1000))

    def test_hard_disconnect_without_reconnect_kills_delivery(self):
        t = Transport(Link(NET, FaultPlan(disconnect_after_messages=0)))
        with pytest.raises(LinkDownError):
            t.deliver(10)
        assert not t.alive
        assert not t.usable   # dead for good: estimator stops offloading
        # every subsequent delivery fails immediately too
        with pytest.raises(LinkDownError):
            t.deliver(10)

    def test_reconnect_revives_delivery(self):
        plan = FaultPlan(seed=2, disconnect_rate=0.4, reconnect_rate=1.0)
        t = Transport(Link(NET, plan))
        for _ in range(25):
            assert t.deliver(50) > 0
        assert t.stats.messages == 25
        assert t.stats.disconnects > 0
        assert t.stats.reconnects == t.stats.disconnects
        assert t.stats.reconnect_seconds > 0


# ---------------------------------------------------------------------------
# Session-level fault behavior
# ---------------------------------------------------------------------------
# A workload exercising every transport touchpoint: heap prefetch +
# write-back, remote input (fgets round trips), remote output (printf
# streams), and a post-kernel consistency check over the shared heap.
FAULT_SRC = r"""
int *data;
int kernel(int n, void *f) {
    char line[32];
    int i, acc = 0;
    while (fgets(line, 32, f)) acc += atoi(line);
    for (i = 0; i < n; i++) {
        data[i % 64] += (i ^ acc) & 0xFF;
        acc += data[i % 64] * 3;
    }
    printf("acc %d\n", acc);
    return acc;
}
int main() {
    int i, n, check = 0;
    void *f;
    scanf("%d", &n);
    data = (int*) malloc(64 * sizeof(int));
    for (i = 0; i < 64; i++) data[i] = i;
    f = fopen("nums.txt", "r");
    if (!f) return 1;
    printf("%d\n", kernel(n, f));
    fclose(f);
    for (i = 0; i < 64; i++) check += data[i] * (i + 1);
    printf("check %d\n", check);
    return 0;
}
"""
FAULT_STDIN = b"1500\n"
FAULT_FILES = {"nums.txt": b"1\n2\n3\n4\n"}

# Several dynamic invocations, so post-failure decisions are observable.
MULTI_SRC = r"""
int *data;
int crunch(int r0) {
    int i, r, acc = 0;
    for (r = 0; r < 12; r++)
        for (i = 0; i < 400; i++)
            acc += (data[i] * 31 + r + r0) ^ (acc >> 3);
    return acc;
}
int main() {
    int i, total = 0;
    data = (int*) malloc(400 * sizeof(int));
    for (i = 0; i < 400; i++) data[i] = i * 7 + 3;
    /* four separate call sites: four dynamic offload decisions */
    total += crunch(0);
    total += crunch(1);
    total += crunch(2);
    total += crunch(3);
    printf("total %d\n", total);
    return 0;
}
"""

_PROGRAMS = {}


def _compiled(key, source, stdin, files=None):
    """Compile + profile once per module; sessions are cheap, compiles
    are not (hypothesis runs many examples)."""
    if key not in _PROGRAMS:
        module = compile_c(source, key)
        profile = profile_module(module, stdin=stdin, files=files)
        program = NativeOffloaderCompiler(CompilerOptions()).compile(
            module, profile)
        local = run_local(module, stdin=stdin, files=files)
        _PROGRAMS[key] = (program, local)
    return _PROGRAMS[key]


def _run(key, source, stdin, files=None, **session_kwargs):
    program, local = _compiled(key, source, stdin, files)
    session = OffloadSession(program, FAST_WIFI,
                             options=SessionOptions(**session_kwargs),
                             stdin=stdin,
                             files=dict(files) if files else None)
    return local, session, session.run()


def _observable_state(session):
    """Everything the program can observe at exit: streams, files, and
    mobile memory outside the (dead-residue-bearing) stack region."""
    mobile = session.mobile
    stack_lo = mobile.stack_top - STACK_SIZE
    psize = mobile.memory.page_size
    pages = {}
    for pidx in mobile.memory.mapped_pages():
        base = pidx * psize
        if stack_lo <= base < mobile.stack_top:
            continue
        pages[pidx] = bytes(mobile.memory.page_bytes(pidx))
    return {
        "stdout": bytes(mobile.io.stdout),
        "stderr": bytes(mobile.io.stderr),
        "files": {p: bytes(d) for p, d in mobile.io.files.items()},
        "memory": pages,
    }


class TestZeroFaultNoOp:
    def test_empty_plan_is_bit_identical(self):
        """fault_plan=None and fault_plan=FaultPlan() must produce the
        same numbers to the last bit — the zero-fault no-op invariant."""
        _, _, base = _run("fault", FAULT_SRC, FAULT_STDIN, FAULT_FILES)
        _, _, empty = _run("fault", FAULT_SRC, FAULT_STDIN, FAULT_FILES,
                           fault_plan=FaultPlan(seed=123))
        assert empty.stdout == base.stdout
        assert empty.total_seconds == base.total_seconds
        assert empty.energy_mj == base.energy_mj
        assert empty.comm_seconds == base.comm_seconds
        assert empty.bytes_to_server == base.bytes_to_server
        assert empty.bytes_to_mobile == base.bytes_to_mobile
        assert empty.transport_stats.retries == 0
        assert empty.aborted_invocations == 0

    def test_faulty_runs_are_seed_deterministic(self):
        plan = FaultPlan(seed=77, drop_rate=0.4, max_jitter_s=5e-4)
        _, _, a = _run("fault", FAULT_SRC, FAULT_STDIN, FAULT_FILES,
                       fault_plan=plan)
        _, _, b = _run("fault", FAULT_SRC, FAULT_STDIN, FAULT_FILES,
                       fault_plan=plan)
        assert a.total_seconds == b.total_seconds
        assert a.energy_mj == b.energy_mj
        assert a.transport_stats == b.transport_stats


class TestAbortAndReplay:
    def test_init_failure_falls_back_locally(self):
        local, session, res = _run(
            "fault", FAULT_SRC, FAULT_STDIN, FAULT_FILES,
            fault_plan=FaultPlan(disconnect_after_messages=0))
        assert res.stdout == local.stdout
        assert res.exit_code == local.exit_code
        assert res.offloaded_invocations == 0
        assert res.aborted_invocations >= 1
        assert res.local_fallbacks == res.aborted_invocations
        assert res.wasted_seconds > 0
        rec = next(r for r in res.invocations if r.aborted)
        assert rec.abort_phase == "init"
        assert rec.fallback_local

    def test_wasted_time_lands_on_the_timeline_and_battery(self):
        local, _, ok = _run("fault", FAULT_SRC, FAULT_STDIN, FAULT_FILES,
                            force_local=True)
        _, _, res = _run(
            "fault", FAULT_SRC, FAULT_STDIN, FAULT_FILES,
            fault_plan=FaultPlan(disconnect_after_messages=0))
        # a dead link costs strictly more than never trying: the local
        # work is identical (modulo one builtin-dispatch call charge),
        # plus the wasted retry/timeout budget
        assert res.total_seconds > ok.total_seconds
        assert res.total_seconds == pytest.approx(
            ok.total_seconds + res.wasted_seconds, rel=1e-3)
        assert res.energy_mj > ok.energy_mj

    def test_dead_link_declines_subsequent_invocations(self):
        local, session, res = _run(
            "multi", MULTI_SRC, b"",
            fault_plan=FaultPlan(disconnect_after_messages=0))
        assert res.stdout == local.stdout
        assert res.aborted_invocations == 1     # only the first attempt
        assert res.local_fallbacks == 1
        assert res.offloaded_invocations == 0
        # the estimator saw transport.usable == False and declined the
        # rest without burning another retry budget
        assert res.declined_invocations == len(res.invocations) - 1
        assert len(res.invocations) >= 2
        assert session.estimator.last_reason == "link_down"

    def test_failure_cooldown_backs_off_exponentially(self):
        program, _ = _compiled("multi", MULTI_SRC, b"")
        session = OffloadSession(program, FAST_WIFI)
        est = session.estimator
        target = session.program.targets[0]
        name = target.name
        est.record_offload_failure(name)
        assert est.state[name].cooldown == 1
        est.record_offload_failure(name)
        assert est.state[name].cooldown == 2
        for _ in range(8):
            est.record_offload_failure(name)
        assert est.state[name].cooldown == 8  # capped
        assert not est.should_offload(target)
        assert est.last_reason == "failure_backoff"
        # a completed offload clears the penalty
        est.record_offload_traffic(name, 1000.0)
        assert est.state[name].cooldown == 0


@given(seed=st.integers(0, 2**16),
       disconnect_after=st.one_of(st.none(), st.integers(0, 25)),
       drop_rate=st.sampled_from([0.0, 0.3, 0.7, 0.95]),
       jitter=st.sampled_from([0.0, 5e-4]),
       reconnect_rate=st.sampled_from([0.0, 0.5, 1.0]),
       prefetch=st.booleans())
@settings(max_examples=20, deadline=None)
def test_semantics_invariant_under_any_fault_schedule(
        seed, disconnect_after, drop_rate, jitter, reconnect_rate,
        prefetch):
    """The semantics invariant (DESIGN.md §5): whatever the injected
    fault schedule — including disconnects landing mid-initialization,
    mid-CoD and mid-finalization — the observable program state (stdout,
    stderr, files, final mobile memory outside the stack) is identical
    to the fault-free run, which itself matches pure-local execution.

    Dynamic estimation is disabled so every invocation attempts the
    offload path regardless of expected gain, maximizing fault-path
    coverage; prefetch toggles so copy-on-demand round trips (mid-exec
    failure points) are exercised too."""
    plan = FaultPlan(seed=seed, drop_rate=drop_rate, max_jitter_s=jitter,
                     disconnect_after_messages=disconnect_after,
                     reconnect_rate=reconnect_rate)
    local, base_session, base = _run(
        "fault", FAULT_SRC, FAULT_STDIN, FAULT_FILES,
        enable_dynamic_estimation=False, enable_prefetch=prefetch)
    _, session, res = _run(
        "fault", FAULT_SRC, FAULT_STDIN, FAULT_FILES,
        enable_dynamic_estimation=False, enable_prefetch=prefetch,
        fault_plan=plan)
    assert res.exit_code == base.exit_code == local.exit_code
    assert res.stdout == base.stdout == local.stdout
    assert _observable_state(session) == _observable_state(base_session)
    # bounded failure accounting: every abort produced a local replay
    assert res.local_fallbacks == res.aborted_invocations
    if plan.is_empty:
        assert res.total_seconds == base.total_seconds


class TestCLIFaultFlags:
    def test_run_accepts_seed_and_fault_flags(self, capsys):
        from repro.__main__ import main
        assert main(["run", "chess", "--seed", "3",
                     "--drop-rate", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "faulty link, seed 3" in out
        assert "faults" in out and "fallback" in out

    def test_trace_surfaces_fault_counters(self, capsys):
        from repro.__main__ import main
        assert main(["trace", "chess", "--seed", "4",
                     "--disconnect-after", "6", "--tail", "5"]) == 0
        out = capsys.readouterr().out
        assert "transport / fallback" in out
        assert "aborted invocations" in out
