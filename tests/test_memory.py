"""Tests for the paged address space: mapping, dirty tracking, fault
hooks, and byte-level round trips (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import AddressSpace, SegmentationFault


class TestBasicAccess:
    def test_roundtrip_within_page(self):
        mem = AddressSpace(page_size=4096)
        mem.map_page(1)
        mem.write(4096 + 100, b"hello")
        assert mem.read(4096 + 100, 5) == b"hello"

    def test_cross_page_write_and_read(self):
        mem = AddressSpace(page_size=256)
        mem.map_page(0)
        mem.map_page(1)
        data = bytes(range(100))
        mem.write(200, data)  # spans pages 0 and 1
        assert mem.read(200, 100) == data

    def test_unmapped_read_faults(self):
        mem = AddressSpace()
        with pytest.raises(SegmentationFault) as err:
            mem.read(0x1000, 4)
        assert err.value.address == 0x1000

    def test_unmapped_write_faults(self):
        mem = AddressSpace()
        with pytest.raises(SegmentationFault):
            mem.write(0x2000, b"xy")

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            AddressSpace(page_size=1000)

    def test_cstring(self):
        mem = AddressSpace()
        mem.map_page(0)
        mem.write(10, b"native\x00junk")
        assert mem.read_cstring(10) == b"native"

    def test_unterminated_cstring_raises(self):
        mem = AddressSpace(page_size=256)
        mem.map_page(0)
        mem.write(0, b"\x01" * 256)
        with pytest.raises((ValueError, SegmentationFault)):
            mem.read_cstring(0)


class TestDirtyTracking:
    def test_writes_mark_dirty(self):
        mem = AddressSpace(page_size=256)
        mem.map_page(3)
        assert mem.dirty_pages() == []
        mem.write(3 * 256 + 5, b"x")
        assert mem.dirty_pages() == [3]

    def test_reads_do_not_mark_dirty(self):
        mem = AddressSpace(page_size=256)
        mem.map_page(2)
        mem.read(512, 10)
        assert mem.dirty_pages() == []

    def test_collect_clears(self):
        mem = AddressSpace(page_size=256)
        mem.map_page(0)
        mem.write(0, b"abc")
        snapshot = mem.collect_dirty_pages()
        assert list(snapshot) == [0]
        assert snapshot[0][:3] == b"abc"
        assert mem.dirty_pages() == []

    def test_cross_page_write_dirties_both(self):
        mem = AddressSpace(page_size=256)
        mem.map_page(0)
        mem.map_page(1)
        mem.write(250, b"0123456789")
        assert mem.dirty_pages() == [0, 1]

    def test_install_pages(self):
        mem = AddressSpace(page_size=256)
        mem.install_pages({5: b"\xAA" * 256}, mark_dirty=True)
        assert mem.read(5 * 256, 1) == b"\xAA"
        assert 5 in mem.dirty


class TestSubPageTracking:
    """Block-granular dirty masks and touched-page sets feeding the
    incremental UVA data plane (docs/uva-data-plane.md)."""

    def make(self, page_size=256):
        mem = AddressSpace(page_size=page_size)
        mem.track_subpage = True
        mem.map_page(0)
        return mem

    def test_untracked_by_default(self):
        mem = AddressSpace(page_size=256)
        mem.map_page(0)
        mem.write(0, b"x")
        assert mem.dirty_blocks == {}

    def test_write_sets_covering_block_bits(self):
        mem = self.make()
        mem.write(0, b"x")                        # block 0
        mem.write(mem.block_size, b"yz")          # block 1
        assert mem.dirty_blocks[0] == 0b11

    def test_spanning_write_sets_a_run_of_bits(self):
        mem = self.make()
        mem.write(mem.block_size - 1, b"ab")      # straddles blocks 0-1
        assert mem.dirty_blocks[0] == 0b11

    def test_cross_page_write_masks_both_pages(self):
        mem = self.make()
        mem.map_page(1)
        mem.write(256 - 2, b"0123")
        assert mem.dirty_blocks[0] & (1 << (mem.blocks_per_page - 1))
        assert mem.dirty_blocks[1] & 1

    def test_collect_dirty_clears_masks(self):
        mem = self.make()
        mem.write(0, b"x")
        mem.collect_dirty_pages()
        assert mem.dirty_blocks == {}

    def test_full_block_mask_covers_page(self):
        mem = self.make()
        mem.write(0, b"\xff" * 256)
        assert mem.dirty_blocks[0] == mem.full_block_mask

    def test_touched_records_reads_and_writes(self):
        mem = self.make()
        mem.map_page(2)
        mem.touched = set()
        mem.read(0, 4)
        mem.write(2 * 256, b"w")
        assert mem.touched == {0, 2}
        mem.touched = None                        # uninstall: no tracking
        mem.read(0, 4)

    def test_apply_delta_patches_in_place(self):
        mem = self.make()
        mem.write(0, bytes(range(256)))
        mem.collect_dirty_pages()
        mem.apply_delta(0, [(10, b"\x00\x00"), (100, b"\xff")],
                        mark_dirty=True)
        expect = bytearray(range(256))
        expect[10:12] = b"\x00\x00"
        expect[100] = 0xff
        assert mem.read(0, 256) == bytes(expect)
        assert 0 in mem.dirty

    def test_apply_delta_to_unmapped_page_faults(self):
        mem = self.make()
        with pytest.raises(SegmentationFault):
            mem.apply_delta(9, [(0, b"x")])


class TestFaultHandler:
    def test_handler_resolves_fault(self):
        mem = AddressSpace(page_size=256)
        fetched = []

        def handler(pidx):
            fetched.append(pidx)
            mem.map_page(pidx, b"\x42" * 256)
            return True

        mem.fault_handler = handler
        assert mem.read(10 * 256 + 3, 1) == b"\x42"
        assert fetched == [10]
        assert mem.fault_count == 1

    def test_handler_refusal_still_faults(self):
        mem = AddressSpace(page_size=256)
        mem.fault_handler = lambda pidx: False
        with pytest.raises(SegmentationFault):
            mem.read(999, 1)

    def test_mapped_pages_skip_handler(self):
        calls = []
        mem = AddressSpace(page_size=256)
        mem.fault_handler = lambda p: calls.append(p) or False
        mem.map_page(0)
        mem.read(0, 4)
        assert calls == []

    def test_unmap(self):
        mem = AddressSpace(page_size=256)
        mem.map_page(0)
        mem.write(0, b"x")
        mem.unmap_page(0)
        assert not mem.is_mapped(0)
        assert mem.dirty_pages() == []


# -- hypothesis round trips -------------------------------------------------

@given(st.integers(min_value=0, max_value=2**20),
       st.binary(min_size=1, max_size=600))
@settings(max_examples=150, deadline=None)
def test_write_read_roundtrip(address, data):
    mem = AddressSpace(page_size=256)
    first = address // 256
    last = (address + len(data) - 1) // 256
    for pidx in range(first, last + 1):
        mem.map_page(pidx)
    mem.write(address, data)
    assert mem.read(address, len(data)) == data


@given(st.lists(st.tuples(st.integers(0, 4000),
                          st.binary(min_size=1, max_size=64)),
                min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_overlapping_writes_behave_like_a_flat_buffer(writes):
    """The paged memory is observationally identical to one big buffer."""
    mem = AddressSpace(page_size=256)
    for pidx in range(0, 4096 // 256 + 2):
        mem.map_page(pidx)
    reference = bytearray(8192)
    for address, data in writes:
        mem.write(address, data)
        reference[address:address + len(data)] = data
    assert mem.read(0, 4500) == bytes(reference[:4500])
