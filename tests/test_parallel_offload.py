"""Scatter/gather parallel offload: the k-shard OffloadPlan
(docs/parallel-offload.md).

The load-bearing guarantees, in test form:

* ``shards=1`` (and the default) is byte-identical to the historical
  single-server invocation path — summary fingerprint, trace JSONL and
  stdout all match (ISSUE 9 differential bar).
* A non-shardable target silently stays on the classic path at any
  ``--shards`` setting.
* Any shard-fault schedule — injected faults, straggler abandonment —
  still yields program output byte-identical to the k=1 run
  (DESIGN.md §5 invariant: stragglers replay locally on the mobile).
* Plan traces satisfy the span invariant and the critical-path buckets
  reconcile (``server_compute`` is the parallel wall, not the serial
  sum).
* Gang admission is atomic all-or-degrade-to-fewer and never leaves
  slot bookkeeping behind.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from conftest import HOT_KERNEL_SRC, HOT_KERNEL_STDIN, offload_c
from repro.fleet import (DeviceSpec, PoolOptions, ServerPool, ServerSpec,
                         behavior_key, make_scheduler)
from repro.fleet.pool import Rejection
from repro.fleet.replay import (GangProjection, OutcomeProjection,
                                ScriptedDispatcher)
from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.offload.shard import contiguous_ranges
from repro.profiler import profile_module
from repro.runtime import FAST_WIFI, NETWORKS, SessionOptions, run_local
from repro.runtime.backend import Admission
from repro.runtime.dynamic_estimator import DynamicPerformanceEstimator
from repro.trace import write_jsonl
from repro.trace.analysis import reconstruct_sessions, validate_sessions
from repro.trace.analysis.critical_path import attribute_session

# One flat loop, disjoint element writes, global trip count — the exact
# shape the shard analyzer accepts.
SHARD_SRC = r"""
int data[2048];
int out[2048];
int n;

void smooth(void) {
    int i;
    for (i = 0; i < n; i++) {
        int v = data[i];
        v = v * 31 + (v >> 3);
        out[i] = (v ^ (v >> 5)) + i;
    }
}

int main() {
    int i, acc = 0;
    scanf("%d", &n);
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    smooth();
    for (i = 0; i < n; i++) acc += out[i];
    printf("sum %d\n", acc);
    return 0;
}
"""

FORCED = CompilerOptions(forced_targets=["smooth"])


def _fingerprint(result) -> str:
    """Everything the session reports, minus the unhashable carriers
    (the trace is compared separately, byte for byte)."""
    d = dataclasses.asdict(result)
    for key in ("trace", "power_trace", "transport_stats", "uva_stats"):
        d[key] = None
    return json.dumps(d, default=str, sort_keys=True)


def _run(stdin: bytes, options=None, src: str = SHARD_SRC):
    return offload_c(src, stdin=stdin, compiler_options=FORCED,
                     session_options=options)


class TestK1Differential:
    """shards=1 must be byte-identical to the pre-refactor path."""

    def test_summary_and_stdout_fingerprints(self):
        _, default_run, _ = _run(b"600\n")
        _, k1_run, _ = _run(b"600\n", SessionOptions(shards=1))
        assert _fingerprint(default_run) == _fingerprint(k1_run)
        assert default_run.stdout == k1_run.stdout

    def test_trace_jsonl_identical(self, tmp_path):
        _, default_run, _ = _run(
            b"600\n", SessionOptions(enable_tracing=True))
        _, k1_run, _ = _run(
            b"600\n", SessionOptions(enable_tracing=True, shards=1))
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(default_run.trace.events(), str(a),
                    dropped=default_run.trace.dropped)
        write_jsonl(k1_run.trace.events(), str(b),
                    dropped=k1_run.trace.dropped)
        assert a.read_bytes() == b.read_bytes()

    def test_non_shardable_target_ignores_shards(self):
        """A nested-loop kernel refuses shard analysis; any --shards
        setting leaves its invocations byte-identical to the default."""
        local, default_run, _ = offload_c(HOT_KERNEL_SRC,
                                          stdin=HOT_KERNEL_STDIN)
        _, k4_run, program = offload_c(
            HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
            session_options=SessionOptions(shards=4))
        assert "crunch" not in program.shard_specs
        assert _fingerprint(default_run) == _fingerprint(k4_run)
        assert all(r.shards == 1 for r in k4_run.invocations)
        assert k4_run.stdout == local.stdout


class TestPlanExecution:
    def test_scatter_splits_and_matches_local(self):
        local, result, program = _run(b"600\n", SessionOptions(shards=4))
        assert "smooth" in program.shard_specs
        assert result.stdout == local.stdout
        plans = [r for r in result.invocations if r.shards > 1]
        assert len(plans) == 1
        record = plans[0]
        assert record.shards == 4
        assert sum(record.shard_sizes) == 600
        assert record.shard_sizes == [150, 150, 150, 150]
        # the parallel wall is the slowest shard, strictly under the
        # serial sum the same server work would have cost
        assert 0.0 < record.shard_wall_seconds < record.server_seconds

    def test_non_divisible_trip_count(self):
        local, result, _ = _run(b"598\n", SessionOptions(shards=4))
        record = next(r for r in result.invocations if r.shards > 1)
        assert sum(record.shard_sizes) == 598
        assert record.shard_sizes == [150, 150, 149, 149]
        assert result.stdout == local.stdout

    def test_trip_smaller_than_k_degrades(self):
        # profile at n=600 so the estimator still offloads, then feed a
        # 3-iteration run: the plan clamps k to the trip count.
        local, result, _ = offload_c(
            SHARD_SRC, stdin=b"3\n", profile_stdin=b"600\n",
            compiler_options=FORCED,
            session_options=SessionOptions(shards=8))
        record = max(result.invocations, key=lambda r: r.shards)
        assert record.shards == 3           # min(shards, trip)
        assert record.shard_sizes == [1, 1, 1]
        assert result.stdout == local.stdout

    def test_trivial_trip_stays_classic(self):
        local, result, _ = offload_c(
            SHARD_SRC, stdin=b"1\n", profile_stdin=b"600\n",
            compiler_options=FORCED,
            session_options=SessionOptions(shards=4))
        assert all(r.shards == 1 for r in result.invocations)
        assert result.stdout == local.stdout

    def test_shards_fold_into_behavior_key(self):
        module = compile_c(SHARD_SRC, "test")
        profile = profile_module(module, stdin=b"600\n")
        program = NativeOffloaderCompiler(FORCED).compile(module, profile)
        base = DeviceSpec(device_id="d", program=program,
                          network=FAST_WIFI, stdin=b"600\n",
                          options=SessionOptions())
        sharded = dataclasses.replace(
            base, options=SessionOptions(shards=4))
        assert behavior_key(base) != behavior_key(sharded)


class TestShardFaults:
    """DESIGN.md §5: any shard-fault schedule is output-invariant."""

    @pytest.mark.parametrize("faults", [(0,), (2,), (0, 2), (0, 1, 2, 3)])
    def test_injected_faults_byte_identical_output(self, faults):
        local, result, _ = _run(
            b"600\n", SessionOptions(shards=4, shard_faults=faults))
        assert result.stdout == local.stdout
        record = next(r for r in result.invocations if r.shards > 1)
        assert record.stragglers == len(faults)
        assert record.local_seconds > 0.0
        # the replay is charged to the mobile, not a fallback
        assert not record.fallback_local

    def test_straggler_factor_abandons_slowest(self):
        # 601/3 -> [201, 200, 200]: shard 0 is strictly slower than the
        # fastest, so a tight factor abandons it and replays locally.
        local, result, _ = _run(
            b"601\n", SessionOptions(shards=3, straggler_factor=1.001))
        record = next(r for r in result.invocations if r.shards > 1)
        assert record.stragglers >= 1
        assert result.stdout == local.stdout

    def test_factor_zero_disables_straggler_detection(self):
        local, result, _ = _run(
            b"601\n", SessionOptions(shards=3, straggler_factor=0.0))
        record = next(r for r in result.invocations if r.shards > 1)
        assert record.stragglers == 0
        assert result.stdout == local.stdout


class TestShardAnalysis:
    """Edge cases the analyzer must refuse (falling back to k=1)."""

    def test_loop_carried_dependence_refused(self):
        local, result, program = self._carried()
        assert "smooth" not in program.shard_specs
        assert "loop-carried dependence" in \
            program.shard_refusals.get("smooth", "")
        assert all(r.shards == 1 for r in result.invocations)
        assert result.stdout == local.stdout

    def _carried(self):
        src = r"""
int data[2048];
int out[2048];
int n;

void smooth(void) {
    int i;
    int acc = 0;
    for (i = 0; i < n; i++) {
        acc = acc + data[i];
        out[i] = acc;
    }
}

int main() {
    int i, total = 0;
    scanf("%d", &n);
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    smooth();
    for (i = 0; i < n; i++) total += out[i];
    printf("sum %d\n", total);
    return 0;
}
"""
        return offload_c(src, stdin=b"600\n", compiler_options=FORCED,
                         session_options=SessionOptions(shards=4))

    def test_nested_loop_refused(self):
        _, _, program = offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
                                  session_options=SessionOptions(shards=2))
        assert "crunch" not in program.shard_specs
        assert program.shard_refusals.get("crunch")

    def test_unproven_root_read_refused_when_target_writes(self):
        """An affine index proves nothing about a base with no provable
        root global (``int *q = a`` could just as well be ``a - 1``, and
        ``q[i]`` would read ``a[i-1]`` — a cross-shard dependence), so a
        writing target must refuse such a read outright."""
        src = r"""
int data[2048];
int out[2048];
int n;

void smooth(void) {
    int i;
    int *q = data;
    for (i = 0; i < n; i++) {
        out[i] = q[i] * 3 + i;
    }
}

int main() {
    int i, total = 0;
    scanf("%d", &n);
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    smooth();
    for (i = 0; i < n; i++) total += out[i];
    printf("sum %d\n", total);
    return 0;
}
"""
        local, result, program = offload_c(
            src, stdin=b"600\n", compiler_options=FORCED,
            session_options=SessionOptions(shards=4))
        assert "smooth" not in program.shard_specs
        assert "unanalyzable in-loop read" in \
            program.shard_refusals.get("smooth", "")
        assert all(r.shards == 1 for r in result.invocations)
        assert result.stdout == local.stdout


class TestOptionValidation:
    """A straggler_factor in (0, 1) would brand every shard — the
    fastest included — a straggler; SessionOptions refuses it."""

    @pytest.mark.parametrize("factor", [0.5, 0.999, -1.0])
    def test_fractional_straggler_factor_rejected(self, factor):
        with pytest.raises(ValueError, match="straggler_factor"):
            SessionOptions(straggler_factor=factor)

    @pytest.mark.parametrize("factor", [0.0, 1.0, 1.001, 2.5])
    def test_valid_straggler_factors_accepted(self, factor):
        assert SessionOptions(
            straggler_factor=factor).straggler_factor == factor

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            SessionOptions(shards=0)


class TestScriptedReleasePairing:
    """A plan's zero-share member hands its slot back at sizing time
    while the rest release at plan end, so chronological release order
    is not grant order — the replay dispatcher must pair release times
    to admissions by identity or the scheduler frees the wrong
    server's slot."""

    def test_gang_release_times_come_back_in_grant_order(self):
        gang = GangProjection.of([Admission(server_id=0),
                                  Admission(server_id=1),
                                  Admission(server_id=2)])
        dispatcher = ScriptedDispatcher((gang,))
        members = dispatcher.admit_gang("smooth", 0.0, 3)
        # zero-share middle member releases early, the rest at plan end
        dispatcher.release(members[1], 0.25)
        dispatcher.release(members[0], 9.0)
        dispatcher.release(members[2], 9.0)
        assert dispatcher.last_release_ts == (9.0, 0.25, 9.0)

    def test_single_grant_release(self):
        script = (OutcomeProjection(admitted=True, server_id=3),)
        dispatcher = ScriptedDispatcher(script)
        admission = dispatcher.admit("smooth", 0.0)
        dispatcher.release(admission, 4.0)
        assert dispatcher.last_release_t == 4.0
        assert dispatcher.last_release_ts == (4.0,)

    def test_unreleased_admission_raises(self):
        gang = GangProjection.of([Admission(server_id=0),
                                  Admission(server_id=1)])
        dispatcher = ScriptedDispatcher((gang,))
        members = dispatcher.admit_gang("smooth", 0.0, 2)
        dispatcher.release(members[0], 1.0)
        with pytest.raises(RuntimeError, match="unreleased"):
            dispatcher.last_release_ts


class TestShardSizing:
    """Resource-aware apportionment (largest remainder, EWMA-damped)."""

    def _estimator(self, ewma=None):
        est = object.__new__(DynamicPerformanceEstimator)
        est.queue_delay_ewma = dict(ewma or {})
        return est

    def test_equal_speeds_largest_remainder(self):
        est = self._estimator()
        gang = [Admission(server_id=i) for i in range(4)]
        assert est.plan_shard_sizes(598, gang) == [150, 150, 149, 149]
        assert est.plan_shard_sizes(600, gang) == [150, 150, 150, 150]

    def test_speed_weighted(self):
        est = self._estimator()
        gang = [Admission(server_id=0, speed=3.0),
                Admission(server_id=1, speed=1.0)]
        assert est.plan_shard_sizes(400, gang) == [300, 100]

    def test_queue_ewma_damps_saturated_server(self):
        est = self._estimator({1: 1.0})   # server 1 looks saturated
        gang = [Admission(server_id=0), Admission(server_id=1)]
        sizes = est.plan_shard_sizes(300, gang)
        assert sum(sizes) == 300
        assert sizes[0] > sizes[1]

    def test_zero_iterations(self):
        est = self._estimator()
        gang = [Admission(server_id=0), Admission(server_id=1)]
        assert est.plan_shard_sizes(0, gang) == [0, 0]

    def test_contiguous_ranges(self):
        assert contiguous_ranges(0, [3, 3, 2]) == [(0, 3), (3, 6), (6, 8)]
        assert contiguous_ranges(5, [2, 0, 1]) == [(5, 7), (7, 7), (7, 8)]


class TestGangAdmission:
    def test_gang_spreads_over_free_servers(self):
        pool = ServerPool(PoolOptions(servers=4, capacity=1))
        gang = pool.admit_gang("smooth", 0.0, 3)
        assert isinstance(gang, list) and len(gang) == 3
        assert len({a.server_id for a in gang}) == 3
        assert all(a.queue_seconds == 0.0 for a in gang)
        for a in gang:
            pool.release(a, 1.0)
        rows = pool.servers_detail(horizon_s=1.0)
        assert sum(r["shard_admissions"] for r in rows) == 3

    def test_degrades_to_free_slots(self):
        # server busy until t=5 -> a 4-shard gang at t=1 degrades to
        # the two genuinely free servers
        pool = ServerPool(PoolOptions(servers=3, capacity=1))
        held = pool.admit("other", 0.0)
        pool.release(held, 5.0)
        gang = pool.admit_gang("smooth", 1.0, 4)
        assert isinstance(gang, list)
        assert len(gang) == 2
        assert held.server_id not in {a.server_id for a in gang}

    def test_saturated_pool_falls_back_to_classic_admit(self):
        """No slot free now -> one classic (possibly queued) admission,
        never a deadlocked partial gang."""
        pool = ServerPool(PoolOptions(servers=1, capacity=1,
                                      queue_limit=2))
        held = pool.admit("other", 0.0)
        pool.release(held, 5.0)
        outcome = pool.admit_gang("smooth", 1.0, 4)
        assert isinstance(outcome, list) and len(outcome) == 1
        assert outcome[0].queue_seconds > 0.0

    def test_network_override_servers_excluded(self):
        """Cloud-tier servers behind their own link cannot join a gang
        (one plan, one link); the gang degrades to the edge servers."""
        pool = ServerPool(PoolOptions(specs=(
            ServerSpec(), ServerSpec(),
            ServerSpec(speed=2.0, tier="cloud",
                       network=NETWORKS["cloud-wan"]))))
        gang = pool.admit_gang("smooth", 0.0, 3)
        assert isinstance(gang, list) and len(gang) == 2
        assert all(a.network is None for a in gang)

    def test_slot_bookkeeping_survives_gang_cycles(self):
        pool = ServerPool(PoolOptions(servers=2, capacity=2))
        for cycle in range(3):
            t = float(cycle)
            gang = pool.admit_gang("smooth", t, 4)
            assert len(gang) == 4
            for a in gang:
                pool.release(a, t + 0.5)
        rows = pool.servers_detail(horizon_s=3.0)
        assert sum(r["shard_admissions"] for r in rows) == 12

    def test_shards_one_wraps_classic_admit(self):
        pool = ServerPool(PoolOptions(servers=2, capacity=1))
        outcome = pool.admit_gang("smooth", 0.0, 1)
        assert isinstance(outcome, list) and len(outcome) == 1

    def test_rejection_passthrough(self):
        pool = ServerPool(PoolOptions(servers=1, capacity=1,
                                      queue_limit=1))
        a = pool.admit("other", 0.0)
        pool.release(a, 10.0)
        b = pool.admit("other", 1.0)     # queued: fills the queue
        pool.release(b, 11.0)
        outcome = pool.admit_gang("smooth", 2.0, 2)
        assert isinstance(outcome, Rejection)


class TestFleetGangs:
    @pytest.fixture(scope="class")
    def compiled(self):
        module = compile_c(SHARD_SRC, "shard-fleet")
        profile = profile_module(module, stdin=b"600\n")
        program = NativeOffloaderCompiler(FORCED).compile(module, profile)
        local = run_local(module, stdin=b"600\n")
        return program, local

    def _fleet(self, program, shards, servers=4, devices=2):
        pool = ServerPool(PoolOptions(servers=servers, capacity=1))
        specs = [DeviceSpec(device_id=f"dev{i}", program=program,
                            network=FAST_WIFI, stdin=b"600\n",
                            start_offset_s=i * 0.001,
                            options=SessionOptions(shards=shards))
                 for i in range(devices)]
        return make_scheduler(specs, pool).run()

    def test_event_scheduler_runs_gangs(self, compiled):
        program, local = compiled
        result = self._fleet(program, shards=4)
        assert all(d.result.stdout == local.stdout
                   for d in result.devices)
        detail = result.summary()["servers_detail"]
        assert sum(r["shard_admissions"] for r in detail) >= 4

    def test_gang_fleet_deterministic(self, compiled):
        program, _ = compiled
        first = self._fleet(program, shards=4)
        second = self._fleet(program, shards=4)
        assert json.dumps(first.summary(), sort_keys=True) == \
            json.dumps(second.summary(), sort_keys=True)

    def test_zero_share_gang_fleet_releases_correct_slots(self):
        # trip 2 across a 3x-faster server: largest-remainder sizing
        # gives [2, 0], the zero-share member's slot goes back at
        # sizing time and the plan degrades to the classic path — the
        # scheduler must still free each real server at its own
        # member's instant.
        module = compile_c(SHARD_SRC, "shard-zero")
        profile = profile_module(module, stdin=b"600\n")
        program = NativeOffloaderCompiler(FORCED).compile(module, profile)
        local = run_local(module, stdin=b"2\n")
        pool = ServerPool(PoolOptions(specs=(ServerSpec(speed=3.0),
                                             ServerSpec())))
        specs = [DeviceSpec(device_id="d0", program=program,
                            network=FAST_WIFI, stdin=b"2\n",
                            options=SessionOptions(shards=2))]
        result = make_scheduler(specs, pool).run()
        assert result.devices[0].result.stdout == local.stdout
        detail = result.summary()["servers_detail"]
        assert sum(r["shard_admissions"] for r in detail) == 2

    def test_lockstep_engine_refuses_shards(self, compiled):
        program, _ = compiled
        specs = [DeviceSpec(device_id="d", program=program,
                            network=FAST_WIFI, stdin=b"600\n",
                            options=SessionOptions(shards=2))]
        with pytest.raises(ValueError, match="lockstep"):
            make_scheduler(specs, ServerPool(), engine="lockstep")


class TestPlanTraces:
    def _traced(self, options):
        return _run(b"600\n", options)

    @pytest.mark.parametrize("options", [
        SessionOptions(shards=4, enable_tracing=True),
        SessionOptions(shards=4, shard_faults=(0, 2),
                       enable_tracing=True),
    ], ids=["plan", "plan+faults"])
    def test_span_invariant_holds(self, options):
        local, result, _ = self._traced(options)
        assert result.stdout == local.stdout
        events = result.trace.events()
        sessions = reconstruct_sessions(events)
        assert validate_sessions(sessions, events) == []
        cats = {e.category for e in events}
        assert {"offload.scatter", "offload.exec",
                "offload.gather"} <= cats
        if options.shard_faults:
            assert "offload.straggler" in cats

    def test_critical_path_uses_parallel_wall(self):
        _, result, _ = self._traced(
            SessionOptions(shards=4, enable_tracing=True))
        record = next(r for r in result.invocations if r.shards > 1)
        sessions = reconstruct_sessions(result.trace.events())
        paths = [p for s in sessions for p in attribute_session(s)
                 if p.status == "offloaded" and "smooth" in p.target]
        assert len(paths) == 1
        assert paths[0].buckets["server_compute"] == pytest.approx(
            record.shard_wall_seconds)

    def test_straggler_replay_books_mobile_compute(self):
        _, result, _ = self._traced(
            SessionOptions(shards=4, shard_faults=(1,),
                           enable_tracing=True))
        record = next(r for r in result.invocations if r.shards > 1)
        sessions = reconstruct_sessions(result.trace.events())
        paths = [p for s in sessions for p in attribute_session(s)
                 if "smooth" in p.target]
        assert paths[0].buckets["mobile_compute"] == pytest.approx(
            record.local_seconds)
