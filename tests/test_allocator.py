"""Tests for the deterministic free-list allocator behind the UVA heap."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import Allocator, OutOfMemoryError


class TestAllocFree:
    def test_basic_alloc(self):
        heap = Allocator(0x1000, 0x10000)
        a = heap.alloc(100)
        b = heap.alloc(100)
        assert a >= 0x1000
        assert b >= a + 100
        assert heap.live_bytes >= 200

    def test_alignment(self):
        heap = Allocator(0x1000, 0x10000, align=16)
        for size in (1, 5, 17, 100):
            assert heap.alloc(size) % 16 == 0

    def test_free_and_reuse(self):
        heap = Allocator(0x1000, 0x1000)
        a = heap.alloc(256)
        heap.free(a)
        b = heap.alloc(256)
        assert b == a  # first fit reuses the hole

    def test_coalescing(self):
        heap = Allocator(0x1000, 0x1000)
        a = heap.alloc(256)
        b = heap.alloc(256)
        c = heap.alloc(256)
        heap.free(a)
        heap.free(b)  # coalesces with a's hole
        big = heap.alloc(512)
        assert big == a
        heap.free(c)
        heap.free(big)

    def test_double_free_rejected(self):
        heap = Allocator(0x1000, 0x1000)
        a = heap.alloc(64)
        heap.free(a)
        with pytest.raises(ValueError):
            heap.free(a)

    def test_free_null_is_noop(self):
        heap = Allocator(0x1000, 0x1000)
        heap.free(0)

    def test_oom(self):
        heap = Allocator(0x1000, 256)
        with pytest.raises(OutOfMemoryError):
            heap.alloc(1024)

    def test_zero_size_allocates_minimum(self):
        heap = Allocator(0x1000, 0x1000)
        a = heap.alloc(0)
        assert heap.size_of(a) is not None

    def test_peak_tracking(self):
        heap = Allocator(0x1000, 0x10000)
        a = heap.alloc(1000)
        peak = heap.peak_bytes
        heap.free(a)
        heap.alloc(100)
        assert heap.peak_bytes == peak

    def test_owns(self):
        heap = Allocator(0x1000, 0x1000)
        assert heap.owns(0x1000)
        assert heap.owns(0x1FFF)
        assert not heap.owns(0x2000)
        assert not heap.owns(0x0FFF)


class TestDeterminismAndState:
    def test_two_allocators_agree(self):
        """Mobile and server UVA allocators must produce identical
        addresses for identical request sequences."""
        a = Allocator(0x4000_0000, 1 << 20)
        b = Allocator(0x4000_0000, 1 << 20)
        addrs_a, addrs_b = [], []
        for size in (64, 128, 8, 4096, 33):
            addrs_a.append(a.alloc(size))
            addrs_b.append(b.alloc(size))
        assert addrs_a == addrs_b

    def test_snapshot_restore_roundtrip(self):
        a = Allocator(0x1000, 1 << 16)
        ptrs = [a.alloc(s) for s in (64, 128, 256)]
        a.free(ptrs[1])
        state = a.snapshot()
        b = Allocator(0x1000, 1 << 16)
        b.restore(state)
        # both now continue identically
        assert a.alloc(50) == b.alloc(50)
        assert a.alloc(128) == b.alloc(128)

    def test_restore_geometry_mismatch_rejected(self):
        a = Allocator(0x1000, 1 << 16)
        b = Allocator(0x2000, 1 << 16)
        with pytest.raises(ValueError):
            b.restore(a.snapshot())


@given(st.lists(st.one_of(
    st.tuples(st.just("alloc"), st.integers(1, 4096)),
    st.tuples(st.just("free"), st.integers(0, 30))),
    min_size=1, max_size=120))
@settings(max_examples=80, deadline=None)
def test_no_live_allocation_overlaps(ops):
    """Property: live allocations never overlap, never escape the arena,
    and accounting stays consistent."""
    heap = Allocator(0x1000, 1 << 20)
    live = []
    for op, value in ops:
        if op == "alloc":
            addr = heap.alloc(value)
            assert 0x1000 <= addr
            assert addr + value <= 0x1000 + (1 << 20)
            live.append((addr, heap.size_of(addr)))
        elif live:
            addr, _ = live.pop(value % len(live))
            heap.free(addr)
    intervals = sorted(live)
    for (a1, s1), (a2, _) in zip(intervals, intervals[1:]):
        assert a1 + s1 <= a2, "allocations overlap"
    assert heap.live_bytes == sum(s for _, s in live)
