"""Tests for the repro.trace observability subsystem.

Covers the tracer/metrics primitives, the JSONL and Chrome exports, the
runtime instrumentation (event ordering, category coverage, the
tracing-disabled no-op invariant), and the reconciliation tests that make
the trace the single source of truth for the session's time and byte
accounting (including the chess workload of the paper's running example).
"""

import json

import pytest

from repro.eval.runner import run_program
from repro.runtime import SessionOptions
from repro.runtime.comm import (MESSAGE_HEADER_BYTES, PER_ITEM_HEADER_BYTES)
from repro.trace import (CATEGORIES, CORE_CATEGORIES, NULL_TRACER,
                         Histogram, MetricsRegistry, TraceEvent, Tracer,
                         events_from_jsonl, events_to_chrome_json,
                         events_to_jsonl, phase_totals, render_metrics,
                         render_timeline, traffic_totals)
from repro.workloads import workload

from conftest import HOT_KERNEL_SRC, HOT_KERNEL_STDIN, offload_c

TRACED = SessionOptions(enable_tracing=True)

# A program whose offloaded target reads a file: remote *input* I/O
# exercises the pipelined comm.adjust path.
REMOTE_INPUT_SRC = r"""
int *data;
int kernel(int n, void *f) {
    char line[32];
    int i, acc = 0;
    while (fgets(line, 32, f)) acc += atoi(line);
    for (i = 0; i < n; i++) acc += data[i % 64] * i;
    printf("acc %d\n", acc);
    return acc;
}
int main() {
    int i, n;
    void *f;
    scanf("%d", &n);
    data = (int*) malloc(64 * sizeof(int));
    for (i = 0; i < 64; i++) data[i] = i;
    f = fopen("nums.txt", "r");
    if (!f) return 1;
    printf("%d\n", kernel(n, f));
    fclose(f);
    return 0;
}
"""
REMOTE_INPUT_FILES = {"nums.txt": b"1\n2\n3\n4\n"}


@pytest.fixture(scope="module")
def traced_kernel():
    """One traced hot-kernel offload: (local, result, program)."""
    return offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
                     session_options=SessionOptions(enable_tracing=True))


@pytest.fixture(scope="module")
def chess_traced():
    """The paper's chess running example, traced on the fast network."""
    result = run_program(workload("chess"), labels=("fast",),
                         session_options=SessionOptions(
                             enable_tracing=True))
    return result.sessions["fast"]


# ---------------------------------------------------------------------------
# Tracer / metrics primitives
# ---------------------------------------------------------------------------
class TestTracer:
    def test_timestamps_clamped_monotonic(self):
        times = iter([0.5, 0.2, 0.7, 0.7])
        tracer = Tracer(clock=lambda: next(times))
        for _ in range(4):
            tracer.emit("decision", "x")
        stamps = [e.t for e in tracer.events()]
        assert stamps == [0.5, 0.5, 0.7, 0.7]
        assert [e.seq for e in tracer.events()] == [0, 1, 2, 3]

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for i in range(6):
            tracer.emit("decision", f"e{i}")
        assert len(tracer) == 4
        assert tracer.dropped == 2
        assert [e.name for e in tracer.events()] == ["e2", "e3", "e4", "e5"]

    def test_explicit_timestamp_and_filtering(self):
        tracer = Tracer()
        tracer.emit("decision", "a", t=1.0)
        tracer.emit("comm.send", "b", t=2.0)
        assert [e.name for e in tracer.events("comm.send")] == ["b"]
        assert tracer.categories() == ["comm.send", "decision"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_null_tracer_records_nothing(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit("decision", "x") is None
        assert len(NULL_TRACER) == 0
        NULL_TRACER.metrics.counter("leak").inc(5)
        assert len(NULL_TRACER.metrics.names()) == 0


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.5)
        reg.gauge("b").set(7)
        for v in (1.0, 3.0):
            reg.histogram("h").observe(v)
        assert reg.value("a") == 3.5
        assert reg.value("b") == 7.0
        hist = reg.get("h")
        assert (hist.count, hist.total, hist.min, hist.max,
                hist.mean) == (2, 4.0, 1.0, 3.0, 2.0)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.histogram("h").observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["n"] == {"kind": "counter", "value": 3}
        assert snap["h"]["count"] == 1

    def test_render_metrics_lists_every_name(self):
        reg = MetricsRegistry()
        reg.counter("comm.messages").inc(4)
        reg.histogram("uva.fault_seconds").observe(0.25)
        text = render_metrics(reg)
        assert "comm.messages" in text and "uva.fault_seconds" in text


class TestHistogramPercentiles:
    """The log-bucketed distribution behind the fleet aggregation
    (docs/observability.md, "Distributions")."""

    def test_empty_histogram(self):
        h = Histogram("h")
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.percentile(q) == 0.0
        assert h.zeros == 0 and h.buckets == {}

    def test_single_sample_is_exact(self):
        h = Histogram("h")
        h.observe(0.125)
        # clamping to [min, max] makes single-sample queries exact even
        # though the bucket bound overshoots
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 0.125

    def test_zero_and_negative_observations(self):
        h = Histogram("h")
        for v in (0.0, 0.0, 0.0, 5.0):
            h.observe(v)
        assert h.zeros == 3
        assert h.percentile(0.5) == 0.0
        assert h.percentile(1.0) == 5.0
        neg = Histogram("n")
        neg.observe(-2.0)
        assert neg.percentile(0.5) == -2.0

    def test_percentile_within_bucket_error(self):
        # nearest-rank via log buckets: the estimate is within one
        # bucket growth factor of the true sample value
        import math

        from repro.trace.metrics import LOG_BUCKET_GROWTH
        h = Histogram("h")
        values = [1e-6 * (1.17 ** i) for i in range(200)]
        for v in values:
            h.observe(v)
        ordered = sorted(values)
        for q in (0.5, 0.95, 0.99):
            true = ordered[max(1, math.ceil(q * len(ordered))) - 1]
            est = h.percentile(q)
            assert est <= true * LOG_BUCKET_GROWTH * 1.0001
            assert est >= true / (LOG_BUCKET_GROWTH * 1.0001)

    def test_order_independent(self):
        a, b = Histogram("a"), Histogram("b")
        values = [0.3, 7.0, 0.001, 2.0, 0.0, 11.0]
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        for q in (0.25, 0.5, 0.9, 0.99):
            assert a.percentile(q) == b.percentile(q)

    def test_cross_device_merge_equals_single_stream(self):
        dev_a, dev_b, combined = (Histogram("a"), Histogram("b"),
                                  Histogram("c"))
        stream_a = [0.001, 0.5, 0.0, 3.0]
        stream_b = [0.02, 0.02, 9.0]
        for v in stream_a:
            dev_a.observe(v)
            combined.observe(v)
        for v in stream_b:
            dev_b.observe(v)
            combined.observe(v)
        merged = dev_a.merge(dev_b)
        assert merged is dev_a
        assert merged.count == combined.count
        # summation order differs (per-stream subtotal vs interleaved)
        assert merged.total == pytest.approx(combined.total)
        assert merged.zeros == combined.zeros
        assert merged.min == combined.min
        assert merged.max == combined.max
        assert merged.buckets == combined.buckets
        for q in (0.1, 0.5, 0.95, 0.99):
            assert merged.percentile(q) == combined.percentile(q)

    def test_merge_with_empty_keeps_bounds(self):
        h = Histogram("h")
        h.observe(2.0)
        h.merge(Histogram("empty"))
        assert (h.count, h.min, h.max) == (1, 2.0, 2.0)

    def test_snapshot_carries_percentiles(self):
        reg = MetricsRegistry()
        for v in (0.1, 0.2, 0.4):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()["h"]
        assert set(("p50", "p95", "p99")) <= set(snap)
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------
class TestExport:
    def test_jsonl_round_trip(self):
        tracer = Tracer()
        tracer.emit("comm.send", "to_server", t=0.25, dur=1e-3,
                    payload_bytes=4096, wire_bytes=4160)
        tracer.emit("decision", "crunch", t=0.5, offloaded=True,
                    reason="positive_gain")
        events = tracer.events()
        assert events_from_jsonl(events_to_jsonl(events)) == events

    def test_jsonl_skips_blank_and_comment_lines(self):
        text = "\n# header\n" + events_to_jsonl(
            [TraceEvent(t=0.0, seq=0, category="decision", name="x")])
        assert len(events_from_jsonl(text)) == 1

    def test_chrome_export_shape(self):
        tracer = Tracer()
        tracer.emit("offload.exec", "crunch", t=1.0, dur=0.5, cod_faults=2)
        tracer.emit("decision", "crunch", t=2.0, offloaded=True)
        records = json.loads(events_to_chrome_json(tracer.events()))
        named = [r for r in records if r.get("ph") in ("X", "i")]
        assert len(named) == 2
        slice_, instant = named
        assert slice_["ph"] == "X" and slice_["ts"] == 1e6
        assert slice_["dur"] == 0.5e6
        assert instant["ph"] == "i"
        assert any(r["ph"] == "M" and r["name"] == "process_name"
                   for r in records)

    def test_file_round_trip(self, tmp_path):
        from repro.trace import load_jsonl, write_jsonl
        tracer = Tracer()
        tracer.emit("uva.fault", "page-0x100", t=0.1, dur=1e-4,
                    page=256, bytes=4096)
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(tracer.events(), path) == 1
        assert load_jsonl(path) == tracer.events()


# ---------------------------------------------------------------------------
# Runtime instrumentation
# ---------------------------------------------------------------------------
class TestSessionTracing:
    def test_disabled_tracer_adds_no_events(self):
        before = len(NULL_TRACER)
        local, result, _ = offload_c(HOT_KERNEL_SRC,
                                     stdin=HOT_KERNEL_STDIN)
        assert result.trace is None
        assert result.trace_events() == []
        assert len(NULL_TRACER) == before == 0
        assert len(NULL_TRACER.metrics.names()) == 0

    def test_tracing_does_not_change_results(self, traced_kernel):
        _, traced, _ = traced_kernel
        _, untraced, _ = offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN)
        assert traced.total_seconds == untraced.total_seconds
        assert traced.energy_mj == untraced.energy_mj
        assert traced.bytes_to_server == untraced.bytes_to_server
        assert traced.bytes_to_mobile == untraced.bytes_to_mobile
        assert traced.breakdown() == untraced.breakdown()

    def test_event_times_monotonic(self, traced_kernel):
        _, result, _ = traced_kernel
        events = result.trace_events()
        assert len(events) > 0
        assert all(a.t <= b.t for a, b in zip(events, events[1:]))
        assert all(a.seq < b.seq for a, b in zip(events, events[1:]))

    def test_only_documented_categories(self, traced_kernel):
        _, result, _ = traced_kernel
        assert set(result.trace.categories()) <= set(CATEGORIES)

    def test_core_categories_present(self, traced_kernel):
        _, result, _ = traced_kernel
        missing = set(CORE_CATEGORIES) - set(result.trace.categories())
        # uva.writeback needs dirty pages; the hot kernel writes none.
        assert missing <= {"uva.writeback"}

    def test_phase_totals_match_breakdown(self, traced_kernel):
        _, result, _ = traced_kernel
        derived = phase_totals(result.trace_events())
        for key, value in result.breakdown().items():
            assert derived[key] == pytest.approx(value, abs=1e-9), key

    def test_decision_and_metrics(self, traced_kernel):
        _, result, _ = traced_kernel
        decisions = result.trace.events("decision")
        assert len(decisions) == len(result.invocations)
        offloaded = [e for e in decisions if e.payload["offloaded"]]
        assert len(offloaded) == result.offloaded_invocations
        metrics = result.trace.metrics
        assert metrics.value("decisions.total") == len(decisions)
        assert metrics.value("offload.invocations") == \
            result.offloaded_invocations

    def test_timeline_renders_every_event(self, traced_kernel):
        _, result, _ = traced_kernel
        events = result.trace_events()
        text = render_timeline(events)
        assert len(text.splitlines()) == len(events)
        tail = render_timeline(events, tail=3)
        assert len(tail.splitlines()) == 4  # 3 + elision marker

    def test_cod_faults_and_round_trips_traced(self):
        options = SessionOptions(enable_tracing=True,
                                 enable_prefetch=False)
        _, result, _ = offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
                                 session_options=options)
        faults = result.trace.events("uva.fault")
        assert result.cod_faults > 0
        assert len(faults) == result.cod_faults
        assert len(result.trace.events("comm.rtt")) >= len(faults)
        assert result.trace.metrics.value("uva.cod_faults") == \
            result.cod_faults
        derived = phase_totals(result.trace_events())
        for key, value in result.breakdown().items():
            assert derived[key] == pytest.approx(value, abs=1e-9), key

    def test_remote_input_adjustments_traced(self):
        _, result, program = offload_c(
            REMOTE_INPUT_SRC, stdin=b"5000\n",
            files=dict(REMOTE_INPUT_FILES),
            session_options=SessionOptions(enable_tracing=True))
        assert program.remote_io_sites > 0
        assert result.remote_io_seconds > 0
        assert len(result.trace.events("comm.adjust")) > 0
        assert len(result.trace.events("rio.op")) > 0
        derived = phase_totals(result.trace_events())
        for key, value in result.breakdown().items():
            assert derived[key] == pytest.approx(value, abs=1e-9), key


# ---------------------------------------------------------------------------
# The chess acceptance run (paper's running example)
# ---------------------------------------------------------------------------
class TestChessTrace:
    def test_all_expected_categories_present(self, chess_traced):
        observed = set(chess_traced.trace.categories())
        expected = set(CORE_CATEGORIES) | {
            "uva.writeback", "comm.stream", "rio.op", "fnptr.window"}
        assert expected <= observed
        assert observed <= set(CATEGORIES)

    def test_jsonl_round_trips(self, chess_traced):
        events = chess_traced.trace_events()
        assert chess_traced.trace.dropped == 0
        round_tripped = events_from_jsonl(events_to_jsonl(events))
        assert round_tripped == events

    def test_phase_totals_match_breakdown(self, chess_traced):
        derived = phase_totals(chess_traced.trace_events())
        for key, value in chess_traced.breakdown().items():
            assert derived[key] == pytest.approx(value, abs=1e-9), key

    def test_fnptr_windows_cover_all_lookup_time(self, chess_traced):
        windows = chess_traced.trace.events("fnptr.window")
        assert windows, "chess dispatches through its evaluation table"
        assert sum(w.payload["seconds"] for w in windows) == \
            pytest.approx(chess_traced.fnptr_seconds, abs=1e-12)


# ---------------------------------------------------------------------------
# Byte-accounting reconciliation (the stats audit regression tests)
# ---------------------------------------------------------------------------
class TestTrafficReconciliation:
    """The audit of CommStats / UVAStats / InvocationRecord byte counters.

    Write-back (and prefetch, and CoD) bytes are surfaced twice — once in
    ``UVAStats`` and once inside ``CommStats``'s payload totals — because
    the UVA numbers *attribute* subsets of the comm-layer traffic; they
    are not additional bytes.  These tests pin that relationship down via
    the trace: summing comm-layer events reproduces ``CommStats`` and
    ``SessionResult`` exactly (no double-counting on the wire), and every
    UVA-layer byte is bounded by the comm-layer direction it rode.
    """

    def test_comm_payload_totals_match_session(self, chess_traced):
        totals = traffic_totals(chess_traced.trace_events())
        assert totals["payload_bytes_to_server"] == \
            chess_traced.bytes_to_server
        assert totals["payload_bytes_to_mobile"] == \
            chess_traced.bytes_to_mobile

    def test_invocation_records_sum_to_comm_totals(self, chess_traced):
        assert sum(r.bytes_to_server
                   for r in chess_traced.invocations) == \
            chess_traced.bytes_to_server
        assert sum(r.bytes_to_mobile
                   for r in chess_traced.invocations) == \
            chess_traced.bytes_to_mobile

    def test_uva_bytes_are_attribution_not_additional(self, chess_traced):
        totals = traffic_totals(chess_traced.trace_events())
        # write-back pages ride server->mobile messages
        assert 0 < totals["uva_writeback_bytes"] <= \
            totals["payload_bytes_to_mobile"]
        # prefetched pages ride mobile->server messages
        assert 0 < totals["uva_prefetch_bytes"] <= \
            totals["payload_bytes_to_server"]

    def test_wire_framing_identity_per_message(self, chess_traced):
        """wire = payload - compression_saved + headers, per send event."""
        for event in chess_traced.trace.events("comm.send"):
            p = event.payload
            expected = (p["payload_bytes"] - p["saved_bytes"]
                        + MESSAGE_HEADER_BYTES * p["messages"]
                        + PER_ITEM_HEADER_BYTES * p["items"])
            assert p["wire_bytes"] == expected
        for event in chess_traced.trace.events("comm.stream"):
            p = event.payload
            header = (PER_ITEM_HEADER_BYTES if p["pipelined"]
                      else MESSAGE_HEADER_BYTES)
            assert p["wire_bytes"] == p["payload_bytes"] + header

    def test_metrics_agree_with_comm_events(self, chess_traced):
        totals = traffic_totals(chess_traced.trace_events())
        metrics = chess_traced.trace.metrics
        assert metrics.value("comm.payload_bytes_to_server") == \
            totals["payload_bytes_to_server"]
        assert metrics.value("comm.payload_bytes_to_mobile") == \
            totals["payload_bytes_to_mobile"]
        assert metrics.value("comm.wire_bytes_to_server") == \
            totals["wire_bytes_to_server"]
        assert metrics.value("comm.wire_bytes_to_mobile") == \
            totals["wire_bytes_to_mobile"]
        assert metrics.value("comm.compression_saved_bytes") == \
            chess_traced.compression_saved_bytes
