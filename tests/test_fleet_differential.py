"""Differential and event-ordering tests for the event-driven fleet
core (docs/fleet.md, "Lockstep vs event-driven").

The event-driven :class:`~repro.fleet.scheduler.FleetScheduler` must be
byte-identical to the retained :class:`~repro.fleet.lockstep.
LockstepFleetScheduler` — same merged trace, same FleetResult, same
summary JSON — for the same seed.  This file holds the two engines to
that contract on fleets of 1, 2 and 8 devices (the ISSUE 6 acceptance
criterion), and covers the event-ordering edge cases: simultaneous
arrivals, admission-vs-completion ties at one timestamp, and the
degenerate empty-fleet / single-event runs.
"""

from __future__ import annotations

import dataclasses
import json
import math
import warnings

import pytest

from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import FAST_WIFI, FaultPlan, SessionOptions
from repro.fleet import (ADMISSION_REQUEST, COMPLETION, DeviceSpec,
                         DeviceState, EventQueue, FleetScheduler,
                         LockstepFleetScheduler, PoolOptions, SeedFanout,
                         ServerPool, arrival_offsets, make_scheduler)
from repro.fleet.events import TRANSITIONS
from repro.fleet.replay import run_segment
from repro.fleet.scheduler import _DeviceProcess
from repro.trace.export import events_to_jsonl

# The hot kernel of tests/test_fleet.py, on a smaller input so a full
# session stays under a second — the differential runs many of them.
MULTI_SRC = r"""
int *data;
int n;

int crunch(void) {
    int i, r, acc = 0;
    for (r = 0; r < 40; r++) {
        for (i = 0; i < n; i++) {
            acc += (data[i] * 31 + r) ^ (acc >> 3);
        }
    }
    return acc;
}

int main() {
    int i, k;
    scanf("%d", &n);
    data = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    for (k = 0; k < 3; k++) printf("crunched %d\n", crunch());
    return 0;
}
"""
STDIN = b"150\n"


@pytest.fixture(scope="module")
def program():
    module = compile_c(MULTI_SRC, "fleet-diff")
    profile = profile_module(module, stdin=STDIN)
    return NativeOffloaderCompiler(
        CompilerOptions(forced_targets=["crunch"])).compile(
            module, profile)


def _specs(program, devices, seed=7, tracing=True, faults=False,
           arrival="poisson", spacing=0.002):
    """Same-seed device list: both engines get byte-equal inputs."""
    fan = SeedFanout(seed)
    offsets = arrival_offsets(arrival, devices, spacing,
                              fan.rng("arrivals"))
    specs = []
    for i in range(devices):
        plan = (FaultPlan(seed=fan.seed("fault", i), drop_rate=0.05,
                          max_jitter_s=0.0005) if faults else None)
        specs.append(DeviceSpec(
            device_id=f"dev{i:02d}", program=program, network=FAST_WIFI,
            stdin=STDIN, start_offset_s=offsets[i],
            options=SessionOptions(enable_tracing=tracing,
                                   fault_plan=plan)))
    return specs


def _pool():
    # Contended: 2 servers x 1 slot with a short queue, so admissions
    # queue and (at 8 devices) get refused — every outcome kind flows
    # through both engines.
    return ServerPool(PoolOptions(servers=2, capacity=1, queue_limit=2))


def _fingerprint(result):
    """Every observable of a fleet run, serialized: the summary JSON,
    the merged trace JSONL, and the per-device results (trace objects
    excluded — they are compared through the merged JSONL)."""
    devices = [
        {
            "device_id": d.device_id,
            "index": d.index,
            "start_offset_s": d.start_offset_s,
            "priority": d.priority,
            "completion_s": d.completion_s,
            "result": dataclasses.asdict(dataclasses.replace(
                d.result, trace=None, power_trace=None,
                transport_stats=None, uva_stats=None)),
            "transport": repr(d.result.transport_stats),
            "uva": repr(d.result.uva_stats),
        }
        for d in result.devices
    ]
    return (json.dumps(result.summary(), sort_keys=False),
            events_to_jsonl(result.merged_events()),
            json.dumps(devices, sort_keys=False, default=repr))


def _both(program, devices, **kw):
    event = FleetScheduler(_specs(program, devices, **kw), _pool()).run()
    lockstep = LockstepFleetScheduler(_specs(program, devices, **kw),
                                      _pool()).run()
    return event, lockstep


class TestDifferential:
    """Event-driven vs lockstep: byte-identical, same seed."""

    @pytest.mark.parametrize("devices", [1, 2, 8])
    def test_byte_identity(self, program, devices):
        event, lockstep = _both(program, devices)
        assert _fingerprint(event) == _fingerprint(lockstep)

    def test_byte_identity_with_faults(self, program):
        event, lockstep = _both(program, 2, faults=True)
        assert _fingerprint(event) == _fingerprint(lockstep)

    def test_byte_identity_untraced(self, program):
        # No tracing: the event core shares finished segments across
        # identical devices; observables must not change.
        event, lockstep = _both(program, 4, tracing=False,
                                arrival="uniform")
        assert _fingerprint(event) == _fingerprint(lockstep)

    def test_make_scheduler_selects_engine(self, program):
        specs = _specs(program, 1)
        assert isinstance(make_scheduler(specs, _pool()),
                          FleetScheduler)
        assert isinstance(make_scheduler(specs, _pool(),
                                         engine="lockstep"),
                          LockstepFleetScheduler)
        with pytest.raises(ValueError, match="unknown scheduler engine"):
            make_scheduler(specs, _pool(), engine="threads")


class TestEngineByteIdentity:
    """Explicit ``engine="fifo"`` on a homogeneous pool is byte-identical
    to the default pool (ISSUE 7 acceptance): the placement layer is a
    pure refactor of the historical admission loop, held to the same
    fingerprint across traced, faulted and untraced fleets, on both
    execution engines."""

    @pytest.mark.parametrize("kw", [
        {"devices": 2},
        {"devices": 2, "faults": True},
        {"devices": 4, "tracing": False, "arrival": "uniform"},
    ], ids=["traced", "faulted", "untraced"])
    def test_fifo_matches_default(self, program, kw):
        kw = dict(kw)
        devices = kw.pop("devices")

        def fifo_pool():
            return ServerPool(PoolOptions(servers=2, capacity=1,
                                          queue_limit=2), engine="fifo")

        default = FleetScheduler(_specs(program, devices, **kw),
                                 _pool()).run()
        explicit = FleetScheduler(_specs(program, devices, **kw),
                                  fifo_pool()).run()
        lockstep = LockstepFleetScheduler(_specs(program, devices, **kw),
                                          fifo_pool()).run()
        assert _fingerprint(default) == _fingerprint(explicit)
        assert _fingerprint(explicit) == _fingerprint(lockstep)


class TestLockstepDeprecation:
    """Selecting the lockstep engine warns exactly once per process
    (ISSUE 7 satellite)."""

    def test_warning_fires_exactly_once(self, program, monkeypatch):
        from repro.fleet import scheduler as scheduler_module
        monkeypatch.setattr(scheduler_module, "_LOCKSTEP_WARNED", False)
        specs = _specs(program, 1)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            make_scheduler(specs, _pool(), engine="lockstep")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            make_scheduler(specs, _pool(), engine="lockstep")
        assert [w for w in caught
                if issubclass(w.category, DeprecationWarning)] == []


class TestEventOrdering:
    """Simultaneous events resolve by (time, device index) — and ties
    never change observables."""

    def test_simultaneous_arrivals_burst(self, program):
        # Everyone at t=0: arrivals tie, first requests tie, and (for
        # identical devices) completions tie.  Still byte-identical.
        event, lockstep = _both(program, 4, arrival="burst")
        assert _fingerprint(event) == _fingerprint(lockstep)
        # The pool must have seen requests in device-index order: with
        # identical devices and FIFO tie-break, the first admissions
        # land on servers 0, 1 in that order.
        first = [d.result.invocations[0] for d in event.devices]
        assert first[0].server_id == 0
        assert first[1].server_id == 1

    def test_admission_vs_completion_tie(self, program):
        # Engineer an exact-timestamp collision: device 1's first
        # admission request at the same global instant device 0's
        # program completes.
        solo = FleetScheduler(
            [DeviceSpec(device_id="probe", program=program,
                        network=FAST_WIFI, stdin=STDIN,
                        options=SessionOptions(enable_tracing=True))],
            ServerPool(PoolOptions(servers=1, capacity=1))).run()
        completion = solo.devices[0].completion_s
        # Session-local time of the first admission request, recovered
        # exactly the way the scheduler itself does: a scripted replay
        # with the empty script stops at the first request.
        probe = run_segment(
            DeviceSpec(device_id="probe", program=program,
                       network=FAST_WIFI, stdin=STDIN), ())
        assert not probe.done
        req_t = probe.local_t
        # Float-exact collision: search a few ulps around the naive
        # offset until offset + req_t == completion.
        offset = completion - req_t
        for _ in range(128):
            if offset + req_t == completion:
                break
            offset = math.nextafter(offset, math.inf)
        assert offset + req_t == completion, "no float-exact tie found"

        def build():
            return [
                DeviceSpec(device_id="dev00", program=program,
                           network=FAST_WIFI, stdin=STDIN,
                           options=SessionOptions(enable_tracing=True)),
                DeviceSpec(device_id="dev01", program=program,
                           network=FAST_WIFI, stdin=STDIN,
                           start_offset_s=offset,
                           options=SessionOptions(enable_tracing=True)),
            ]

        event = FleetScheduler(
            build(), ServerPool(PoolOptions(servers=1, capacity=1))).run()
        lockstep = LockstepFleetScheduler(
            build(), ServerPool(PoolOptions(servers=1, capacity=1))).run()
        assert _fingerprint(event) == _fingerprint(lockstep)
        assert event.devices[0].completion_s == \
            event.devices[1].start_offset_s + req_t

    def test_event_queue_orders_ties_by_key(self):
        q = EventQueue()
        q.push(1.0, 3, COMPLETION)
        q.push(1.0, 1, ADMISSION_REQUEST)
        q.push(0.5, 7, COMPLETION)
        q.push(1.0, 1, COMPLETION)  # same (t, key): FIFO by seq
        assert q.pop() == (0.5, 7, COMPLETION)
        assert q.pop() == (1.0, 1, ADMISSION_REQUEST)
        assert q.pop() == (1.0, 1, COMPLETION)
        assert q.pop() == (1.0, 3, COMPLETION)


class TestDegenerateRuns:
    """Empty fleets and single-event devices."""

    def test_empty_fleet(self):
        result = FleetScheduler([], ServerPool(PoolOptions())).run()
        assert result.devices == []
        assert result.makespan_s == 0.0
        assert result.merged_events() == []
        summary = result.summary()
        assert summary["devices"] == 0
        assert summary["invocations"]["total"] == 0
        json.dumps(summary)  # must stay serializable

    def test_lockstep_still_requires_devices(self):
        with pytest.raises(ValueError, match="at least one device"):
            LockstepFleetScheduler([], ServerPool(PoolOptions()))

    def test_single_event_device_never_offloads(self, program):
        # force_local: the session never asks for admission, so the
        # device's whole lifecycle is ARRIVAL -> COMPLETION.
        spec = DeviceSpec(device_id="solo", program=program,
                          network=FAST_WIFI, stdin=STDIN,
                          options=SessionOptions(force_local=True))
        pool = ServerPool(PoolOptions())
        scheduler = FleetScheduler([spec], pool)
        result = scheduler.run()
        assert len(result.devices) == 1
        assert result.devices[0].result.offloaded_invocations == 0
        assert all(s.admitted == 0 and s.rejected == 0
                   for s in pool.stats)
        assert scheduler.replay.stats()["session_runs"] == 1


class TestStateMachine:
    """The explicit device lifecycle of docs/simulator.md."""

    def test_all_devices_end_complete(self, program):
        scheduler = FleetScheduler(_specs(program, 3), _pool())
        scheduler.run()
        assert all(p.state is DeviceState.COMPLETE
                   for p in scheduler._procs)

    def test_illegal_transition_rejected(self, program):
        proc = _DeviceProcess(0, _specs(program, 1)[0])
        assert proc.state is DeviceState.IDLE
        with pytest.raises(RuntimeError, match="illegal device state"):
            proc.transition(DeviceState.COMPLETE)

    def test_transition_table_is_a_dag_to_complete(self):
        # COMPLETE is terminal; IDLE is initial; every state is
        # reachable from IDLE within the documented transitions.
        sources = {a for a, _ in TRANSITIONS}
        assert DeviceState.COMPLETE not in sources
        reachable = {DeviceState.IDLE}
        frontier = [DeviceState.IDLE]
        while frontier:
            state = frontier.pop()
            for a, b in TRANSITIONS:
                if a is state and b not in reachable:
                    reachable.add(b)
                    frontier.append(b)
        assert reachable == set(DeviceState)


class TestSegmentSharing:
    """The cross-device segment cache (docs/simulator.md, "Segment
    cache") — identical untraced devices cost k+1 sessions total."""

    def test_identical_untraced_devices_share_all_segments(self, program):
        specs = [DeviceSpec(device_id=f"dev{i:02d}", program=program,
                            network=FAST_WIFI, stdin=STDIN,
                            start_offset_s=i * 0.1)
                 for i in range(6)]
        # Generous pool: zero queueing, one server -> identical
        # outcome scripts on every device.
        pool = ServerPool(PoolOptions(servers=1, capacity=8,
                                      queue_limit=8))
        scheduler = FleetScheduler(specs, pool)
        result = scheduler.run()
        stats = scheduler.replay.stats()
        # 3 offloaded invocations per device: segments for script
        # lengths 0..3 run once each, every other advance is a hit.
        assert stats["session_runs"] == 4
        assert stats["shared_hits"] == 6 * 4 - 4
        assert all(d.result.offloaded_invocations == 3
                   for d in result.devices)

    def test_traced_devices_rerun_their_final_segment(self, program):
        specs = [DeviceSpec(device_id=f"dev{i:02d}", program=program,
                            network=FAST_WIFI, stdin=STDIN,
                            start_offset_s=i * 0.1,
                            options=SessionOptions(enable_tracing=True))
                 for i in range(3)]
        pool = ServerPool(PoolOptions(servers=1, capacity=8,
                                      queue_limit=8))
        scheduler = FleetScheduler(specs, pool)
        result = scheduler.run()
        stats = scheduler.replay.stats()
        # Intermediate segments (scripts 0..2) shared; the finished
        # segment runs per device so each trace carries its own sid.
        assert stats["session_runs"] == 3 + 3
        sids = {e.sid for d in result.devices
                for e in d.result.trace.events()}
        assert sids == {"dev00", "dev01", "dev02"}
