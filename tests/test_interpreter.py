"""Tests for the IR interpreter: semantics, timing, faults."""

import pytest

from repro.frontend import compile_c
from repro.ir import (Constant, Function, FunctionType, IRBuilder, Module,
                      I1, I8, I32, I64, F64)
from repro.machine import (BadFunctionPointer, ExecutionLimitExceeded,
                           Interpreter, Machine, StackOverflow, install_libc,
                           to_signed)
from repro.targets import ARM32, X86_64, CYCLE_TIME_SCALE

from conftest import interp_for, run_c


def eval_expr(op, lhs, rhs, type_=I32):
    """Build a module computing a single binop and run it."""
    m = Module()
    fn = Function("f", FunctionType(type_, [type_, type_]), ["a", "b"])
    m.add_function(fn)
    b = IRBuilder(fn.add_block("entry"))
    b.ret(b.binop(op, fn.args[0], fn.args[1]))
    machine = Machine(ARM32)
    install_libc(machine)
    machine.load(m)
    return Interpreter(machine).call_by_name("f", [lhs, rhs])


class TestIntegerSemantics:
    def test_add_wraps(self):
        assert eval_expr("add", 0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert to_signed(eval_expr("sub", 0, 1), 32) == -1

    def test_mul_wraps(self):
        assert eval_expr("mul", 1 << 31, 2) == 0

    def test_sdiv_truncates_toward_zero(self):
        # -7 / 2 == -3 in C
        assert to_signed(eval_expr("sdiv", 0xFFFFFFF9, 2), 32) == -3

    def test_srem_sign_follows_dividend(self):
        # -7 % 2 == -1 in C
        assert to_signed(eval_expr("srem", 0xFFFFFFF9, 2), 32) == -1

    def test_udiv(self):
        assert eval_expr("udiv", 0xFFFFFFFE, 2) == 0x7FFFFFFF

    def test_shifts(self):
        assert eval_expr("shl", 1, 31) == 0x80000000
        assert eval_expr("lshr", 0x80000000, 31) == 1
        assert to_signed(eval_expr("ashr", 0x80000000, 31), 32) == -1

    def test_bitwise(self):
        assert eval_expr("and", 0b1100, 0b1010) == 0b1000
        assert eval_expr("or", 0b1100, 0b1010) == 0b1110
        assert eval_expr("xor", 0b1100, 0b1010) == 0b0110

    def test_division_by_zero_raises(self):
        from repro.machine import InterpreterError
        with pytest.raises(InterpreterError, match="zero"):
            eval_expr("sdiv", 1, 0)


class TestFloatSemantics:
    def test_fp_ops(self):
        assert eval_expr("fadd", 1.5, 2.25, F64) == 3.75
        assert eval_expr("fmul", 3.0, 0.5, F64) == 1.5
        assert eval_expr("fdiv", 1.0, 4.0, F64) == 0.25

    def test_fdiv_by_zero_gives_inf(self):
        assert eval_expr("fdiv", 1.0, 0.0, F64) == float("inf")


class TestControlFlowAndCalls:
    FIB = """
    int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    int main() { printf("%d\\n", fib(15)); return 0; }
    """

    def test_recursion(self):
        code, out = run_c(self.FIB)
        assert code == 0
        assert out.strip() == "610"

    def test_indirect_call_through_table(self):
        src = """
        typedef int (*FN)(int);
        int dbl(int x) { return 2 * x; }
        int sqr(int x) { return x * x; }
        FN table[2] = { dbl, sqr };
        int main() {
            printf("%d %d\\n", table[0](21), table[1](7));
            return 0;
        }
        """
        assert run_c(src)[1].strip() == "42 49"

    def test_bad_function_pointer_faults(self):
        interp = interp_for("""
        int main() { return 0; }
        """)
        m = interp.machine.module
        fn = Function("caller", FunctionType(I32, []), [])
        m.add_function(fn)
        interp.machine.function_addresses["caller"] = 0xDEAD0
        b = IRBuilder(fn.add_block("entry"))
        from repro.ir import Cast, ptr
        bogus = b.cast("inttoptr", b.i64(0x12345),
                       ptr(FunctionType(I32, [])))
        b.ret(b.call(bogus, []))
        with pytest.raises(BadFunctionPointer):
            interp.call_function(fn, [])

    def test_stack_overflow_detected(self):
        src = """
        int boom(int n) { int pad[200]; pad[0] = n; return boom(n + pad[0]); }
        int main() { return boom(1); }
        """
        interp = interp_for(src)
        with pytest.raises(StackOverflow):
            interp.run_main()

    def test_execution_limit(self):
        src = "int main() { while (1) {} return 0; }"
        from repro.frontend import compile_c
        module = compile_c(src, "spin")
        machine = Machine(ARM32)
        install_libc(machine)
        machine.load(module)
        interp = Interpreter(machine, max_instructions=10_000)
        with pytest.raises(ExecutionLimitExceeded):
            interp.run_main()


class TestTiming:
    def test_server_is_faster(self):
        src = """
        int main() {
            int i, acc = 0;
            for (i = 0; i < 20000; i++) acc += i ^ (acc << 1);
            printf("%d\\n", acc);
            return 0;
        }
        """
        module = compile_c(src, "t")
        times = {}
        for arch in (ARM32, X86_64):
            machine = Machine(arch, "mobile" if arch is ARM32 else "server")
            install_libc(machine)
            machine.load(module)
            interp = Interpreter(machine)
            interp.run_main()
            times[arch.name] = interp.time_seconds
        ratio = times["arm32"] / times["x86_64"]
        assert 4.0 < ratio < 8.0, f"mobile/server gap {ratio} out of band"

    def test_cycle_accounting_is_scaled(self):
        interp = interp_for("int main() { return 0; }")
        interp.charge("alu", 1)
        assert interp.cycles == pytest.approx(
            ARM32.cycles["alu"] * CYCLE_TIME_SCALE)

    def test_raw_cycles_not_scaled(self):
        interp = interp_for("int main() { return 0; }")
        interp.charge_raw_cycles(300)
        assert interp.cycles == pytest.approx(300)

    def test_instruction_count_grows(self):
        interp = interp_for(
            "int main() { int i, s = 0;"
            " for (i = 0; i < 100; i++) s += i; return s; }")
        interp.run_main()
        assert 300 < interp.instruction_count < 3000


class TestUnificationOverheadCounters:
    def test_pointer_conversion_counted_on_server(self):
        src = """
        int *p;
        int main() {
            int x = 5;
            p = &x;
            printf("%d\\n", *p);
            return 0;
        }
        """
        module = compile_c(src, "pc")
        machine = Machine(X86_64, "server")
        from repro.targets import DataLayout
        machine.set_layout(DataLayout(X86_64, pointer_bytes=4))
        install_libc(machine)
        machine.load(module)
        interp = Interpreter(machine)
        interp.run_main()
        assert machine.pointer_conversions > 0

    def test_endian_swaps_counted_for_cross_endian_layout(self):
        src = "int g; int main() { g = 7; printf(\"%d\\n\", g); return 0; }"
        module = compile_c(src, "es")
        machine = Machine(X86_64, "server")
        from repro.targets import DataLayout
        machine.set_layout(DataLayout(X86_64, byte_order="big"))
        install_libc(machine)
        machine.load(module)
        interp = Interpreter(machine)
        assert interp.run_main() == 0
        assert machine.endian_swaps > 0
        assert machine.io.stdout_text().strip() == "7"
