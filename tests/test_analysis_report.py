"""Report tests: deterministic JSON, the baseline regression gate, the
bench diff, dropped-event surfacing, and the HTML renderer
(ISSUE 5 acceptance criteria)."""

import copy
import json

import pytest

from repro.__main__ import main
from repro.runtime import FAST_WIFI, OffloadSession, SessionOptions
from repro.trace import write_jsonl
from repro.trace.analysis import (GATED_METRICS, SCHEMA, build_report,
                                  diff_bench, diff_reports, render_html,
                                  report_to_json)

from conftest import HOT_KERNEL_SRC, HOT_KERNEL_STDIN, offload_c

TRACED = SessionOptions(enable_tracing=True)


@pytest.fixture(scope="module")
def traced_pair():
    """Two independent same-input traced runs of the hot kernel."""
    _, first, program = offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
                                  session_options=TRACED)
    second = OffloadSession(program, FAST_WIFI, options=TRACED,
                            stdin=HOT_KERNEL_STDIN).run()
    return first, second


@pytest.fixture(scope="module")
def report(traced_pair):
    first, _ = traced_pair
    return build_report(first.trace.events(), source={"kind": "test"})


class TestBuildReport:
    def test_schema_and_shape(self, report):
        assert report["schema"] == SCHEMA
        assert set(report) == {"schema", "source", "events",
                               "dropped_events", "warnings", "fleet",
                               "findings"}
        fleet = report["fleet"]
        assert fleet["sessions"] == 1
        assert fleet["invocations"]["total"] >= 1
        assert report["events"] > 0
        assert report["warnings"] == []

    def test_same_seed_runs_serialize_byte_identically(self, traced_pair):
        first, second = traced_pair
        a = report_to_json(build_report(first.trace.events(),
                                        source={"kind": "test"}))
        b = report_to_json(build_report(second.trace.events(),
                                        source={"kind": "test"}))
        assert a == b
        assert a.endswith("\n")

    def test_dropped_events_surface_as_a_warning(self, traced_pair):
        first, _ = traced_pair
        r = build_report(first.trace.events(), dropped=5)
        assert r["dropped_events"] == 5
        assert any("dropped 5 events" in w for w in r["warnings"])

    def test_gated_metrics_exist_in_the_report(self, report):
        for path, _ in GATED_METRICS:
            node = report
            for part in path.split("."):
                assert part in node, f"gated metric {path} missing"
                node = node[part]
            assert isinstance(node, (int, float))


class TestDiffReports:
    def test_self_diff_is_clean(self, report):
        assert diff_reports(report, report) == []

    def test_injected_latency_regression_is_caught(self, report):
        worse = copy.deepcopy(report)
        dist = worse["fleet"]["distributions"]["invocation_seconds"]
        for key in ("mean", "p50", "p95", "p99"):
            dist[key] *= 1.2           # ≥10% latency regression
        regressions = diff_reports(report, worse, tolerance=0.10)
        metrics = {r["metric"] for r in regressions}
        assert ("fleet.distributions.invocation_seconds.p95"
                in metrics)
        assert all(r["delta"] > 0 for r in regressions)

    def test_within_tolerance_passes(self, report):
        slightly = copy.deepcopy(report)
        dist = slightly["fleet"]["distributions"]["invocation_seconds"]
        for key in ("mean", "p50", "p95", "p99"):
            dist[key] *= 1.05          # below the 10% tolerance
        assert diff_reports(report, slightly, tolerance=0.10) == []

    def test_improvement_never_regresses(self, report):
        better = copy.deepcopy(report)
        dist = better["fleet"]["distributions"]["invocation_seconds"]
        for key in ("mean", "p50", "p95", "p99"):
            dist[key] *= 0.5
        assert diff_reports(report, better) == []

    def test_ratio_metrics_compare_absolutely(self, report):
        worse = copy.deepcopy(report)
        worse["fleet"]["decline_rate"] = \
            report["fleet"]["decline_rate"] + 0.2
        regressions = diff_reports(report, worse, tolerance=0.10)
        assert any(r["metric"] == "fleet.decline_rate"
                   and r["kind"] == "abs" for r in regressions)
        # +5 percentage points is inside a 10-point tolerance
        mild = copy.deepcopy(report)
        mild["fleet"]["decline_rate"] = \
            report["fleet"]["decline_rate"] + 0.05
        assert diff_reports(report, mild, tolerance=0.10) == []


class TestDiffBench:
    BASE = {"makespan_s": 1.0, "queue": {"mean_delay_s": 0.02},
            "throughput_invocations_per_s": 100.0,
            "servers": 4, "note_count": 7}

    def test_self_diff_is_clean(self):
        assert diff_bench(self.BASE, self.BASE) == []

    def test_lower_is_better_regression(self):
        cur = copy.deepcopy(self.BASE)
        cur["makespan_s"] = 1.3
        regs = diff_bench(self.BASE, cur)
        assert [r["metric"] for r in regs] == ["makespan_s"]

    def test_nested_keys_are_walked(self):
        cur = copy.deepcopy(self.BASE)
        cur["queue"]["mean_delay_s"] = 0.05
        regs = diff_bench(self.BASE, cur)
        assert [r["metric"] for r in regs] == ["queue.mean_delay_s"]

    def test_higher_is_better_direction(self):
        cur = copy.deepcopy(self.BASE)
        cur["throughput_invocations_per_s"] = 50.0     # halved: worse
        regs = diff_bench(self.BASE, cur)
        assert [r["metric"] for r in regs] == \
            ["throughput_invocations_per_s"]
        cur["throughput_invocations_per_s"] = 200.0    # doubled: fine
        assert diff_bench(self.BASE, cur) == []

    def test_unoriented_leaves_never_gate(self):
        cur = copy.deepcopy(self.BASE)
        cur["servers"] = 400
        cur["note_count"] = 0
        assert diff_bench(self.BASE, cur) == []

    def test_repo_bench_files_self_diff_clean(self):
        import pathlib
        for path in sorted(pathlib.Path(".").glob("BENCH_*.json")):
            with open(path) as fh:
                bench = json.load(fh)
            assert diff_bench(bench, bench) == [], path


class TestRenderHtml:
    def test_deterministic_and_self_contained(self, report):
        a = render_html(report)
        assert a == render_html(report)
        assert a.startswith("<!DOCTYPE html>")
        assert "http" not in a          # no external assets
        for section in ("Invocations", "Distributions", "Critical path",
                        "SLO findings"):
            assert f"<h2>{section}</h2>" in a

    def test_warnings_render(self, traced_pair):
        first, _ = traced_pair
        r = build_report(first.trace.events(), dropped=2)
        assert "dropped 2 events" in render_html(r)


class TestReportCLI:
    def _write_report(self, traced_pair, path, dropped=0):
        first, _ = traced_pair
        report = build_report(first.trace.events(),
                              source={"kind": "test"}, dropped=dropped)
        with open(path, "w") as fh:
            fh.write(report_to_json(report))
        return report

    def test_from_jsonl_roundtrip_with_dropped_warning(
            self, traced_pair, tmp_path, capsys):
        first, _ = traced_pair
        jsonl = tmp_path / "trace.jsonl"
        out = tmp_path / "report.json"
        write_jsonl(first.trace.events(), str(jsonl), dropped=3)
        rc = main(["report", "--from-jsonl", str(jsonl),
                   "--json", str(out)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "dropped 3 events" in captured.err
        report = json.loads(out.read_text())
        assert report["dropped_events"] == 3
        assert report["source"] == {"kind": "jsonl", "path": str(jsonl)}

    def test_from_jsonl_is_deterministic(self, traced_pair, tmp_path,
                                         capsys):
        first, _ = traced_pair
        jsonl = tmp_path / "trace.jsonl"
        write_jsonl(first.trace.events(), str(jsonl))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["report", "--from-jsonl", str(jsonl),
                     "--json", str(a)]) == 0
        assert main(["report", "--from-jsonl", str(jsonl),
                     "--json", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_baseline_gate_passes_on_identical_reports(
            self, traced_pair, tmp_path, capsys):
        base = tmp_path / "base.json"
        self._write_report(traced_pair, base)
        rc = main(["report", "--baseline", str(base),
                   "--current", str(base)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "baseline gate: ok" in captured.out

    def test_baseline_gate_fails_on_injected_latency_regression(
            self, traced_pair, tmp_path, capsys):
        """The acceptance criterion: ``report --baseline`` exits
        non-zero on an injected ≥10% latency regression."""
        base = tmp_path / "base.json"
        report = self._write_report(traced_pair, base)
        worse = copy.deepcopy(report)
        dist = worse["fleet"]["distributions"]["invocation_seconds"]
        for key in ("mean", "p50", "p95", "p99"):
            dist[key] *= 1.15
        cur = tmp_path / "cur.json"
        with open(cur, "w") as fh:
            fh.write(report_to_json(worse))
        rc = main(["report", "--baseline", str(base),
                   "--current", str(cur)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in captured.err
        assert "invocation_seconds" in captured.err

    def test_current_without_baseline_is_an_error(self, tmp_path,
                                                  capsys):
        rc = main(["report", "--current", "whatever.json"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "--current requires --baseline" in captured.err

    def test_bench_pairs_gate(self, traced_pair, tmp_path, capsys):
        base = tmp_path / "base.json"
        self._write_report(traced_pair, base)
        old = tmp_path / "bench_old.json"
        new = tmp_path / "bench_new.json"
        old.write_text(json.dumps({"makespan_s": 1.0}))
        new.write_text(json.dumps({"makespan_s": 2.0}))
        rc = main(["report", "--baseline", str(base),
                   "--current", str(base),
                   "--bench", str(old), str(new)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "makespan_s" in captured.err
        rc = main(["report", "--baseline", str(base),
                   "--current", str(base),
                   "--bench", str(old), str(old)])
        capsys.readouterr()
        assert rc == 0

    def test_html_artifact(self, traced_pair, tmp_path, capsys):
        first, _ = traced_pair
        jsonl = tmp_path / "trace.jsonl"
        write_jsonl(first.trace.events(), str(jsonl))
        html = tmp_path / "report.html"
        rc = main(["report", "--from-jsonl", str(jsonl),
                   "--json", str(tmp_path / "r.json"),
                   "--html", str(html)])
        capsys.readouterr()
        assert rc == 0
        text = html.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "repro trace report" in text
