"""Tests for the UVA manager: copy-on-demand, write-back, prefetch, and
allocator synchronization."""

import pytest

from repro.machine import (Machine, UVA_HEAP_BASE, install_libc)
from repro.runtime import (CommunicationManager, FAST_WIFI, UVAManager)
from repro.targets import ARM32, X86_64


def make_pair(prefetch=True, cod=True):
    mobile = Machine(ARM32, "mobile")
    server = Machine(X86_64, "server")
    for m in (mobile, server):
        install_libc(m)
    comm = CommunicationManager(FAST_WIFI)
    uva = UVAManager(mobile, server, comm, enable_prefetch=prefetch,
                     enable_copy_on_demand=cod)
    return mobile, server, comm, uva


class TestCopyOnDemand:
    def test_fault_pulls_page_from_mobile(self):
        mobile, server, comm, uva = make_pair()
        addr = UVA_HEAP_BASE + 0x100
        mobile.map_range(addr, 8)
        mobile.memory.write(addr, b"COPYONDM")
        assert server.memory.read(addr, 8) == b"COPYONDM"
        assert uva.stats.cod_faults == 1
        assert uva.stats.cod_bytes == server.memory.page_size

    def test_fetched_page_cached(self):
        mobile, server, comm, uva = make_pair()
        addr = UVA_HEAP_BASE
        mobile.map_range(addr, 4)
        mobile.memory.write(addr, b"once")
        server.memory.read(addr, 4)
        server.memory.read(addr + 1, 2)
        assert uva.stats.cod_faults == 1  # second access hits the copy

    def test_cod_disabled_faults_hard(self):
        from repro.machine import SegmentationFault
        mobile, server, comm, uva = make_pair(cod=False)
        mobile.map_range(UVA_HEAP_BASE, 4)
        with pytest.raises(SegmentationFault):
            server.memory.read(UVA_HEAP_BASE, 4)

    def test_server_private_pages_not_shared(self):
        from repro.machine import SegmentationFault
        mobile, server, comm, uva = make_pair()
        # server stack is private: a fault there must not consult mobile
        with pytest.raises(SegmentationFault):
            server.memory.read(server.stack_top - 64, 4)

    def test_missing_mobile_page_faults(self):
        from repro.machine import SegmentationFault
        mobile, server, comm, uva = make_pair()
        with pytest.raises(SegmentationFault):
            server.memory.read(UVA_HEAP_BASE + 0x5000, 4)

    def test_cod_charges_round_trip(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(UVA_HEAP_BASE, 4)
        before = comm.stats.comm_seconds
        server.memory.read(UVA_HEAP_BASE, 4)
        assert comm.stats.comm_seconds > before
        assert uva.stats.cod_seconds > 0


class TestSynchronizeAndWriteBack:
    def test_sync_invalidates_stale_server_pages(self):
        mobile, server, comm, uva = make_pair()
        addr = UVA_HEAP_BASE
        mobile.map_range(addr, 4)
        mobile.memory.write(addr, b"new!")
        server.memory.map_page(server.memory.page_index(addr))  # stale
        uva.synchronize_page_table()
        assert server.memory.read(addr, 4) == b"new!"

    def test_write_back_applies_dirty_pages(self):
        mobile, server, comm, uva = make_pair()
        addr = UVA_HEAP_BASE + 0x40
        mobile.map_range(addr, 8)
        mobile.memory.write(addr, b"original")
        server.memory.read(addr, 8)          # CoD copy
        server.memory.clear_dirty()
        server.memory.write(addr, b"MODIFIED")
        seconds, payload = uva.write_back()
        assert seconds > 0 and payload > 0
        assert mobile.memory.read(addr, 8) == b"MODIFIED"

    def test_write_back_skips_private_pages(self):
        mobile, server, comm, uva = make_pair()
        server.map_range(server.stack_top - 4096, 64)
        server.memory.clear_dirty()
        server.memory.write(server.stack_top - 4096, b"private")
        seconds, payload = uva.write_back()
        assert payload == 0

    def test_clean_pages_not_written_back(self):
        mobile, server, comm, uva = make_pair()
        addr = UVA_HEAP_BASE
        mobile.map_range(addr, 4)
        mobile.memory.write(addr, b"same")
        server.memory.read(addr, 4)
        server.memory.clear_dirty()
        _, payload = uva.write_back()
        assert payload == 0


class TestPrefetch:
    def test_prefetch_installs_pages(self):
        mobile, server, comm, uva = make_pair()
        addr = UVA_HEAP_BASE
        mobile.map_range(addr, 4096 * 3)
        mobile.memory.write(addr, b"P0")
        pages = [mobile.memory.page_index(addr) + i for i in range(3)]
        seconds = uva.prefetch(pages)
        assert seconds > 0
        assert uva.stats.prefetched_pages == 3
        # no fault needed now
        assert server.memory.read(addr, 2) == b"P0"
        assert uva.stats.cod_faults == 0

    def test_prefetch_disabled_is_noop(self):
        mobile, server, comm, uva = make_pair(prefetch=False)
        mobile.map_range(UVA_HEAP_BASE, 4096)
        assert uva.prefetch([UVA_HEAP_BASE // 4096]) == 0.0
        assert uva.stats.prefetched_pages == 0

    def test_live_mobile_pages_covers_uva_heap(self):
        mobile, server, comm, uva = make_pair()
        mobile.map_range(UVA_HEAP_BASE, 4096 * 2)
        live = uva.live_mobile_pages()
        assert UVA_HEAP_BASE // 4096 in live
        assert UVA_HEAP_BASE // 4096 + 1 in live


class TestAllocatorSync:
    def test_push_pull_roundtrip(self):
        mobile, server, comm, uva = make_pair()
        a1 = mobile.uva_heap.alloc(100)
        uva.push_allocator_state()
        # server continues from the same heap state
        a2 = server.uva_heap.alloc(100)
        assert a2 > a1
        uva.pull_allocator_state()
        a3 = mobile.uva_heap.alloc(100)
        assert a3 > a2

    def test_page_size_mismatch_rejected(self):
        mobile = Machine(ARM32, "mobile", page_size=4096)
        server = Machine(X86_64, "server", page_size=1024)
        with pytest.raises(ValueError):
            UVAManager(mobile, server, CommunicationManager(FAST_WIFI))
