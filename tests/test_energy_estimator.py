"""Tests for the power/energy model and the dynamic performance
estimator."""

import pytest

from repro.machine import (DEFAULT_POWER_MW, EnergyMeter, PowerTrace,
                           TRANSMIT_MAX_MW)
from repro.offload.partition import OffloadTarget
from repro.profiler.profile_data import CandidateProfile, ProfileData
from repro.runtime import (DynamicPerformanceEstimator, FAST_WIFI,
                           IDEAL_NETWORK, SLOW_WIFI)


class TestPowerTrace:
    def test_energy_integration(self):
        trace = PowerTrace()
        trace.record(0.0, 1.0, "compute", 3000.0)
        trace.record(1.0, 3.0, "wait", 1350.0)
        assert trace.total_energy_mj == pytest.approx(3000 + 2 * 1350)
        assert trace.duration == 3.0

    def test_zero_length_intervals_dropped(self):
        trace = PowerTrace()
        trace.record(1.0, 1.0, "idle", 300.0)
        assert not trace.intervals

    def test_backwards_interval_rejected(self):
        trace = PowerTrace()
        with pytest.raises(ValueError):
            trace.record(2.0, 1.0, "idle", 300.0)

    def test_sampling(self):
        trace = PowerTrace()
        trace.record(0.0, 0.1, "compute", 3000.0)
        trace.record(0.1, 0.2, "wait", 1350.0)
        samples = trace.sample(0.05)
        assert samples[0] == (0.0, 3000.0)
        powers = [p for _, p in samples]
        assert 1350.0 in powers

    def test_energy_by_state(self):
        trace = PowerTrace()
        trace.record(0.0, 1.0, "compute", 3000.0)
        trace.record(1.0, 2.0, "compute", 3000.0)
        trace.record(2.0, 3.0, "receive", 2000.0)
        by_state = trace.energy_by_state()
        assert by_state["compute"] == pytest.approx(6000)
        assert by_state["receive"] == pytest.approx(2000)


class TestEnergyMeter:
    def test_default_states_from_paper(self):
        meter = EnergyMeter()
        assert meter.power_of("idle") == 300.0
        assert meter.power_of("wait") == 1350.0
        assert meter.power_of("receive") == 2000.0

    def test_transmit_power_scales_with_utilization(self):
        meter = EnergyMeter()
        low = meter.transmit_power(0.0, slow_network=False)
        high = meter.transmit_power(1.0, slow_network=False)
        assert low == DEFAULT_POWER_MW["transmit_fast"]
        assert high == TRANSMIT_MAX_MW

    def test_slow_network_transmit_floor_lower(self):
        # Figure 8(c): the slow radio draws less per unit time
        meter = EnergyMeter()
        assert meter.transmit_power(0.2, slow_network=True) < \
            meter.transmit_power(0.2, slow_network=False)

    def test_charge_accumulates(self):
        meter = EnergyMeter()
        e = meter.charge(0.0, 2.0, "wait")
        assert e == pytest.approx(2700.0)
        assert meter.total_energy_mj == pytest.approx(2700.0)

    def test_custom_power_override(self):
        meter = EnergyMeter({"compute": 1000.0})
        assert meter.power_of("compute") == 1000.0

    def test_unknown_state_rejected(self):
        with pytest.raises(KeyError):
            EnergyMeter().power_of("warp_drive")


def _profile_with(name, seconds, invocations, mem_bytes):
    prof = CandidateProfile(name, "function", name)
    prof.total_seconds = seconds
    prof.invocations = invocations
    prof.pages_touched = set(range(max(1, mem_bytes // 4096)))
    data = ProfileData(module_name="m", arch_name="arm32",
                       program_seconds=seconds,
                       candidates={name: prof})
    return data


class TestDynamicEstimator:
    def test_compute_bound_offloads_everywhere(self):
        data = _profile_with("t", 1.0, 1, 64 * 1024)
        target = OffloadTarget(1, "t", "function")
        for network in (SLOW_WIFI, FAST_WIFI, IDEAL_NETWORK):
            est = DynamicPerformanceEstimator(data, 5.8, network)
            assert est.should_offload(target)

    def test_comm_bound_declines_on_slow(self):
        # 10 ms of compute, 150 KB of state: loses on 10 MB/s (slow),
        # wins on 52.5 MB/s (fast)
        data = _profile_with("t", 0.010, 1, 150 * 1024)
        target = OffloadTarget(1, "t", "function")
        slow = DynamicPerformanceEstimator(data, 5.8, SLOW_WIFI)
        fast = DynamicPerformanceEstimator(data, 5.8, FAST_WIFI)
        assert not slow.should_offload(target)
        assert fast.should_offload(target)

    def test_observed_local_time_overrides_profile(self):
        data = _profile_with("t", 0.001, 1, 2 * 1024 * 1024)
        target = OffloadTarget(1, "t", "function")
        est = DynamicPerformanceEstimator(data, 5.8, FAST_WIFI)
        assert not est.should_offload(target)
        est.record_local_time("t", 1.0)  # observed: much heavier
        assert est.should_offload(target)

    def test_observed_traffic_overrides_profile(self):
        data = _profile_with("t", 0.050, 1, 4096)
        target = OffloadTarget(1, "t", "function")
        est = DynamicPerformanceEstimator(data, 5.8, SLOW_WIFI)
        assert est.should_offload(target)
        est.record_offload_traffic("t", 50 * 1024 * 1024)
        assert not est.should_offload(target)

    def test_decision_counters(self):
        data = _profile_with("t", 1.0, 1, 4096)
        target = OffloadTarget(1, "t", "function")
        est = DynamicPerformanceEstimator(data, 5.8, FAST_WIFI)
        est.should_offload(target)
        est.should_offload(target)
        state = est.state["t"]
        assert state.decisions == 2
        assert state.offloads == 2

    def test_gain_formula_matches_equation_one(self):
        data = _profile_with("t", 10.0, 1, 0)
        data.candidates["t"].pages_touched = set(range(
            12_000_000 // 4096))
        target = OffloadTarget(1, "t", "function")
        est = DynamicPerformanceEstimator(
            data, 5.0, SLOW_WIFI)  # 10 MB/s
        gain = est.estimate_gain(target)
        mem = data.candidates["t"].memory_bytes
        expected = 10.0 * (1 - 1 / 5.0) - 2 * mem / 10e6
        assert gain == pytest.approx(expected)
