"""Span reconstruction tests: the lossless invariant of
repro.trace.analysis.spans (ISSUE 5 satellite).

The property under test, for seeded single-session and fleet runs —
including fault schedules that force the abort/fallback path: every
emitted event is claimed by exactly one span, and per-span durations
reconcile with the ``session.end`` accounting to 1e-9
(``validate_sessions`` returns no discrepancies).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import DeviceSpec, FleetScheduler, PoolOptions, ServerPool
from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import (FAST_WIFI, FaultPlan, OffloadSession,
                           SessionOptions, run_local)
from repro.trace.analysis import (BUCKETS, aggregate_sessions,
                                  attribute_invocation, invocation_counts,
                                  reconstruct_sessions, validate_sessions)

from conftest import HOT_KERNEL_SRC, HOT_KERNEL_STDIN

# A workload touching every emission path the span state machine has to
# fold: heap prefetch + write-back, remote input (fgets round trips),
# remote output streaming, and repeat invocations so post-failure
# decline decisions appear in the same stream as the abort.
SPAN_SRC = r"""
int *data;
int kernel(int n, void *f) {
    char line[32];
    int i, acc = 0;
    while (fgets(line, 32, f)) acc += atoi(line);
    for (i = 0; i < n; i++) {
        data[i % 64] += (i ^ acc) & 0xFF;
        acc += data[i % 64] * 3;
    }
    printf("acc %d\n", acc);
    return acc;
}
int main() {
    int i, n, k, total = 0;
    void *f;
    scanf("%d", &n);
    data = (int*) malloc(64 * sizeof(int));
    for (i = 0; i < 64; i++) data[i] = i;
    for (k = 0; k < 3; k++) {
        f = fopen("nums.txt", "r");
        if (!f) return 1;
        total += kernel(n, f);
        fclose(f);
    }
    printf("total %d\n", total);
    return 0;
}
"""
SPAN_STDIN = b"1200\n"
SPAN_FILES = {"nums.txt": b"1\n2\n3\n4\n"}

_PROGRAMS = {}


def _compiled(key, source, stdin, files=None):
    """Compile + profile once per module; sessions are cheap, compiles
    are not (hypothesis runs many examples)."""
    if key not in _PROGRAMS:
        module = compile_c(source, key)
        profile = profile_module(module, stdin=stdin, files=files)
        program = NativeOffloaderCompiler(CompilerOptions()).compile(
            module, profile)
        local = run_local(module, stdin=stdin, files=files)
        _PROGRAMS[key] = (program, local)
    return _PROGRAMS[key]


def _run(key, source, stdin, files=None, **session_kwargs):
    program, local = _compiled(key, source, stdin, files)
    session_kwargs.setdefault("enable_tracing", True)
    session = OffloadSession(program, FAST_WIFI,
                             options=SessionOptions(**session_kwargs),
                             stdin=stdin,
                             files=dict(files) if files else None)
    return local, session.run()


def _assert_lossless(events, *records):
    """The invariant: reconstruct, validate, and (when SessionResult
    invocation records are supplied) agree with the runtime's own
    outcome counting."""
    sessions = reconstruct_sessions(events)
    assert validate_sessions(sessions, events) == []
    if records:
        expected = invocation_counts(r for result in records
                                     for r in result.invocations)
        agg = aggregate_sessions(sessions)
        assert agg.invocations == expected
    return sessions


class TestSingleSession:
    def test_clean_run_reconstructs_losslessly(self):
        _, res = _run("span", SPAN_SRC, SPAN_STDIN, SPAN_FILES)
        sessions = _assert_lossless(res.trace.events(), res)
        assert len(sessions) == 1
        session = sessions[0]
        assert not session.partial
        assert session.program == "span"
        assert len(session.invocations) == len(res.invocations)

    def test_statuses_mirror_invocation_records(self):
        _, res = _run("span", SPAN_SRC, SPAN_STDIN, SPAN_FILES)
        [session] = reconstruct_sessions(res.trace.events())
        for span, rec in zip(session.invocations, res.invocations):
            expected = ("offloaded" if rec.offloaded
                        else "rejected" if rec.rejected
                        else "aborted" if rec.aborted else "declined")
            assert span.status == expected
            assert span.target == rec.target

    def test_offloaded_invocation_has_the_protocol_phases(self):
        _, res = _run("span", SPAN_SRC, SPAN_STDIN, SPAN_FILES)
        [session] = reconstruct_sessions(res.trace.events())
        inv = next(i for i in session.invocations
                   if i.status == "offloaded")
        for name in ("decide", "init", "exec", "finalize"):
            assert name in inv.phases, f"missing phase {name}"
        assert inv.phases["exec"].anchor_seconds > 0.0
        assert inv.start >= session.start
        assert inv.end <= session.end

    def test_dead_link_abort_path(self):
        """disconnect_after_messages=0 guarantees an init-phase abort
        with a local fallback (tests/test_transport.py) — the hardest
        stream for the state machine (mid-abort re-estimate events)."""
        _, res = _run("span", SPAN_SRC, SPAN_STDIN, SPAN_FILES,
                      fault_plan=FaultPlan(disconnect_after_messages=0))
        assert res.aborted_invocations >= 1
        sessions = _assert_lossless(res.trace.events(), res)
        aborted = [i for s in sessions for i in s.invocations
                   if i.status == "aborted"]
        assert aborted
        assert all("fallback" in i.phases for i in aborted)
        assert aborted[0].abort_phase == "init"

    def test_hot_kernel_session(self):
        _, res = _run("hot", HOT_KERNEL_SRC, HOT_KERNEL_STDIN)
        _assert_lossless(res.trace.events(), res)


@given(seed=st.integers(0, 2**16),
       disconnect_after=st.one_of(st.none(), st.integers(0, 25)),
       drop_rate=st.sampled_from([0.0, 0.3, 0.7, 0.95]),
       jitter=st.sampled_from([0.0, 5e-4]),
       reconnect_rate=st.sampled_from([0.0, 0.5, 1.0]),
       prefetch=st.booleans())
@settings(max_examples=20, deadline=None)
def test_lossless_under_any_fault_schedule(seed, disconnect_after,
                                           drop_rate, jitter,
                                           reconnect_rate, prefetch):
    """Whatever fault schedule the transport injects — disconnects
    landing mid-init, mid-CoD, mid-finalize, retry storms, aborts with
    their mid-stream re-estimates — the span tree stays lossless and
    its durations reconcile with the session totals.  Dynamic
    estimation is off so every invocation attempts the offload path,
    maximizing protocol coverage."""
    plan = FaultPlan(seed=seed, drop_rate=drop_rate, max_jitter_s=jitter,
                     disconnect_after_messages=disconnect_after,
                     reconnect_rate=reconnect_rate)
    _, res = _run("span", SPAN_SRC, SPAN_STDIN, SPAN_FILES,
                  enable_dynamic_estimation=False,
                  enable_prefetch=prefetch, fault_plan=plan)
    _assert_lossless(res.trace.events(), res)


class TestFleetStreams:
    def _fleet(self, devices=3, fault_plans=None, capacity=1,
               queue_limit=4, trace_capacity=None):
        program, _ = _compiled("span", SPAN_SRC, SPAN_STDIN, SPAN_FILES)
        specs = []
        for i in range(devices):
            plan = fault_plans[i] if fault_plans else None
            kwargs = {"enable_tracing": True, "fault_plan": plan}
            if trace_capacity is not None:
                kwargs["trace_capacity"] = trace_capacity
            specs.append(DeviceSpec(
                device_id=f"dev{i:02d}", program=program,
                network=FAST_WIFI, stdin=SPAN_STDIN,
                files=dict(SPAN_FILES),
                start_offset_s=i * 0.01,
                options=SessionOptions(**kwargs)))
        pool = ServerPool(PoolOptions(servers=1, capacity=capacity,
                                      queue_limit=queue_limit))
        return FleetScheduler(specs, pool).run()

    def test_merged_stream_splits_back_into_per_device_sessions(self):
        result = self._fleet(devices=3)
        events = result.merged_events()
        sessions = _assert_lossless(
            events, *[d.result for d in result.devices])
        assert sorted(s.sid for s in sessions) == \
            ["dev00", "dev01", "dev02"]
        assert not any(s.partial for s in sessions)

    def test_faulty_device_amid_healthy_fleet(self):
        """One device's abort/fallback stream interleaved with two
        healthy devices on the global timeline."""
        plans = [None, FaultPlan(disconnect_after_messages=0), None]
        result = self._fleet(devices=3, fault_plans=plans)
        assert result.devices[1].result.aborted_invocations >= 1
        sessions = _assert_lossless(
            result.merged_events(),
            *[d.result for d in result.devices])
        faulty = next(s for s in sessions if s.sid == "dev01")
        assert any(i.status == "aborted" for i in faulty.invocations)

    def test_contended_pool_yields_queue_spans(self):
        result = self._fleet(devices=4, capacity=1)
        sessions = _assert_lossless(
            result.merged_events(),
            *[d.result for d in result.devices])
        queued = [i for s in sessions for i in s.invocations
                  if i.queue_seconds > 0.0]
        if any(d.result.queue_seconds > 0 for d in result.devices):
            assert queued

    def test_truncated_ring_buffer_is_partial_but_conserved(self):
        """A tiny ring buffer drops the stream's head: the session is
        flagged partial (reconciliation is unknowable), but event
        conservation still holds — nothing is double-claimed or lost."""
        result = self._fleet(devices=1, trace_capacity=16)
        tracer = result.devices[0].result.trace
        assert tracer.dropped > 0
        events = result.merged_events()
        assert len(events) == 16
        sessions = reconstruct_sessions(events)
        assert sessions[0].partial
        assert validate_sessions(sessions, events) == []


class TestCriticalPathAttribution:
    def test_buckets_are_nonnegative_and_named(self):
        _, res = _run("span", SPAN_SRC, SPAN_STDIN, SPAN_FILES)
        [session] = reconstruct_sessions(res.trace.events())
        for inv in session.invocations:
            path = attribute_invocation(inv)
            assert set(path.buckets) == set(BUCKETS)
            assert all(v >= 0.0 for v in path.buckets.values())
            assert path.dominant in BUCKETS + ("idle",)

    def test_offloaded_invocation_is_server_or_comm_bound(self):
        _, res = _run("span", SPAN_SRC, SPAN_STDIN, SPAN_FILES)
        [session] = reconstruct_sessions(res.trace.events())
        inv = next(i for i in session.invocations
                   if i.status == "offloaded")
        path = attribute_invocation(inv)
        assert path.buckets["server_compute"] > 0.0
        assert path.total_seconds > 0.0
        assert path.total_seconds == pytest.approx(
            sum(path.buckets.values()))

    def test_dead_link_books_retry_backoff_and_mobile_compute(self):
        _, res = _run("span", SPAN_SRC, SPAN_STDIN, SPAN_FILES,
                      fault_plan=FaultPlan(disconnect_after_messages=0))
        [session] = reconstruct_sessions(res.trace.events())
        inv = next(i for i in session.invocations
                   if i.status == "aborted")
        path = attribute_invocation(inv)
        # the local replay books under mobile_compute; the burned retry
        # budget under retry_backoff
        assert path.buckets["mobile_compute"] > 0.0
        assert path.buckets["retry_backoff"] > 0.0
