"""Tests for the offload compiler passes: selection, outlining, memory
unification, partitioning and server-specific optimization."""

import pytest

from repro.analysis import LoopInfo
from repro.frontend import compile_c
from repro.ir import Call, verify_module
from repro.ir import instructions as irinst
from repro.machine import Interpreter, Machine, install_libc
from repro.offload import (CompilerOptions, NativeOffloaderCompiler,
                           OFFLOAD_PREFIX, SHOULD_OFFLOAD, STUB_SUFFIX,
                           OutliningError, apply_function_pointer_mapping,
                           apply_remote_io, can_outline, outline_loop,
                           partition, reallocate_referenced_globals,
                           replace_heap_allocations, unified_data_layout,
                           unify_memory)
from repro.profiler import profile_module
from repro.targets import ARM32, X86, X86_64
from repro.runtime import run_local

from conftest import HOT_KERNEL_SRC, HOT_KERNEL_STDIN


def compiled(src):
    return compile_c(src, "m")


class TestOutlining:
    LOOP_SRC = r"""
    int total;
    int main() {
        int i;
        int n = 500;
        total = 0;
        for (i = 0; i < n; i++) {
            total += i * 3;
        }
        printf("%d\n", total);
        return 0;
    }
    """

    def test_outlined_program_is_equivalent(self):
        module = compiled(self.LOOP_SRC)
        baseline = run_local(module.clone())
        main = module.function("main")
        loop = LoopInfo(main).loops[0]
        outlined = outline_loop(module, loop, "main_loop_x")
        verify_module(module)
        after = run_local(module)
        assert after.stdout == baseline.stdout
        assert outlined.name in module.functions

    def test_call_site_created(self):
        module = compiled(self.LOOP_SRC)
        loop = LoopInfo(module.function("main")).loops[0]
        outline_loop(module, loop, "xloop")
        calls = [i for i in module.function("main").instructions()
                 if isinstance(i, Call)
                 and i.called_function is module.function("xloop")]
        assert len(calls) == 1

    def test_multi_exit_loop(self):
        src = r"""
        int main() {
            int i, s = 0;
            for (i = 0; i < 1000; i++) {
                if (i == 37) break;
                s += i;
            }
            printf("%d %d\n", i, s);
            return 0;
        }
        """
        module = compiled(src)
        baseline = run_local(module.clone())
        loop = LoopInfo(module.function("main")).loops[0]
        assert can_outline(loop) is None
        outline_loop(module, loop, "early_exit")
        verify_module(module)
        assert run_local(module).stdout == baseline.stdout == "37 666\n"

    def test_loop_with_early_return_outlines_correctly(self):
        # The `return` lands in an exit-trampoline block *outside* the
        # natural loop, so this is just another multi-exit loop.
        src = r"""
        int find(int n) {
            int i;
            for (i = 0; i < n; i++) {
                if (i * i > 50) return i;
            }
            return -1;
        }
        int main() { printf("%d\n", find(100)); return 0; }
        """
        module = compiled(src)
        baseline = run_local(module.clone())
        loop = LoopInfo(module.function("find")).loops[0]
        assert can_outline(loop) is None
        outline_loop(module, loop, "find_loop")
        verify_module(module)
        assert run_local(module).stdout == baseline.stdout == "8\n"

    def test_nested_loop_outlining(self):
        src = r"""
        int main() {
            int i, j, acc = 0;
            for (i = 0; i < 20; i++)
                for (j = 0; j < 20; j++)
                    acc += i ^ j;
            printf("%d\n", acc);
            return 0;
        }
        """
        module = compiled(src)
        baseline = run_local(module.clone())
        outer = LoopInfo(module.function("main")).top_level_loops()[0]
        outline_loop(module, outer, "nest")
        verify_module(module)
        assert run_local(module).stdout == baseline.stdout


class TestMemoryUnification:
    def test_heap_allocation_replacement(self):
        src = r"""
        int main() {
            int *p = (int*) malloc(40);
            int *q = (int*) calloc(10, 4);
            p = (int*) realloc(p, 80);
            free(p);
            free(q);
            return 0;
        }
        """
        module = compiled(src)
        replaced = replace_heap_allocations(module)
        assert replaced == 5
        names = {i.called_function.name
                 for i in module.function("main").instructions()
                 if isinstance(i, Call) and i.called_function is not None
                 and not i.called_function.is_definition}
        assert {"u_malloc", "u_calloc", "u_realloc", "u_free"} <= names
        assert "malloc" not in names

    def test_replaced_program_still_runs(self):
        module = compiled(HOT_KERNEL_SRC)
        baseline = run_local(module.clone(), stdin=HOT_KERNEL_STDIN)
        replace_heap_allocations(module)
        verify_module(module)
        assert run_local(module, stdin=HOT_KERNEL_STDIN).stdout == \
            baseline.stdout

    def test_referenced_globals_marked(self):
        src = r"""
        int used_by_target;
        int unused_global;
        int target(void) { return used_by_target * 2; }
        int main() { used_by_target = 3; unused_global = 1;
                     return target(); }
        """
        module = compiled(src)
        count = reallocate_referenced_globals(module, ["target"])
        assert count == 1
        assert module.global_("used_by_target").uva_allocated
        assert not module.global_("unused_global").uva_allocated

    def test_fn_ptr_table_global_marked(self):
        src = r"""
        typedef int (*FN)(int);
        int f(int x) { return x; }
        FN table[1] = { f };
        int target(int i) { return table[0](i); }
        int main() { return target(2); }
        """
        module = compiled(src)
        reallocate_referenced_globals(module, ["target"])
        assert module.global_("table").uva_allocated

    def test_unified_layout_metadata(self):
        src = r"""
        typedef struct { char c; double d; } S;
        S box;
        int main() { box.c = 1; box.d = 2.0; return 0; }
        """
        module = compiled(src)
        report = unify_memory(module, ARM32, X86, ["main"])
        assert "S" in report.realigned_structs
        server_layout = unified_data_layout(module, X86)
        struct = module.struct("S")
        assert server_layout.struct_layout(struct).offsets == (0, 8)

    def test_conversion_flags(self):
        module = compiled("int main() { return 0; }")
        report = unify_memory(module, ARM32, X86_64, ["main"])
        assert report.needs_pointer_conversion
        assert not report.needs_endianness_translation


class TestPartition:
    def test_stub_structure(self):
        module = compiled(HOT_KERNEL_SRC)
        result = partition(module, ["crunch"])
        mobile = result.mobile_module
        stub = mobile.function("crunch" + STUB_SUFFIX)
        assert stub.is_definition
        assert mobile.get_function(SHOULD_OFFLOAD) is not None
        assert mobile.get_function(OFFLOAD_PREFIX + "crunch") is not None
        verify_module(mobile)

    def test_call_sites_redirected(self):
        module = compiled(HOT_KERNEL_SRC)
        result = partition(module, ["crunch"])
        mobile = result.mobile_module
        main = mobile.function("main")
        crunch = mobile.function("crunch")
        stub = mobile.function("crunch" + STUB_SUFFIX)
        direct = [i for i in main.instructions()
                  if isinstance(i, Call) and i.called_function is crunch]
        via_stub = [i for i in main.instructions()
                    if isinstance(i, Call) and i.called_function is stub]
        assert not direct
        assert len(via_stub) == 1

    def test_unused_server_functions_removed(self):
        src = r"""
        int target(int x) { return x * 2; }
        int mobile_only(void) { int v; scanf("%d", &v); return v; }
        int main() { return target(mobile_only()); }
        """
        module = compiled(src)
        result = partition(module, ["target"])
        assert "mobile_only" in result.removed_server_functions
        assert "main" in result.removed_server_functions
        assert result.server_module.get_function("target") is not None

    def test_address_taken_functions_survive_pruning(self):
        src = r"""
        typedef int (*FN)(int);
        int cb(int x) { return -x; }
        FN table[1] = { cb };
        int target(int i) { return table[0](i); }
        int main() { return target(3); }
        """
        module = compiled(src)
        result = partition(module, ["target"])
        assert result.server_module.get_function("cb") is not None

    def test_target_ids_stable(self):
        module = compiled(HOT_KERNEL_SRC)
        result = partition(module, ["crunch"])
        assert result.target_by_id(1).name == "crunch"
        assert result.target_named("crunch").id == 1


class TestServerOptimizations:
    def test_remote_io_rewrites_output_calls(self):
        src = r"""
        int target(int x) { printf("%d\n", x); return x; }
        int main() { return target(1); }
        """
        module = compiled(src)
        count = apply_remote_io(module)
        assert count == 1
        assert module.get_function("r_printf") is not None
        callees = {i.called_function.name
                   for i in module.function("target").instructions()
                   if isinstance(i, Call)
                   and i.called_function is not None}
        assert "r_printf" in callees and "printf" not in callees

    def test_fn_ptr_mapping_inserted_before_indirect_calls(self):
        src = r"""
        typedef int (*FN)(int);
        int f(int x) { return x; }
        FN fp = f;
        int main() { return fp(1); }
        """
        module = compiled(src)
        count = apply_function_pointer_mapping(module)
        assert count == 1
        verify_module(module)
        names = [i.called_function.name
                 for i in module.function("main").instructions()
                 if isinstance(i, Call)
                 and i.called_function is not None]
        assert "__no_m2s_fcn_map" in names

    def test_fn_ptr_store_canonicalized(self):
        src = r"""
        typedef int (*FN)(int);
        int f(int x) { return x; }
        FN slot;
        int main() { slot = f; return 0; }
        """
        module = compiled(src)
        count = apply_function_pointer_mapping(module)
        assert count == 1
        names = [i.called_function.name
                 for i in module.function("main").instructions()
                 if isinstance(i, Call)
                 and i.called_function is not None]
        assert "__no_s2m_fcn_map" in names


class TestPipeline:
    def test_end_to_end_selection(self):
        module = compiled(HOT_KERNEL_SRC)
        profile = profile_module(module, stdin=HOT_KERNEL_STDIN)
        program = NativeOffloaderCompiler(CompilerOptions()).compile(
            module, profile)
        assert program.target_names() == ["crunch"]
        verify_module(program.mobile_module)
        verify_module(program.server_module)

    def test_forced_targets(self):
        module = compiled(HOT_KERNEL_SRC)
        profile = profile_module(module, stdin=HOT_KERNEL_STDIN)
        program = NativeOffloaderCompiler(
            CompilerOptions(forced_targets=["crunch"])).compile(
                module, profile)
        assert program.target_names() == ["crunch"]

    def test_original_module_untouched(self):
        module = compiled(HOT_KERNEL_SRC)
        before = len(module.functions)
        profile = profile_module(module, stdin=HOT_KERNEL_STDIN)
        NativeOffloaderCompiler(CompilerOptions()).compile(module, profile)
        assert len(module.functions) == before
        assert not any(g.uva_allocated for g in module.globals.values())

    def test_statistics_shape(self):
        module = compiled(HOT_KERNEL_SRC)
        profile = profile_module(module, stdin=HOT_KERNEL_STDIN)
        program = NativeOffloaderCompiler(CompilerOptions()).compile(
            module, profile)
        stats = program.statistics()
        assert stats["offloaded_functions"] <= stats["total_functions"]
        assert stats["targets"] == ["crunch"]

    def test_disable_remote_io_changes_selection(self):
        src = r"""
        int kernel(int n) {
            int i, s = 0;
            for (i = 0; i < n; i++) {
                s += i * i;
                if (i % 1000 == 0) printf("%d\n", s);
            }
            return s;
        }
        int main() { printf("%d\n", kernel(4000)); return 0; }
        """
        module = compiled(src)
        profile = profile_module(module)
        with_io = NativeOffloaderCompiler(CompilerOptions()).compile(
            module, profile)
        without = NativeOffloaderCompiler(
            CompilerOptions(enable_remote_io=False)).compile(
                module, profile)
        assert "kernel" in with_io.target_names()
        assert "kernel" not in without.target_names()
