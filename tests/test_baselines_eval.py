"""Tests for the comparison baselines and the evaluation harness."""

import pytest

from repro.baselines import (StaticPartitioner, VMOffloadEstimate,
                             can_offload_native)
from repro.eval import (TABLE5_SYSTEMS, format_table, geomean,
                        render_table2, render_table5, sparkline,
                        table2_native_ratios, table3_estimation,
                        table5_system_comparison)
from repro.frontend import compile_c
from repro.profiler import profile_module
from repro.runtime import FAST_WIFI, SLOW_WIFI

from conftest import HOT_KERNEL_SRC, HOT_KERNEL_STDIN

IRREGULAR_SRC = r"""
typedef int (*FN)(int);
int a(int x) { return x + 1; }
int b(int x) { return x * 2; }
FN table[2] = { a, b };
int *data;
int kernel(int n) {
    int i, acc = 0;
    for (i = 0; i < n; i++) acc += table[acc & 1](data[i % 128]);
    return acc;
}
int main() {
    int i;
    data = (int*) malloc(128 * sizeof(int));
    for (i = 0; i < 128; i++) data[i] = i;
    printf("%d\n", kernel(3000));
    return 0;
}
"""


class TestStaticPartitioner:
    def _partition(self, src, network=FAST_WIFI, stdin=b""):
        module = compile_c(src, "m")
        profile = profile_module(module, stdin=stdin)
        return StaticPartitioner(module, profile, network, 5.8).partition()

    def test_regular_program_partitions_to_server(self):
        result = self._partition(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN)
        assert "crunch" in result.server_functions
        assert "main" in result.mobile_functions
        assert result.predicted_speedup > 1.0

    def test_conservatism_penalizes_irregular_programs(self):
        module = compile_c(IRREGULAR_SRC, "m")
        profile = profile_module(module)
        part = StaticPartitioner(module, profile, FAST_WIFI, 5.8)
        assert part.conservatism_factor() > 1.0

    def test_indirect_call_functions_pinned(self):
        module = compile_c(IRREGULAR_SRC, "m")
        profile = profile_module(module)
        part = StaticPartitioner(module, profile, FAST_WIFI, 5.8)
        assert part._pinned_to_mobile("kernel")   # has an indirect call
        result = part.partition()
        assert "kernel" in result.mobile_functions

    def test_prediction_never_worse_than_local(self):
        result = self._partition(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN)
        assert result.predicted_seconds <= result.local_seconds

    def test_slow_network_keeps_more_on_mobile(self):
        fast = self._partition(HOT_KERNEL_SRC, FAST_WIFI,
                               HOT_KERNEL_STDIN)
        slow = self._partition(HOT_KERNEL_SRC, SLOW_WIFI,
                               HOT_KERNEL_STDIN)
        assert len(slow.server_functions) <= len(fast.server_functions)


class TestVMOffloadBaseline:
    def test_vm_route_slower_than_native_local_for_modest_kernels(self):
        est = VMOffloadEstimate(native_local_seconds=1.0)
        # 6.2x interpretation tax vs ~5.8x server gain: the VM route
        # cannot beat native local execution end-to-end.
        assert est.speedup_vs_native_local < 1.5

    def test_vm_local_pays_interpretation_tax(self):
        est = VMOffloadEstimate(native_local_seconds=2.0)
        assert est.vm_local_seconds == pytest.approx(2.0 * 6.2)

    def test_offload_helps_the_vm_app(self):
        est = VMOffloadEstimate(native_local_seconds=1.0)
        assert est.vm_offload_seconds < est.vm_local_seconds

    def test_vm_systems_cannot_offload_native(self):
        for system in TABLE5_SYSTEMS:
            if system.requires_vm:
                assert not can_offload_native(system.requires_vm)
        native = next(s for s in TABLE5_SYSTEMS
                      if s.system == "Native Offloader")
        assert can_offload_native(native.requires_vm)


class TestEvalHarness:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("xx", "y")])
        lines = text.split("\n")
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_sparkline_length(self):
        assert len(sparkline([1.0] * 10, width=60)) == 10
        assert len(sparkline(list(range(200)), width=60)) == 60

    def test_table2_data_and_render(self):
        apps = table2_native_ratios()
        assert len(apps) == 20
        text = render_table2()
        assert "Firefox" in text and "52.19%" in text

    def test_table5_has_fourteen_systems(self):
        assert len(table5_system_comparison()) == 14
        text = render_table5()
        assert "Native Offloader" in text
        assert text.count("Yes") >= 12

    def test_table3_reproduces_paper_narrative(self):
        rows = table3_estimation()
        by_name = {r.candidate: r for r in rows}
        # runGame is machine specific (scanf via getPlayerTurn)
        assert by_name["runGame"].filtered
        # getAITurn is profitable and offloadable
        assert not by_name["getAITurn"].filtered
        assert by_name["getAITurn"].t_gain > 0
        # searchMove's invocation count makes it unprofitable
        assert by_name["searchMove"].t_gain < 0
        assert by_name["searchMove"].invocations > \
            by_name["getAITurn"].invocations
