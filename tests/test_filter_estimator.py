"""Tests for the function filter and the static performance estimator —
including the paper's exact Table 3 arithmetic."""

import pytest

from repro.analysis import LoopInfo
from repro.frontend import compile_c
from repro.offload import (EstimatorParams, FunctionFilter, StaticEstimate,
                           StaticPerformanceEstimator, mbps)
from repro.profiler.profile_data import CandidateProfile


class TestFunctionFilter:
    SRC = r"""
    int pure_math(int x) { return x * x + 1; }
    int reads_user(void) { int v; scanf("%d", &v); return v; }
    int prints(int x) { printf("%d\n", x); return x; }
    int reads_file(void) {
        void *f = fopen("a.txt", "r");
        int c = f ? fgetc(f) : 0;
        if (f) fclose(f);
        return c;
    }
    int calls_scanf_transitively(void) { return reads_user() + 1; }
    int main() { return pure_math(reads_user()) + prints(1) + reads_file()
                        + calls_scanf_transitively(); }
    """

    @pytest.fixture(scope="class")
    def filt(self):
        return FunctionFilter(compile_c(self.SRC, "m"))

    def test_pure_function_offloadable(self, filt):
        assert filt.is_offloadable("pure_math")

    def test_interactive_input_machine_specific(self, filt):
        verdict = filt.verdict("reads_user")
        assert verdict.machine_specific
        assert any("scanf" in r for r in verdict.reasons)

    def test_output_remotely_executable(self, filt):
        assert filt.is_offloadable("prints")

    def test_file_input_remotely_executable(self, filt):
        assert filt.is_offloadable("reads_file")

    def test_transitive_contamination(self, filt):
        verdict = filt.verdict("calls_scanf_transitively")
        assert verdict.machine_specific
        assert any("via reads_user" in r for r in verdict.reasons)

    def test_main_contaminated(self, filt):
        assert not filt.is_offloadable("main")

    def test_remote_io_disabled_pins_output(self):
        filt = FunctionFilter(compile_c(self.SRC, "m"),
                              enable_remote_io=False)
        assert not filt.is_offloadable("prints")
        assert not filt.is_offloadable("reads_file")

    def test_unknown_external_machine_specific(self):
        src = """
        extern int mystery_syscall(int);
        int main() { return 0; }
        """
        # externs declared via prototypes:
        src = ("int mystery(int x);\n"
               "int uses(void) { return mystery(1); }\n"
               "int main() { return uses(); }")
        filt = FunctionFilter(compile_c(src, "m"))
        verdict = filt.verdict("uses")
        assert verdict.machine_specific
        assert any("unknown external" in r for r in verdict.reasons)

    def test_loop_classification_follows_callees(self):
        src = r"""
        int ask(void) { int v; scanf("%d", &v); return v; }
        int main() {
            int i, s = 0;
            for (i = 0; i < 3; i++) s += ask();
            return s;
        }
        """
        module = compile_c(src, "m")
        filt = FunctionFilter(module)
        info = LoopInfo(module.function("main"))
        verdict = filt.classify_loop(info.loops[0])
        assert verdict.machine_specific


class TestEquationOne:
    """The estimator must reproduce the paper's Table 3 numbers exactly:
    R=5, BW=80 Mbps."""

    @pytest.fixture(scope="class")
    def estimator(self):
        return StaticPerformanceEstimator(
            EstimatorParams(performance_ratio=5.0,
                            bandwidth_bytes_per_s=mbps(80)))

    def _profile(self, name, seconds, invocations, mem_mb):
        prof = CandidateProfile(name, "function", name)
        prof.total_seconds = seconds
        prof.invocations = invocations
        prof.pages_touched = set(range(int(mem_mb * 1e6 / 4096)))
        return prof

    def test_getAITurn_row(self, estimator):
        # Table 3: Exec 26.0 s, 3 invocations, 12 MB
        prof = self._profile("getAITurn", 26.0, 3, 12.0)
        prof.pages_touched = set(range(12_000_000 // 4096))
        est = estimator.estimate(prof)
        # T_ideal = 26 * (1 - 1/5) = 20.8
        assert est.t_ideal == pytest.approx(20.8, rel=1e-3)
        # T_c = 2 * 12MB / 10MB/s * 3 = 7.2 s ... with page-rounded memory
        assert est.t_comm == pytest.approx(7.2, rel=0.01)
        assert est.t_gain == pytest.approx(13.6, rel=0.01)
        assert est.profitable

    def test_for_j_row_unprofitable(self, estimator):
        # Table 3: for_j 25.0 s, 36 invocations, 12 MB -> Tg = -66.4
        prof = self._profile("for_j", 25.0, 36, 12.0)
        prof.pages_touched = set(range(12_000_000 // 4096))
        est = estimator.estimate(prof)
        assert est.t_ideal == pytest.approx(20.0, rel=1e-3)
        assert est.t_comm == pytest.approx(86.4, rel=0.01)
        assert est.t_gain == pytest.approx(-66.4, rel=0.01)
        assert not est.profitable

    def test_getPlayerTurn_row_unprofitable(self, estimator):
        # Table 3: 1.5 s, 3 invocations, 10 MB -> Tg = -4.8
        prof = self._profile("getPlayerTurn", 1.5, 3, 10.0)
        prof.pages_touched = set(range(10_000_000 // 4096))
        est = estimator.estimate(prof)
        assert est.t_gain == pytest.approx(-4.8, rel=0.01)

    def test_monotonic_in_bandwidth(self):
        prof = self._profile("x", 10.0, 1, 5.0)
        gains = []
        for bw in (10, 40, 160, 640):
            est = StaticPerformanceEstimator(
                EstimatorParams(5.0, mbps(bw))).estimate(prof)
            gains.append(est.t_gain)
        assert gains == sorted(gains)

    def test_monotonic_in_ratio(self):
        prof = self._profile("x", 10.0, 1, 1.0)
        gains = []
        for ratio in (1.5, 3, 6, 12):
            est = StaticPerformanceEstimator(
                EstimatorParams(ratio, mbps(80))).estimate(prof)
            gains.append(est.t_gain)
        assert gains == sorted(gains)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            EstimatorParams(performance_ratio=0.5,
                            bandwidth_bytes_per_s=1e6)
        with pytest.raises(ValueError):
            EstimatorParams(performance_ratio=5.0,
                            bandwidth_bytes_per_s=0)

    def test_mbps_conversion(self):
        assert mbps(80) == pytest.approx(10e6)
