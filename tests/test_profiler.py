"""Tests for the hot function/loop profiler."""

import pytest

from repro.frontend import compile_c
from repro.profiler import profile_module

SRC = r"""
int light(int x) { return x + 1; }

int heavy(int n) {
    int i, acc = 0;
    for (i = 0; i < n; i++) acc += light(acc) ^ i;
    return acc;
}

int main() {
    int t, total = 0;
    for (t = 0; t < 3; t++) total += heavy(2000);
    printf("%d\n", total);
    return 0;
}
"""


@pytest.fixture(scope="module")
def prof():
    return profile_module(compile_c(SRC, "prof"))


class TestFunctionProfiles:
    def test_invocation_counts(self, prof):
        assert prof.candidates["main"].invocations == 1
        assert prof.candidates["heavy"].invocations == 3
        assert prof.candidates["light"].invocations == 6000

    def test_inclusive_time_ordering(self, prof):
        main_t = prof.candidates["main"].total_seconds
        heavy_t = prof.candidates["heavy"].total_seconds
        light_t = prof.candidates["light"].total_seconds
        assert main_t >= heavy_t >= light_t > 0

    def test_heavy_dominates_program(self, prof):
        assert prof.coverage_of("heavy") > 0.9

    def test_program_time_positive(self, prof):
        assert prof.program_seconds > 0
        assert prof.candidates["main"].total_seconds == pytest.approx(
            prof.program_seconds, rel=0.05)


class TestLoopProfiles:
    def test_loops_discovered(self, prof):
        loops = {c.name for c in prof.loops()}
        assert any(name.startswith("heavy_for.cond") for name in loops)
        assert any(name.startswith("main_for.cond") for name in loops)

    def test_loop_invocations_count_entries_not_iterations(self, prof):
        heavy_loop = next(c for c in prof.loops()
                          if c.name.startswith("heavy_for"))
        assert heavy_loop.invocations == 3   # entered once per heavy() call

    def test_loop_time_included_in_function(self, prof):
        heavy_loop = next(c for c in prof.loops()
                          if c.name.startswith("heavy_for"))
        heavy_fn = prof.candidates["heavy"]
        assert heavy_loop.total_seconds <= heavy_fn.total_seconds * 1.001

    def test_loop_includes_callee_time(self, prof):
        heavy_loop = next(c for c in prof.loops()
                          if c.name.startswith("heavy_for"))
        light_fn = prof.candidates["light"]
        assert heavy_loop.total_seconds > light_fn.total_seconds * 0.9


class TestMemoryAttribution:
    def test_touched_pages_recorded(self, prof):
        assert prof.candidates["heavy"].memory_bytes > 0

    def test_heap_pages_attributed(self):
        src = r"""
        int *buf;
        int walk(void) {
            int i, s = 0;
            for (i = 0; i < 16384; i++) s += buf[i];
            return s;
        }
        int main() {
            int i;
            buf = (int*) malloc(16384 * sizeof(int));
            for (i = 0; i < 16384; i++) buf[i] = i;
            printf("%d\n", walk());
            return 0;
        }
        """
        prof = profile_module(compile_c(src, "mem"))
        # walk touches 64 KiB of heap -> at least 16 pages
        assert prof.candidates["walk"].memory_bytes >= 16384 * 4


class TestRecursion:
    def test_recursive_function_not_double_counted(self):
        src = r"""
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { printf("%d\n", fib(14)); return 0; }
        """
        prof = profile_module(compile_c(src, "rec"))
        fib = prof.candidates["fib"]
        assert fib.invocations > 100
        # inclusive time of the outermost activation only
        assert fib.total_seconds <= prof.program_seconds * 1.001

    def test_loop_in_recursive_function_not_double_counted(self):
        src = r"""
        int walk(int depth) {
            int i, acc = 0;
            for (i = 0; i < 10; i++) {
                acc += i;
                if (i == 5 && depth > 0) acc += walk(depth - 1);
            }
            return acc;
        }
        int main() { printf("%d\n", walk(6)); return 0; }
        """
        prof = profile_module(compile_c(src, "recloop"))
        loop = next(c for c in prof.loops()
                    if c.name.startswith("walk_for"))
        assert loop.total_seconds <= prof.program_seconds * 1.001


def test_stdout_and_exit_code_captured(prof):
    assert prof.exit_code == 0
    assert prof.stdout.strip().lstrip("-").isdigit()


def test_hottest_is_sorted(prof):
    hottest = prof.hottest(5)
    times = [c.total_seconds for c in hottest]
    assert times == sorted(times, reverse=True)
