"""Tests for the IR builder, module and verifier."""

import pytest

from repro.ir import (Br, Call, Constant, Function, FunctionType,
                      GlobalVariable, IRBuilder, Module, Ret, ScalarInit,
                      StructType, VerificationError, I1, I32, I64, F64,
                      print_module, verify_module, ptr)


def make_identity() -> Module:
    m = Module("m")
    fn = Function("id", FunctionType(I32, [I32]), ["x"])
    m.add_function(fn)
    b = IRBuilder(fn.add_block("entry"))
    b.ret(fn.args[0])
    return m


class TestModule:
    def test_add_and_lookup(self):
        m = make_identity()
        assert m.function("id").name == "id"
        assert m.get_function("nope") is None

    def test_duplicate_function_rejected(self):
        m = make_identity()
        with pytest.raises(KeyError):
            m.add_function(Function("id", FunctionType(I32, [I32])))

    def test_declare_function_idempotent(self):
        m = Module()
        a = m.declare_function("printf", FunctionType(I32, [ptr(I32)],
                                                      variadic=True))
        b = m.declare_function("printf", FunctionType(I32, [ptr(I32)],
                                                      variadic=True))
        assert a is b

    def test_clone_is_deep(self):
        m = make_identity()
        c = m.clone("copy")
        assert c.name == "copy"
        assert c.function("id") is not m.function("id")
        # mutating the clone leaves the original alone
        c.remove_function("id")
        assert m.get_function("id") is not None

    def test_globals(self):
        m = Module()
        gv = GlobalVariable("g", I32, ScalarInit(7))
        m.add_global(gv)
        assert m.global_("g") is gv
        assert gv.type == ptr(I32)
        with pytest.raises(KeyError):
            m.add_global(GlobalVariable("g", I32))


class TestBuilder:
    def test_arithmetic_types(self):
        m = Module()
        fn = Function("f", FunctionType(I32, [I32, I32]), ["a", "b"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        s = b.add(fn.args[0], fn.args[1])
        assert s.type == I32
        p = b.mul(s, b.i32(3))
        b.ret(p)
        verify_module(m)

    def test_mismatched_binop_rejected(self):
        m = Module()
        fn = Function("f", FunctionType(I32, [I32, I64]), ["a", "b"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        with pytest.raises(TypeError):
            b.add(fn.args[0], fn.args[1])

    def test_float_op_on_ints_rejected(self):
        m = Module()
        fn = Function("f", FunctionType(I32, [I32]), ["a"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        with pytest.raises(TypeError):
            b.fadd(fn.args[0], fn.args[0])

    def test_terminator_blocks_further_emission(self):
        m = Module()
        fn = Function("f", FunctionType(I32, []), [])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.i32(0))
        with pytest.raises(RuntimeError):
            b.ret(b.i32(1))

    def test_struct_gep_types(self):
        m = Module()
        move = StructType("Move", [("from", I32), ("score", F64)])
        m.add_struct(move)
        fn = Function("f", FunctionType(F64, [ptr(move)]), ["p"])
        m.add_function(fn)
        b = IRBuilder(fn.add_block("entry"))
        addr = b.struct_gep(fn.args[0], 1)
        assert addr.type == ptr(F64)
        b.ret(b.load(addr))
        verify_module(m)

    def test_call_arity_checked(self):
        m = make_identity()
        fn = m.function("id")
        caller = Function("c", FunctionType(I32, []), [])
        m.add_function(caller)
        b = IRBuilder(caller.add_block("entry"))
        with pytest.raises(TypeError):
            b.call(fn, [])


class TestVerifier:
    def test_valid_module_passes(self):
        verify_module(make_identity())

    def test_missing_terminator(self):
        m = Module()
        fn = Function("f", FunctionType(I32, []), [])
        m.add_function(fn)
        fn.add_block("entry")  # empty block, no terminator
        with pytest.raises(VerificationError, match="no terminator"):
            verify_module(m)

    def test_ret_type_mismatch(self):
        m = Module()
        fn = Function("f", FunctionType(I64, []), [])
        m.add_function(fn)
        block = fn.add_block("entry")
        block.append(Ret(Constant(I32, 1)))
        with pytest.raises(VerificationError, match="ret type"):
            verify_module(m)

    def test_void_ret_with_value(self):
        from repro.ir import VOID
        m = Module()
        fn = Function("f", FunctionType(VOID, []), [])
        m.add_function(fn)
        fn.add_block("entry").append(Ret(Constant(I32, 1)))
        with pytest.raises(VerificationError, match="void"):
            verify_module(m)

    def test_branch_to_foreign_block(self):
        m = Module()
        f1 = Function("a", FunctionType(I32, []), [])
        f2 = Function("b", FunctionType(I32, []), [])
        m.add_function(f1)
        m.add_function(f2)
        foreign = f2.add_block("x")
        foreign.append(Ret(Constant(I32, 0)))
        blk = f1.add_block("entry")
        blk.append(Br(foreign))
        with pytest.raises(VerificationError, match="foreign"):
            verify_module(m)

    def test_duplicate_block_names(self):
        m = Module()
        fn = Function("f", FunctionType(I32, []), [])
        m.add_function(fn)
        b1 = fn.add_block("entry")
        b1.append(Ret(Constant(I32, 0)))
        b2 = fn.add_block("entry")
        b2.append(Ret(Constant(I32, 0)))
        with pytest.raises(VerificationError, match="duplicate block"):
            verify_module(m)


def test_printer_round_trips_key_constructs():
    m = make_identity()
    text = print_module(m)
    assert "define i32 @id(i32 %x)" in text
    assert "ret i32" in text
