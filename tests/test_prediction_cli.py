"""Tests for the NWSLite-style bandwidth predictor, the cloudlet network
comparison, and the command-line interface."""

import pytest

from repro.runtime import (BandwidthPredictor, CLOUD_WAN, FAST_WIFI,
                           SessionOptions)

from conftest import HOT_KERNEL_SRC, HOT_KERNEL_STDIN, offload_c


class TestBandwidthPredictor:
    def test_falls_back_until_warm(self):
        predictor = BandwidthPredictor()
        assert predictor.predict_bps(100e6) == 100e6
        predictor.observe_transfer(100_000, 0.01)   # 80 Mbps
        assert predictor.predict_bps(100e6) == 100e6  # still 1 sample

    def test_converges_on_stable_link(self):
        predictor = BandwidthPredictor()
        for _ in range(10):
            predictor.observe_transfer(100_000, 0.01)   # 80 Mbps
        assert predictor.predict_bps(400e6) == pytest.approx(80e6,
                                                             rel=0.05)

    def test_tracks_degrading_link(self):
        predictor = BandwidthPredictor()
        for _ in range(6):
            predictor.observe_transfer(100_000, 0.01)   # 80 Mbps
        for _ in range(6):
            predictor.observe_transfer(100_000, 0.08)   # 10 Mbps
        assert predictor.predict_bps(80e6) < 30e6

    def test_recovers_quickly_after_outlier(self):
        predictor = BandwidthPredictor()
        for _ in range(8):
            predictor.observe_transfer(100_000, 0.01)
        predictor.observe_transfer(100_000, 1.0)  # one stall
        predictor.observe_transfer(100_000, 0.01)
        # one good sample is enough for the ensemble to discard the
        # stall (the robust forecasters outrank last-value again)
        assert predictor.predict_bps(80e6) > 20e6

    def test_small_control_messages_ignored(self):
        predictor = BandwidthPredictor()
        for _ in range(20):
            predictor.observe_transfer(64, 0.002)
        assert predictor.samples == 0
        assert predictor.predict_bps(80e6) == 80e6

    def test_error_tracking(self):
        predictor = BandwidthPredictor()
        for i in range(12):
            predictor.observe_transfer(100_000, 0.01)
        assert predictor.mean_relative_error < 0.10

    def test_session_integration(self):
        local, result, _ = offload_c(
            HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
            session_options=SessionOptions(
                enable_bandwidth_prediction=True))
        assert result.stdout == local.stdout


class TestCloudletComparison:
    def test_nearby_server_beats_distant_cloud(self):
        """Section 6 / Cloudlet: a WLAN-attached server beats a WAN cloud
        because per-offload latency dominates for interactive tasks."""
        _, cloudlet, _ = offload_c(HOT_KERNEL_SRC,
                                   stdin=HOT_KERNEL_STDIN,
                                   network=FAST_WIFI)
        _, cloud, _ = offload_c(HOT_KERNEL_SRC, stdin=HOT_KERNEL_STDIN,
                                network=CLOUD_WAN)
        assert cloudlet.stdout == cloud.stdout
        if cloud.offloaded_invocations:
            assert cloudlet.total_seconds < cloud.total_seconds


class TestCLI:
    def test_list(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "458.sjeng" in out and "chess" in out

    def test_compile(self, capsys):
        from repro.__main__ import main
        assert main(["compile", "456.hmmer"]) == 0
        out = capsys.readouterr().out
        assert "main_loop_serial" in out

    def test_run(self, capsys):
        from repro.__main__ import main
        assert main(["run", "462.libquantum"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "identical" in out

    def test_run_unknown_network(self, capsys):
        from repro.__main__ import main
        assert main(["run", "chess", "--network", "carrier-pigeon"]) == 2

    def test_table_2_and_5(self, capsys):
        from repro.__main__ import main
        assert main(["table", "2"]) == 0
        assert main(["table", "5"]) == 0
        out = capsys.readouterr().out
        assert "Firefox" in out and "Native Offloader" in out

    def test_table_invalid(self, capsys):
        from repro.__main__ import main
        assert main(["table", "9"]) == 2
