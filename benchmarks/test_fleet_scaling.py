"""Fleet-scaling benchmark: Figure 6 speedups under server contention
(docs/fleet.md).

The same multi-invocation hot-kernel workload runs on fleets of growing
size against a fixed two-server pool.  Per fleet size the sweep records
throughput, completion-time percentiles, per-server utilization and the
decline rate into ``BENCH_fleet.json``, and asserts the ISSUE 4
acceptance bar: as devices per server grow, the decline rate rises and
local fallbacks absorb the load the pool refuses — with every device
still producing output identical to the local run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fleet import (DeviceSpec, FleetScheduler, PoolOptions,
                         SeedFanout, ServerPool, arrival_offsets)
from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import FAST_WIFI, SessionOptions, run_local

from conftest import run_once

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

SEED = 0
SERVERS = 2
CAPACITY = 1
QUEUE_LIMIT = 2
FLEET_SIZES = [2, 6, 12, 20]

FLEET_SRC = r"""
int *data;
int n;

int crunch(void) {
    int i, r, acc = 0;
    for (r = 0; r < 40; r++) {
        for (i = 0; i < n; i++) {
            acc += (data[i] * 31 + r) ^ (acc >> 3);
        }
    }
    return acc;
}

int main() {
    int i, k;
    scanf("%d", &n);
    data = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    for (k = 0; k < 3; k++) printf("crunched %d\n", crunch());
    return 0;
}
"""
FLEET_STDIN = b"600\n"


@pytest.fixture(scope="module")
def compiled():
    module = compile_c(FLEET_SRC, "fleet-bench")
    profile = profile_module(module, stdin=FLEET_STDIN)
    program = NativeOffloaderCompiler(
        CompilerOptions(forced_targets=["crunch"])).compile(
            module, profile)
    local = run_local(module, stdin=FLEET_STDIN)
    return program, local


def _run_fleet(program, devices: int):
    fan = SeedFanout(SEED)
    offsets = arrival_offsets("uniform", devices, 0.002,
                              fan.rng("arrivals"))
    specs = [DeviceSpec(device_id=f"dev{i:02d}", program=program,
                        network=FAST_WIFI, stdin=FLEET_STDIN,
                        start_offset_s=offsets[i],
                        options=SessionOptions())
             for i in range(devices)]
    pool = ServerPool(PoolOptions(servers=SERVERS, capacity=CAPACITY,
                                  queue_limit=QUEUE_LIMIT))
    return FleetScheduler(specs, pool).run()


def test_fleet_scaling_sweep(benchmark, compiled):
    program, local = compiled

    def sweep():
        return [(n, _run_fleet(program, n)) for n in FLEET_SIZES]

    results = run_once(benchmark, sweep)

    points = []
    for n, result in results:
        assert all(d.result.stdout == local.stdout
                   for d in result.devices), \
            f"fleet of {n}: device output diverged from local run"
        summary = result.summary()
        summary["devices_per_server"] = n / SERVERS
        points.append(summary)

    decline = [p["decline_rate"] for p in points]
    fallbacks = [p["invocations"]["local_fallbacks"] for p in points]
    # Contention bites: the most loaded fleet declines a strictly
    # larger share than the least loaded one, monotonically by stage.
    assert decline == sorted(decline), \
        f"decline rate not monotone across fleet sizes: {decline}"
    assert decline[-1] > decline[0], \
        f"decline rate flat from {FLEET_SIZES[0]} to {FLEET_SIZES[-1]} " \
        f"devices: {decline}"
    # ...and the refused load lands on the devices themselves.
    assert fallbacks[-1] > fallbacks[0], \
        f"local fallbacks flat under load: {fallbacks}"
    # The pool is actually being used, not bypassed.
    busiest = max(s["utilization"]
                  for s in points[-1]["servers_detail"])
    assert busiest > 0.5, f"pool underutilized at peak: {busiest}"

    payload = {
        "workload": "fleet-bench (3x crunch per device)",
        "network": "802.11ac",
        "seed": SEED,
        "servers": SERVERS,
        "capacity": CAPACITY,
        "queue_limit": QUEUE_LIMIT,
        "sweep": points,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_fleet_smoke(compiled):
    """The CI smoke configuration: one small fleet, fixed seed, asserting
    determinism and output correctness only (fast enough for the
    paper-eval smoke job)."""
    program, local = compiled
    first = _run_fleet(program, 4)
    second = _run_fleet(program, 4)
    assert all(d.result.stdout == local.stdout for d in first.devices)
    assert json.dumps(first.summary()) == json.dumps(second.summary())
