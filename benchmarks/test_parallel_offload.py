"""Scatter/gather parallel-offload benchmark (docs/parallel-offload.md).

One device runs a data-parallel kernel against a four-server pool with
growing ``--shards``; per k the sweep records the offload invocation's
charged wall latency (trace-span derived — the same aggregation the
report uses), the parallel vs serial exec seconds and the gang fan-out
into ``BENCH_parallel.json``.  The ISSUE 9 acceptance bar: some k >= 2
plan beats the k=1 single-server invocation latency by >= 1.5x, with
program output byte-identical throughout — including under an injected
shard fault whose straggler range replays locally.

Every leaf is simulation output (no wall-clock keys), so the CI smoke
regeneration must reproduce the checked-in file exactly; ``repro
report --bench`` gates the oriented leaves.  ``PARALLEL_OUT`` redirects
the output file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.fleet import (DeviceSpec, FleetScheduler, PoolOptions,
                         ServerPool)
from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import FAST_WIFI, SessionOptions, run_local
from repro.trace.analysis import reconstruct_sessions
from repro.trace.analysis.critical_path import attribute_session

from conftest import run_once

RESULT_PATH = Path(os.environ.get(
    "PARALLEL_OUT",
    Path(__file__).resolve().parent.parent / "BENCH_parallel.json"))

SERVERS = 4
SHARD_COUNTS = [1, 2, 4]
SPEEDUP_BAR = 1.5

# One flat data-parallel loop with enough per-element arithmetic that
# server exec dominates the transfer: the shape the shard analyzer
# accepts and the scatter actually pays off on.
PARALLEL_SRC = r"""
int data[8192];
int out[8192];
int n;

void smooth(void) {
    int i;
    for (i = 0; i < n; i++) {
        int v = data[i];
        v = v * 31 + (v >> 3);
        v ^= v << 7;
        v += v >> 11;
        v = v * 1103515245 + 12345;
        v ^= v >> 13;
        v = v * 69069 + 1;
        v ^= v << 3;
        v += (v >> 2) ^ (v << 9);
        v = v * 2654435761 + 40503;
        v ^= v >> 17;
        v += (v << 5) - v;
        v = v * 22695477 + 1;
        v ^= v >> 7;
        v += (v >> 4) ^ (v << 11);
        v = v * 134775813 + 1;
        v ^= v << 13;
        out[i] = (v ^ (v >> 5)) + i;
    }
}

int main() {
    int i, acc = 0;
    scanf("%d", &n);
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    smooth();
    for (i = 0; i < n; i++) acc += out[i];
    printf("smoothed %d\n", acc);
    return 0;
}
"""
PARALLEL_STDIN = b"4000\n"
TRIP_COUNT = 4000


@pytest.fixture(scope="module")
def compiled():
    module = compile_c(PARALLEL_SRC, "parallel-bench")
    profile = profile_module(module, stdin=PARALLEL_STDIN)
    program = NativeOffloaderCompiler(
        CompilerOptions(forced_targets=["smooth"])).compile(
            module, profile)
    local = run_local(module, stdin=PARALLEL_STDIN)
    return program, local


def _run(program, options: SessionOptions):
    spec = DeviceSpec(device_id="dev00", program=program,
                      network=FAST_WIFI, stdin=PARALLEL_STDIN,
                      options=options)
    pool = ServerPool(PoolOptions(servers=SERVERS, capacity=1))
    return FleetScheduler([spec], pool).run()


def _invocation_latency_s(result) -> float:
    """Charged wall seconds of the (one) offloaded smooth invocation,
    from the same span aggregation the report uses."""
    sessions = reconstruct_sessions(list(result.merged_events()))
    paths = [p for s in sessions for p in attribute_session(s)
             if p.status == "offloaded" and "smooth" in p.target]
    assert len(paths) == 1, paths
    return paths[0].total_seconds


def _point(result, shards: int) -> dict:
    record = max((r for d in result.devices
                  for r in d.result.invocations),
                 key=lambda r: r.shards)
    detail = result.summary()["servers_detail"]
    return {
        "shards": record.shards,
        "requested_shards": shards,
        "invocation_latency_s": _invocation_latency_s(result),
        "exec_wall_s": (record.shard_wall_seconds
                        if record.shards > 1 else record.server_seconds),
        "exec_serial_s": record.server_seconds,
        "shard_sizes": list(record.shard_sizes or []),
        "gang_shard_admissions": sum(r["shard_admissions"]
                                     for r in detail),
        "session_total_s": result.devices[0].result.total_seconds,
    }


def test_parallel_offload_speedup(benchmark, compiled):
    program, local = compiled

    def sweep():
        return [(k, _run(program,
                         SessionOptions(shards=k, enable_tracing=True)))
                for k in SHARD_COUNTS]

    results = run_once(benchmark, sweep)

    points = []
    for k, result in results:
        assert all(d.result.stdout == local.stdout
                   for d in result.devices), \
            f"k={k}: device output diverged from local run"
        points.append(_point(result, k))

    base = points[0]["invocation_latency_s"]
    for point in points:
        point["speedup"] = base / point["invocation_latency_s"]

    # The tentpole bar: some k >= 2 plan beats the single-server
    # invocation latency by >= 1.5x on this pool.
    best = max(p["speedup"] for p in points if p["requested_shards"] > 1)
    assert best >= SPEEDUP_BAR, \
        f"no plan reached {SPEEDUP_BAR}x: {points}"
    # Parallel exec wall must genuinely shrink below the serial sum.
    for point in points:
        if point["shards"] > 1:
            assert point["exec_wall_s"] < point["exec_serial_s"], point

    # Fault resilience rides along: an injected shard fault replays the
    # lost range locally and the program output cannot change.
    faulted = _run(program, SessionOptions(shards=4, shard_faults=(1,),
                                           enable_tracing=True))
    assert all(d.result.stdout == local.stdout
               for d in faulted.devices), \
        "shard fault changed program output"
    frecord = max((r for d in faulted.devices
                   for r in d.result.invocations),
                  key=lambda r: r.shards)
    fault_point = {
        "shards": frecord.shards,
        "faults": [1],
        "stragglers": frecord.stragglers,
        "replay_seconds": frecord.local_seconds,
        "invocation_latency_s": _invocation_latency_s(faulted),
    }
    assert frecord.stragglers == 1, fault_point

    payload = {
        "workload": "parallel-bench (one smooth plan per device)",
        "network": "802.11ac",
        "servers": SERVERS,
        "capacity": 1,
        "trip_count": TRIP_COUNT,
        "speedup_bar": SPEEDUP_BAR,
        "sweep": points,
        "fault_replay": fault_point,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
