"""Bytes-on-wire benchmark for the incremental UVA data plane
(docs/uva-data-plane.md).

A multi-invocation workload — the same hot function offloaded five
times with small working-set churn between calls — runs once with the
naive data plane (blanket invalidation, whole-page transfers) and once
with the cross-invocation page cache + sub-page deltas + adaptive
prefetch.  The run asserts the ISSUE acceptance bar (total UVA bytes on
the wire drop >= 40% with identical program output) and writes the
before/after numbers to ``BENCH_uva.json`` so the perf trajectory is
machine-readable across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import (FAST_WIFI, OffloadSession, SessionOptions,
                           run_local)

from conftest import run_once

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_uva.json"

# Acceptance bar: the incremental data plane must cut total UVA traffic
# by at least this fraction on the multi-invocation workload.
MIN_REDUCTION = 0.40

# Five offloads of ``crunch`` with a few words of churn between calls.
# ``forced_targets`` pins the offload target to the function itself so
# each call is a separate invocation (the outliner would otherwise lift
# main's loop and fuse all five into one).
MULTI_SRC = r"""
int *buf;
int n;

int crunch(int salt) {
    int i, r, acc = 0;
    for (r = 0; r < 8; r++) {
        for (i = 0; i < n; i++) {
            acc += ((buf[i] ^ salt) * (i & 7)) + (acc >> 5);
        }
    }
    for (i = 0; i < 64; i++) {
        buf[i] = acc + i;
    }
    return acc;
}

int main() {
    int i, k, total = 0;
    scanf("%d", &n);
    buf = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) buf[i] = i * 2654435761u;
    for (k = 0; k < 5; k++) {
        buf[100 + k] = buf[100 + k] ^ (k * 97);
        total = total ^ crunch(k);
        printf("%d %d\n", k, total);
    }
    printf("total=%d\n", total);
    return 0;
}
"""
MULTI_STDIN = b"6000\n"


@pytest.fixture(scope="module")
def compiled():
    module = compile_c(MULTI_SRC, "multi")
    profile = profile_module(module, stdin=MULTI_STDIN)
    program = NativeOffloaderCompiler(
        CompilerOptions(forced_targets=["crunch"])).compile(module, profile)
    local = run_local(module, stdin=MULTI_STDIN)
    return program, local


def run_variant(program, incremental: bool):
    options = SessionOptions(enable_dynamic_estimation=False,
                             enable_page_cache=incremental,
                             enable_delta_transfer=incremental,
                             enable_adaptive_prefetch=incremental)
    session = OffloadSession(program, FAST_WIFI, options=options,
                             stdin=MULTI_STDIN)
    return session.run()


def summarize(result) -> dict:
    us = result.uva_stats
    return {
        "bytes_to_server": result.bytes_to_server,
        "bytes_to_mobile": result.bytes_to_mobile,
        "bytes_total": result.bytes_to_server + result.bytes_to_mobile,
        "cod_faults": us.cod_faults,
        "prefetched_pages": us.prefetched_pages,
        "cache_kept_pages": us.cache_kept_pages,
        "cache_skipped_prefetch_pages": us.cache_skipped_prefetch_pages,
        "delta_saved_bytes": us.delta_saved_bytes,
        "prefetch_hit_rate": round(us.prefetch_hit_ratio, 4),
        "simulated_seconds": round(result.total_seconds, 6),
        "offloaded_invocations": result.offloaded_invocations,
        "invocations": len(result.invocations),
    }


def test_incremental_data_plane_cuts_bytes_on_wire(benchmark, compiled):
    program, local = compiled

    def both():
        return run_variant(program, False), run_variant(program, True)

    naive, incremental = run_once(benchmark, both)
    assert naive.stdout == local.stdout
    assert incremental.stdout == local.stdout

    before = summarize(naive)
    after = summarize(incremental)
    reduction = 1.0 - after["bytes_total"] / before["bytes_total"]
    assert reduction >= MIN_REDUCTION, (
        f"bytes-on-wire reduction {reduction:.1%} below the "
        f"{MIN_REDUCTION:.0%} bar (naive {before['bytes_total']}, "
        f"incremental {after['bytes_total']})")
    # the win must not come at the cost of simulated wall time
    assert after["simulated_seconds"] <= before["simulated_seconds"] * 1.01

    record = {
        "workload": "multi-invocation crunch (5 offloads, n=6000)",
        "network": "802.11ac",
        "naive": before,
        "incremental": after,
        "reduction": round(reduction, 4),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
