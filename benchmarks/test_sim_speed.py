"""Simulator-speed benchmark: wall-clock cost of the event-driven
fleet core, swept to 10k devices (docs/simulator.md).

Simulator speed is a gated metric alongside bytes-on-wire and decline
rate: the sweep records wall-clock per fleet run, per device and per
simulated invocation into ``BENCH_simspeed.json``, together with the
*deterministic* replay accounting (session runs beyond the theoretical
minimum, segment-cache hits) that CI gates via ``python -m repro report
--bench`` — wall-clock keys are deliberately named so the generic bench
differ treats them as informational (machine noise must not fail CI),
while a broken segment cache shows up as ``session_runs_wasted > 0``
and fails deterministically.

``SIM_SPEED_SMOKE=1`` shrinks the sweep for the CI smoke job;
``SIM_SPEED_OUT`` redirects the output file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.fleet import (DeviceSpec, FleetScheduler,
                         LockstepFleetScheduler, PoolOptions, SeedFanout,
                         ServerPool, arrival_offsets)
from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import FAST_WIFI, run_local

SMOKE = bool(os.environ.get("SIM_SPEED_SMOKE"))
RESULT_PATH = Path(os.environ.get(
    "SIM_SPEED_OUT",
    Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"))

SEED = 0
SPACING_S = 0.002
#: Uncontended pool: one server with ample slots, so every device sees
#: the same (zero-queue) admission script and the segment cache shares
#: all interpreter work.  Contended-pool *behavior* is BENCH_fleet.json
#: territory; this file measures the simulator itself.
POOL = dict(servers=1, capacity=64, queue_limit=8)
INVOCATIONS_PER_DEVICE = 3

EVENT_SIZES = [10, 100] if SMOKE else [10, 100, 1000, 10000]
LOCKSTEP_SIZES = [10] if SMOKE else [10, 50, 100]

SIM_SRC = r"""
int *data;
int n;

int crunch(void) {
    int i, r, acc = 0;
    for (r = 0; r < 40; r++) {
        for (i = 0; i < n; i++) {
            acc += (data[i] * 31 + r) ^ (acc >> 3);
        }
    }
    return acc;
}

int main() {
    int i, k;
    scanf("%d", &n);
    data = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    for (k = 0; k < 3; k++) printf("crunched %d\n", crunch());
    return 0;
}
"""
SIM_STDIN = b"150\n"


@pytest.fixture(scope="module")
def compiled():
    module = compile_c(SIM_SRC, "sim-speed")
    profile = profile_module(module, stdin=SIM_STDIN)
    program = NativeOffloaderCompiler(
        CompilerOptions(forced_targets=["crunch"])).compile(
            module, profile)
    local = run_local(module, stdin=SIM_STDIN)
    return program, local


def _specs(program, devices: int):
    fan = SeedFanout(SEED)
    offsets = arrival_offsets("uniform", devices, SPACING_S,
                              fan.rng("arrivals"))
    return [DeviceSpec(device_id=f"dev{i:05d}", program=program,
                       network=FAST_WIFI, stdin=SIM_STDIN,
                       start_offset_s=offsets[i])
            for i in range(devices)]


def _measure(scheduler_cls, program, devices: int):
    scheduler = scheduler_cls(_specs(program, devices),
                              ServerPool(PoolOptions(**POOL)))
    t0 = time.perf_counter()
    result = scheduler.run()
    wall_s = time.perf_counter() - t0
    invocations = sum(len(d.result.invocations) for d in result.devices)
    point = {
        "devices": devices,
        "invocations": invocations,
        # Deterministic (gated): simulation output must not drift.
        "makespan_s": result.makespan_s,
        # Informational (never gated): machine-dependent wall clock.
        "wall_ms": wall_s * 1e3,
        "wall_ms_per_device": wall_s * 1e3 / devices,
        "wall_ms_per_invocation": (wall_s * 1e3 / invocations
                                   if invocations else 0.0),
    }
    if isinstance(scheduler, FleetScheduler):
        stats = scheduler.replay.stats()
        # Deterministic (gated): replays beyond the k+1 theoretical
        # minimum mean the segment cache broke.
        point["session_runs_wasted"] = (
            stats["session_runs"] - (INVOCATIONS_PER_DEVICE + 1))
        point["segment_cache_hits"] = stats["shared_hits"]
    return point, result


def test_sim_speed_sweep(compiled):
    program, local = compiled

    event_points = {}
    event_walls = {}
    for n in EVENT_SIZES:
        point, result = _measure(FleetScheduler, program, n)
        # Spot-check correctness on the cheapest fleet only — verifying
        # 10k stdouts would dominate the measurement.
        if n == EVENT_SIZES[0]:
            assert all(d.result.stdout == local.stdout
                       for d in result.devices)
        assert point["session_runs_wasted"] == 0, \
            f"segment cache broke at {n} devices: {point}"
        event_points[str(n)] = point
        event_walls[n] = point["wall_ms"]

    lockstep_points = {}
    lockstep_walls = {}
    for n in LOCKSTEP_SIZES:
        point, _ = _measure(LockstepFleetScheduler, program, n)
        lockstep_points[str(n)] = point
        lockstep_walls[n] = point["wall_ms"]

    # Same simulation, either engine: the deterministic outputs agree.
    for n in set(EVENT_SIZES) & set(LOCKSTEP_SIZES):
        assert (event_points[str(n)]["makespan_s"]
                == lockstep_points[str(n)]["makespan_s"]), \
            f"engines disagree on makespan at {n} devices"

    payload = {
        "workload": "sim-speed (3x crunch per device, uncontended pool)",
        "network": "802.11ac",
        "seed": SEED,
        "spacing_s": SPACING_S,
        "pool": dict(POOL),
        "smoke": SMOKE,
        "event": event_points,
        "lockstep": lockstep_points,
    }

    if not SMOKE:
        # Acceptance bar (ISSUE 6): >=10x over lockstep at 100+ devices,
        # sub-linear wall-clock growth through 10k.
        ratio_100 = lockstep_walls[100] / event_walls[100]
        payload["wall_ratio_lockstep_over_event_at_100"] = ratio_100
        assert ratio_100 >= 10.0, \
            f"event core only {ratio_100:.1f}x faster at 100 devices"
        growth = event_walls[10000] / event_walls[1000]
        payload["wall_growth_1000_to_10000"] = growth
        assert growth < 5.0, \
            f"wall-clock grew {growth:.1f}x for 10x devices (super-linear)"

    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
