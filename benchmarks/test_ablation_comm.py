"""Ablation A2 — the runtime's communication optimizations on/off:
prefetch, batching, compression, copy-on-demand (paper, Section 4).
"""

import pytest

from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import (OffloadSession, SLOW_WIFI, SessionOptions,
                           run_local)
from repro.workloads import workload

from conftest import run_once

NAME = "164.gzip"   # the heaviest-traffic program


@pytest.fixture(scope="module")
def compiled():
    spec = workload(NAME)
    module = spec.module()
    profile = profile_module(module, stdin=spec.profile_stdin,
                             files=spec.profile_files)
    program = NativeOffloaderCompiler(CompilerOptions()).compile(
        module, profile)
    local = run_local(module, stdin=spec.profile_stdin,
                      files=spec.profile_files)
    return spec, program, local


def run_with(compiled, **flags):
    spec, program, local = compiled
    options = SessionOptions(enable_dynamic_estimation=False, **flags)
    session = OffloadSession(program, SLOW_WIFI, options=options,
                             stdin=spec.profile_stdin,
                             files=spec.profile_files)
    result = session.run()
    assert result.stdout == local.stdout  # every variant stays correct
    return result


def test_baseline_all_optimizations(benchmark, compiled):
    result = run_once(benchmark, run_with, compiled)
    assert result.offloaded_invocations >= 1


def test_compression_reduces_time_and_bytes(benchmark, compiled):
    def compare():
        on = run_with(compiled, enable_compression=True)
        off = run_with(compiled, enable_compression=False)
        return on, off
    on, off = run_once(benchmark, compare)
    assert on.compression_saved_bytes > 0
    assert on.comm_seconds < off.comm_seconds


def test_batching_reduces_time(benchmark, compiled):
    def compare():
        on = run_with(compiled, enable_batching=True)
        off = run_with(compiled, enable_batching=False)
        return on, off
    on, off = run_once(benchmark, compare)
    assert on.comm_seconds <= off.comm_seconds


def test_prefetch_avoids_cod_round_trips(benchmark, compiled):
    def compare():
        on = run_with(compiled, enable_prefetch=True)
        off = run_with(compiled, enable_prefetch=False)
        return on, off
    on, off = run_once(benchmark, compare)
    assert off.cod_faults > on.cod_faults
    # every fault is a round trip: pure-CoD sharing costs more time
    assert off.total_seconds > on.total_seconds


def test_cod_without_prefetch_still_correct(benchmark, compiled):
    """Copy-on-demand alone (no prefetch) moves exactly the pages the
    server touches — correctness holds, page count is bounded by the
    prefetch set."""
    def compare():
        pf = run_with(compiled, enable_prefetch=True)
        cod = run_with(compiled, enable_prefetch=False)
        return pf, cod
    pf, cod = run_once(benchmark, compare)
    assert cod.bytes_to_server <= pf.bytes_to_server * 1.05
