"""Baseline A3 — conservative static partitioning vs Native Offloader.

Paper (Related Works): static partitioners handle well-analyzable
regular programs but conservatively overpay communication — or refuse to
move anything — on programs with irregular data access and function
pointers.  Native Offloader's UVA + copy-on-demand sidesteps the
conservatism entirely.
"""

import pytest

from repro.baselines import StaticPartitioner
from repro.profiler import profile_module
from repro.runtime import FAST_WIFI
from repro.workloads import workload

from conftest import run_once

REGULAR = "456.hmmer"      # clean call structure, no fn-ptrs
IRREGULAR = "445.gobmk"    # fn-ptr dispatch + file-driven control flow


def static_result(name):
    spec = workload(name)
    module = spec.module()
    profile = profile_module(module, stdin=spec.profile_stdin,
                             files=spec.profile_files)
    partitioner = StaticPartitioner(module, profile, FAST_WIFI, 5.8)
    return partitioner, partitioner.partition()


def test_static_partitioner_on_regular_program(benchmark, suite):
    partitioner, result = run_once(benchmark, static_result, REGULAR)
    # regular program: the static approach moves the compute kernel (the
    # driver or the inner Viterbi scorer) to the server
    assert result.server_functions & {"main_loop_serial",
                                      "viterbi_score"}
    assert result.predicted_speedup > 1.5


def test_static_partitioner_conservatism_on_irregular(benchmark):
    partitioner, result = run_once(benchmark, static_result, IRREGULAR)
    # fn-ptr use forces a large may-touch over-approximation...
    assert partitioner.conservatism_factor() >= 4.0
    # ...and the indirect-call dispatcher is pinned to the mobile device
    assert "gtp_main_loop" in result.mobile_functions


def test_native_offloader_beats_static_on_irregular(benchmark, suite):
    def compare():
        _, static = static_result(IRREGULAR)
        native = suite[IRREGULAR].speedup("fast")
        return static.predicted_speedup, native
    static_speedup, native_speedup = run_once(benchmark, compare)
    assert native_speedup > static_speedup
    # the static baseline barely moves anything for gobmk
    assert static_speedup < 1.5


def test_static_competitive_on_regular(benchmark, suite):
    """On the well-analyzable program both approaches offload the same
    kernel; the gap between them is modest (the paper's point is about
    *irregular* programs)."""
    def compare():
        _, static = static_result(REGULAR)
        native = suite[REGULAR].speedup("fast")
        return static.predicted_speedup, native
    static_speedup, native_speedup = run_once(benchmark, compare)
    assert static_speedup > 1.5
    assert native_speedup > 1.5


def test_conservatism_factor_ordering(benchmark):
    def factors():
        out = {}
        for name in (REGULAR, IRREGULAR, "300.twolf"):
            partitioner, _ = static_result(name)
            out[name] = partitioner.conservatism_factor()
        return out
    factors = run_once(benchmark, factors)
    assert factors[REGULAR] < factors[IRREGULAR]
    assert factors["300.twolf"] > 1.0   # file input during the kernel
