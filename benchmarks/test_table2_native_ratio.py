"""Table 2 — native-code share of the top-20 open-source Android apps.

Paper: "around one third of the 20 applications include native codes more
than 50% and spend more than 20% of the total execution time to execute
them."
"""

from repro.eval import render_table2
from repro.workloads import (TOP20_APPS, apps_with_heavy_native_runtime,
                             apps_with_majority_native_code, survey_summary)

from conftest import run_once


def test_table2_regeneration(benchmark):
    text = run_once(benchmark, render_table2)
    print("\n" + text)
    assert "Firefox" in text


def test_headline_claim(benchmark):
    summary = run_once(benchmark, survey_summary)
    assert summary["total_apps"] == 20
    # "around one third"
    assert 0.25 <= summary["fraction_both"] <= 0.45


def test_majority_native_apps(benchmark):
    majority = run_once(benchmark, apps_with_majority_native_code)
    names = {a.name for a in majority}
    assert {"Orbot", "Firefox", "VLC Player", "Cool Reader",
            "PPSSPP", "PDF Reader"} <= names


def test_heavy_runtime_apps(benchmark):
    heavy = run_once(benchmark, apps_with_heavy_native_runtime)
    assert all(a.native_exec_ratio_pct > 20.0 for a in heavy)
    assert len(heavy) >= 7
