"""Table 5 — comparison of computation offload systems.

Native Offloader's distinguishing row: fully automatic + dynamic decision
+ no VM + C + complex applications.  The VM baseline model quantifies why
the "rewrite it in Java and use COMET" route loses end-to-end.
"""

from repro.baselines import VMOffloadEstimate, can_offload_native
from repro.eval import TABLE5_SYSTEMS, render_table5

from conftest import run_once


def test_table5_regeneration(benchmark):
    text = run_once(benchmark, render_table5)
    print("\n" + text)
    assert "Native Offloader" in text


def test_native_offloader_unique_position(benchmark):
    systems = run_once(benchmark, lambda: TABLE5_SYSTEMS)
    no = next(s for s in systems if s.system == "Native Offloader")
    assert no.fully_automatic == "Yes"
    assert no.decision == "Dynamic"
    assert not no.requires_vm
    assert no.language == "C"
    assert no.target_complexity == "Complex"
    # nobody else combines all five properties
    rivals = [s for s in systems if s is not no
              and s.fully_automatic == "Yes" and s.decision == "Dynamic"
              and not s.requires_vm and s.language == "C"
              and s.target_complexity == "Complex"]
    assert not rivals


def test_vm_systems_cannot_offload_native_apps(benchmark):
    systems = run_once(benchmark, lambda: TABLE5_SYSTEMS)
    vm_systems = [s for s in systems if s.requires_vm]
    assert len(vm_systems) == 11
    assert all(not can_offload_native(s.requires_vm) for s in vm_systems)


def test_vm_rewrite_route_loses_end_to_end(benchmark, suite):
    """Even granting a COMET-style system perfect coverage on a Java
    rewrite, the ~6.2x managed-code tax eats the server's speed
    advantage; Native Offloader's native fast-network runs beat it on
    every workload."""
    def compare():
        losses = []
        for name, result in suite.items():
            vm = VMOffloadEstimate(
                native_local_seconds=result.local.seconds)
            native_speedup = result.speedup("fast")
            losses.append((name, vm.speedup_vs_native_local,
                           native_speedup))
        return losses
    losses = run_once(benchmark, compare)
    for name, vm_speedup, native_speedup in losses:
        assert native_speedup > vm_speedup, name
        assert vm_speedup < 1.5
