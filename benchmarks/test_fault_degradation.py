"""Fault-degradation sweeps (docs/fault-model.md).

Two communication-heavy workloads — 164.gzip (heaviest traffic) and
300.twolf (remote-I/O heavy) — run over a fault-injected link at rising
severity.  Two properties are asserted:

* degradation is graceful: total time rises (monotonically-ish, small
  seeded noise allowed) with drop-rate severity, and output stays
  byte-identical to local at every point;
* failure is bounded: under a link that is dead from the first message,
  every workload falls back to local execution and finishes no worse
  than the local-only baseline plus the transport's bounded retry
  budget — a dead link can cost a timeout, never a hang or a wrong
  answer.
"""

import pytest

from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import (FAST_WIFI, FaultPlan, OffloadSession,
                           RetryPolicy, SessionOptions, run_local)
from repro.workloads import workload

from conftest import run_once

WORKLOADS = ("164.gzip", "300.twolf")

DROP_SWEEP = (0.0, 0.3, 0.6, 0.9)
# seeded runs are deterministic but one schedule can be slightly lucky;
# allow a small non-monotonic dip between adjacent severities
MONOTONIC_SLACK = 0.98


@pytest.fixture(scope="module", params=WORKLOADS)
def compiled(request):
    spec = workload(request.param)
    module = spec.module()
    profile = profile_module(module, stdin=spec.profile_stdin,
                             files=spec.profile_files)
    program = NativeOffloaderCompiler(CompilerOptions()).compile(
        module, profile)
    local = run_local(module, stdin=spec.profile_stdin,
                      files=spec.profile_files)
    return spec, program, local


def run_with(compiled, fault_plan=None, retry_policy=None):
    spec, program, local = compiled
    options = SessionOptions(enable_dynamic_estimation=False,
                             fault_plan=fault_plan,
                             retry_policy=retry_policy)
    session = OffloadSession(program, FAST_WIFI, options=options,
                             stdin=spec.profile_stdin,
                             files=spec.profile_files)
    result = session.run()
    # semantics survive every fault schedule
    assert result.stdout == local.stdout
    return result


def test_drop_rate_degrades_gracefully(benchmark, compiled):
    """Rising transient-loss rates cost retries, timeouts and backoff —
    total time grows with severity and the retry counters grow strictly."""
    def sweep():
        results = []
        for rate in DROP_SWEEP:
            plan = (FaultPlan(seed=13, drop_rate=rate) if rate else None)
            # a generous retry budget: the sweep measures degradation,
            # not abort behavior
            results.append(run_with(
                compiled, fault_plan=plan,
                retry_policy=RetryPolicy(max_attempts=25)))
        return results
    results = run_once(benchmark, sweep)
    times = [r.total_seconds for r in results]
    retries = [r.transport_stats.retries for r in results]
    for prev, cur in zip(times, times[1:]):
        assert cur >= prev * MONOTONIC_SLACK
    assert times[-1] > times[0]           # severe loss is clearly slower
    assert retries == sorted(retries)     # retry work rises with severity
    assert retries[0] == 0 and retries[-1] > retries[1]


def test_disconnect_severity_sweep(benchmark, compiled):
    """Mid-invocation disconnects at different points (init, exec,
    finalize) all abort cleanly; the earlier the link dies, the less
    offload work completes, and output is always identical to local."""
    def sweep():
        results = []
        for after in (0, 1, 2, 4, 8):
            plan = FaultPlan(seed=5, disconnect_after_messages=after)
            results.append(run_with(compiled, fault_plan=plan))
        return results
    results = run_once(benchmark, sweep)
    for res in results:
        # every aborted invocation was replayed locally
        assert res.local_fallbacks == res.aborted_invocations
    # the link dead from message zero aborts the very first attempt
    assert results[0].aborted_invocations >= 1
    assert results[0].offloaded_invocations == 0


def test_dead_link_bounded_by_local_baseline(benchmark, compiled):
    """A link that never delivers costs the local-only time plus the
    transport's bounded retry budget — never a hang, never more than
    the budget, and bit-for-bit the local output."""
    spec, program, local = compiled
    policy = RetryPolicy()

    def run_dead():
        return run_with(
            compiled,
            fault_plan=FaultPlan(disconnect_after_messages=0),
            retry_policy=policy)
    dead = run_once(benchmark, run_dead)
    assert dead.offloaded_invocations == 0
    assert dead.aborted_invocations >= 1
    assert dead.local_fallbacks == dead.aborted_invocations
    # bounded waste: each abort burns at most the retry budget of its
    # largest possible message — conservatively bounded by the time of
    # one message carrying the session's entire upload traffic
    upload_bound = FAST_WIFI.one_way_time(
        dead.bytes_to_server + dead.bytes_to_mobile + 1_000_000)
    budget = dead.aborted_invocations * policy.max_delivery_seconds(
        upload_bound)
    assert dead.wasted_seconds <= budget
    # ... and the wall clock is the local baseline plus that waste
    # (small slack for per-invocation dispatch overhead)
    assert dead.total_seconds <= (local.seconds + dead.wasted_seconds) * 1.05
    assert dead.total_seconds >= local.seconds
