"""Ablation A1 — memory-unification components on/off.

DESIGN.md calls out heap replacement, referenced-global reallocation and
layout realignment as the correctness-critical design choices; disabling
each must break (or visibly degrade) cross-architecture execution, and the
full configuration must stay byte-exact.
"""

import pytest

from repro.machine import SegmentationFault
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import (FAST_WIFI, OffloadSession, SessionOptions,
                           run_local)
from repro.targets import ARM32, X86
from repro.workloads import workload

from conftest import run_once

SPEC_NAME = "456.hmmer"


def run_variant(compiler_options, session_options=None, name=SPEC_NAME):
    spec = workload(name)
    module = spec.module()
    profile = profile_module(module, stdin=spec.profile_stdin,
                             files=spec.profile_files)
    program = NativeOffloaderCompiler(compiler_options).compile(
        module, profile)
    local = run_local(module, stdin=spec.profile_stdin,
                      files=spec.profile_files)
    session = OffloadSession(
        program, FAST_WIFI,
        options=session_options or SessionOptions(
            enable_dynamic_estimation=False),
        stdin=spec.profile_stdin, files=spec.profile_files)
    return local, session.run(), program


def test_full_unification_is_exact(benchmark):
    local, result, _ = run_once(benchmark, run_variant, CompilerOptions())
    assert result.stdout == local.stdout
    assert result.offloaded_invocations >= 1


def test_without_global_reallocation(benchmark):
    """Server-side reads of the mobile device's globals see the server's
    own stale/NULL copies — crash or wrong output."""
    def attempt():
        try:
            local, result, _ = run_variant(
                CompilerOptions(enable_global_realloc=False))
            return local.stdout, result.stdout, None
        except SegmentationFault as fault:
            return None, None, fault
    local_out, offload_out, fault = run_once(benchmark, attempt)
    assert fault is not None or offload_out != local_out


def test_without_heap_replacement(benchmark):
    """Without u_malloc, both libc heaps occupy the same virtual range —
    server allocations collide with mobile objects."""
    def attempt():
        try:
            local, result, _ = run_variant(
                CompilerOptions(enable_heap_replacement=False))
            return local.stdout, result.stdout, None
        except SegmentationFault as fault:
            return None, None, fault
    local_out, offload_out, fault = run_once(benchmark, attempt)
    assert fault is not None or offload_out != local_out


def test_without_layout_realignment_cross_abi(benchmark):
    """ARM32 -> IA32: struct offsets disagree (Figure 4); pinning only the
    consumer to the server exposes the mismatch."""
    src = r"""
    typedef struct { char tag; double score; } Rec;
    Rec *recs;
    double total(int n) {
        double s = 0.0;
        int i;
        for (i = 0; i < n; i++) s += recs[i].score;
        return s;
    }
    int main() {
        int n, i;
        scanf("%d", &n);
        recs = (Rec*) malloc(n * sizeof(Rec));
        for (i = 0; i < n; i++) { recs[i].tag = 1; recs[i].score = i; }
        printf("%.1f\n", total(n));
        return 0;
    }
    """
    from repro.frontend import compile_c

    def attempt(realign):
        module = compile_c(src, "rec")
        profile = profile_module(module, stdin=b"3000\n")
        options = CompilerOptions(mobile_arch=ARM32, server_arch=X86,
                                  enable_layout_realignment=realign,
                                  forced_targets=["total"])
        program = NativeOffloaderCompiler(options).compile(module,
                                                           profile)
        local = run_local(module, stdin=b"3000\n")
        session = OffloadSession(
            program, FAST_WIFI,
            options=SessionOptions(enable_dynamic_estimation=False),
            stdin=b"3000\n")
        return local.stdout, session.run().stdout

    local_out, broken_out = run_once(benchmark, attempt, False)
    assert broken_out != local_out
    local_out2, fixed_out = attempt(True)
    assert fixed_out == local_out2


def test_without_stack_reallocation(benchmark):
    """Overlapping stacks: the server's frames shadow the mobile stack
    addresses its arguments point into."""
    def attempt():
        try:
            local, result, _ = run_variant(
                CompilerOptions(),
                SessionOptions(enable_dynamic_estimation=False,
                               enable_stack_reallocation=False),
                name="183.equake")
            return local.stdout, result.stdout, None
        except SegmentationFault as fault:
            return None, None, fault
    local_out, offload_out, fault = run_once(benchmark, attempt)
    assert fault is not None or offload_out != local_out
