"""Figure 7 — breakdown of offloaded execution into computation,
function-pointer translation, remote I/O and communication.

Paper: 164.gzip / 401.bzip2 / 429.mcf / 458.sjeng / 470.lbm are
communication-sensitive; 300.twolf / 445.gobmk / 464.h264ref pay remote
I/O; 445.gobmk / 458.sjeng / 464.h264ref pay function-pointer translation;
communication shares shrink when moving from the slow to the fast network.
"""

import pytest

from repro.eval import figure7_breakdown, render_figure7

from conftest import run_once


@pytest.fixture(scope="module")
def rows(suite):
    return figure7_breakdown(suite)


def _by_key(rows):
    return {(r.program, r.network): r for r in rows}


def test_figure7_regeneration(benchmark, rows):
    text = run_once(benchmark, render_figure7, rows)
    print("\n" + text)
    assert "fn-ptr" in text


def test_fractions_sum_to_one(benchmark, rows):
    rows = run_once(benchmark, lambda: rows)
    from repro.eval import BREAKDOWN_KEYS
    for row in rows:
        total = sum(row.fraction(k) for k in BREAKDOWN_KEYS)
        assert total == pytest.approx(1.0, abs=1e-6)


def test_fn_ptr_heavy_programs(benchmark, rows):
    by_key = run_once(benchmark, _by_key, rows)
    heavy = [by_key[(p, "fast")].fraction("fn_ptr_translation")
             for p in ("445.gobmk", "458.sjeng", "464.h264ref")]
    light = [by_key[(p, "fast")].fraction("fn_ptr_translation")
             for p in ("179.art", "429.mcf", "470.lbm", "183.equake")]
    assert min(heavy) > max(light)
    assert max(heavy) > 0.02


def test_remote_io_heavy_programs(benchmark, rows):
    by_key = run_once(benchmark, _by_key, rows)
    for program in ("300.twolf", "445.gobmk", "482.sphinx3",
                    "464.h264ref"):
        assert by_key[(program, "fast")].fraction("remote_io") > 0.01, \
            program
    for program in ("175.vpr", "462.libquantum", "456.hmmer"):
        assert by_key[(program, "fast")].fraction("remote_io") < 0.01, \
            program


def test_communication_share_larger_on_slow_network(benchmark, rows):
    by_key = run_once(benchmark, _by_key, rows)
    larger = 0
    considered = 0
    for (program, network), row in by_key.items():
        if network != "fast":
            continue
        slow_row = by_key[(program, "slow")]
        # only meaningful when both configurations actually offloaded
        if row.seconds["communication"] == 0 or \
                slow_row.seconds["communication"] == 0:
            continue
        considered += 1
        if slow_row.fraction("communication") >= \
                row.fraction("communication") * 0.95:
            larger += 1
    assert considered >= 10
    assert larger >= considered * 0.8


def test_comm_sensitive_programs_have_big_comm_share(benchmark, rows):
    """The compression pair spends a large *fraction* of offloaded time
    communicating; the bulk-data programs also spend far more absolute
    communication time than the near-ideal class (whose small comm
    *share* is dominated by fixed per-offload protocol costs)."""
    by_key = run_once(benchmark, _by_key, rows)
    for program in ("164.gzip", "401.bzip2"):
        assert by_key[(program, "fast")].fraction("communication") > 0.15, \
            program
    heavy_secs = [by_key[(p, "fast")].seconds["communication"]
                  for p in ("164.gzip", "401.bzip2", "470.lbm")]
    light_secs = [by_key[(p, "fast")].seconds["communication"]
                  for p in ("456.hmmer", "175.vpr", "462.libquantum")]
    assert min(heavy_secs) > 2.0 * max(light_secs)
