"""Policy comparison benchmark: the four decision engines head to head,
plus SLO-driven autoscaling vs a fixed pool (docs/placement.md).

Two scenarios, both fully deterministic (no wall-clock keys — every
leaf in ``BENCH_policies.json`` is simulation output, so the CI smoke
regeneration must reproduce the checked-in file exactly and ``repro
report --bench`` gates the oriented leaves):

* **tiered burst** — a burst of deadline-carrying devices against a
  two-tier pool (one reference edge server, one 4x cloud server).
  ``fifo`` greedily minimizes each request's *own* queue-entry wait and
  queues every request it can, so under the burst its queue-wait tail
  grows past the deadline; ``deadline-aware`` refuses placements whose
  expected finish (wait + speed-scaled service estimate) misses the
  request's deadline — those requests fall back to local execution
  instead of queueing, which bounds the p95 queue wait *and* shortens
  the makespan.  The ISSUE 7 acceptance bar: at least one engine beats
  ``fifo`` on p95 queue seconds here.
* **autoscale** — the same burst against one short-queue server, fixed
  vs elastically grown by the :class:`~repro.fleet.autoscaler.
  Autoscaler`.  Scale-ups triggered by the in-run SLO rules must lower
  the decline rate.

``POLICY_OUT`` redirects the output file (the CI smoke job writes a
fresh copy and leaf-diffs it against the checked-in one).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.fleet import (Autoscaler, AutoscalerOptions, DECISION_ENGINES,
                         DeviceSpec, FleetScheduler, PoolOptions,
                         SeedFanout, ServerPool, ServerSpec,
                         arrival_offsets)
from repro.frontend import compile_c
from repro.offload import CompilerOptions, NativeOffloaderCompiler
from repro.profiler import profile_module
from repro.runtime import FAST_WIFI, run_local
from repro.trace.analysis.aggregate import nearest_rank_percentile

RESULT_PATH = Path(os.environ.get(
    "POLICY_OUT",
    Path(__file__).resolve().parent.parent / "BENCH_policies.json"))

SEED = 0
DEVICES = 12
SPACING_S = 0.002
#: Relative per-invocation deadline.  fifo ignores it; deadline-aware
#: rejects placements that cannot meet it (admission control).
DEADLINE_S = 0.010

POLICY_SRC = r"""
int *data;
int n;

int crunch(void) {
    int i, r, acc = 0;
    for (r = 0; r < 40; r++) {
        for (i = 0; i < n; i++) {
            acc += (data[i] * 31 + r) ^ (acc >> 3);
        }
    }
    return acc;
}

int main() {
    int i, k;
    scanf("%d", &n);
    data = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    for (k = 0; k < 3; k++) printf("crunched %d\n", crunch());
    return 0;
}
"""
POLICY_STDIN = b"150\n"

#: Tiered pool: server 0 is the paper's reference edge server, server 1
#: a 4x cloud server.  fifo's (wait, id) tie-break lands the first
#: burst wave on the slow edge box; finish-time-aware policies do not.
TIERED_QUEUE_LIMIT = 16
TIERED_SPECS = (ServerSpec(queue_limit=TIERED_QUEUE_LIMIT),
                ServerSpec(speed=4.0, tier="cloud",
                           queue_limit=TIERED_QUEUE_LIMIT))

#: Fixed pool of the autoscale scenario: one single-slot server with a
#: short queue, so the burst drives declines until capacity arrives.
FIXED_POOL = dict(servers=1, capacity=1, queue_limit=2)
AUTOSCALE_MAX = 4
AUTOSCALE_INTERVAL_S = 0.002


@pytest.fixture(scope="module")
def compiled():
    module = compile_c(POLICY_SRC, "policy-cmp")
    profile = profile_module(module, stdin=POLICY_STDIN)
    program = NativeOffloaderCompiler(
        CompilerOptions(forced_targets=["crunch"])).compile(
            module, profile)
    local = run_local(module, stdin=POLICY_STDIN)
    return program, local


def _specs(program, deadline_s=None, arrival="burst"):
    fan = SeedFanout(SEED)
    offsets = arrival_offsets(arrival, DEVICES, SPACING_S,
                              fan.rng("arrivals"))
    return [DeviceSpec(device_id=f"dev{i:02d}", program=program,
                       network=FAST_WIFI, stdin=POLICY_STDIN,
                       deadline_s=deadline_s,
                       start_offset_s=offsets[i])
            for i in range(DEVICES)]


def _point(result) -> dict:
    """Deterministic per-run metrics (every leaf is simulation output)."""
    summary = result.summary()
    queue_waits = sorted(
        r.queue_seconds
        for d in result.devices for r in d.result.invocations
        if r.offloaded)
    return {
        "makespan_s": summary["makespan_s"],
        "decline_rate": summary["decline_rate"],
        "offloaded": summary["invocations"]["offloaded"],
        "rejected": summary["invocations"]["rejected"],
        "p95_queue_s": nearest_rank_percentile(queue_waits, 0.95),
        "mean_queue_s": summary["queue"]["mean_delay_s"],
        "queued_admissions": summary["queue"]["queued_admissions"],
    }


def test_policy_comparison(compiled):
    program, local = compiled

    engines = {}
    for engine in DECISION_ENGINES:
        pool = ServerPool(PoolOptions(specs=TIERED_SPECS),
                          engine=engine)
        result = FleetScheduler(
            _specs(program, deadline_s=DEADLINE_S), pool).run()
        assert all(d.result.stdout == local.stdout
                   for d in result.devices), engine
        engines[engine] = _point(result)

    # ISSUE 7 acceptance: a non-fifo engine beats fifo on p95 queue
    # seconds in this scenario.
    fifo_p95 = engines["fifo"]["p95_queue_s"]
    best = min(engines[e]["p95_queue_s"]
               for e in ("worst-fit", "deadline-aware"))
    assert best < fifo_p95, \
        f"no engine beat fifo's p95 queue wait {fifo_p95}: {engines}"

    # Uniformly staggered arrivals: rejections accumulate over the
    # whole run, so arrivals after the SLO-triggered scale-up actually
    # land on the added capacity (a single t=0 burst would finish
    # rejecting before the autoscaler's first evaluation tick).
    fixed = FleetScheduler(
        _specs(program, arrival="uniform"),
        ServerPool(PoolOptions(**FIXED_POOL))).run()
    scaler = Autoscaler(AutoscalerOptions(
        interval_s=AUTOSCALE_INTERVAL_S,
        template=ServerSpec(capacity=FIXED_POOL["capacity"],
                            queue_limit=FIXED_POOL["queue_limit"]),
        max_servers=AUTOSCALE_MAX))
    scaled = FleetScheduler(
        _specs(program, arrival="uniform"),
        ServerPool(PoolOptions(**FIXED_POOL)),
        autoscaler=scaler).run()
    assert all(d.result.stdout == local.stdout
               for d in scaled.devices)

    fixed_point = _point(fixed)
    scaled_point = _point(scaled)
    scaled_point["scale_ups"] = scaled.summary()["autoscale"]["scale_ups"]
    scaled_point["servers_final"] = scaled.summary()["servers"]

    # ISSUE 7 acceptance: SLO-triggered scale-up lowers the decline
    # rate vs the fixed pool.
    assert scaled_point["scale_ups"] >= 1, scaled_point
    assert scaled_point["decline_rate"] < fixed_point["decline_rate"], \
        f"autoscaling did not help: {fixed_point} vs {scaled_point}"

    payload = {
        "workload": "policy-cmp (3x crunch per device, burst arrivals)",
        "network": "802.11ac",
        "seed": SEED,
        "devices": DEVICES,
        "deadline_s": DEADLINE_S,
        "tiered_burst": {
            "pool": [
                {"tier": s.tier, "speed": s.speed,
                 "capacity": s.capacity, "queue_limit": s.queue_limit}
                for s in TIERED_SPECS],
            "engines": engines,
        },
        "autoscale": {
            "pool": dict(FIXED_POOL),
            "max_servers": AUTOSCALE_MAX,
            "interval_s": AUTOSCALE_INTERVAL_S,
            "fixed": fixed_point,
            "autoscaled": scaled_point,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
