"""Shared fixtures for the benchmark harness.

The expensive part — profiling, compiling and executing all 17 programs
under local/ideal/fast/slow — runs once per pytest session and is shared by
every table/figure benchmark through :func:`repro.eval.evaluate_suite`'s
cache.
"""

from __future__ import annotations

import pytest

from repro.eval import evaluate_suite


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ is a paper-evaluation run, distinct
    from the fast unit tests in tests/ — mark it so `-m paper_eval` (or
    `-m 'not paper_eval'` in a mixed invocation) can select on it."""
    for item in items:
        item.add_marker(pytest.mark.paper_eval)


@pytest.fixture(scope="session")
def suite():
    """All 17 SPEC-like programs, fully evaluated (cached)."""
    return evaluate_suite(verbose=True)


@pytest.fixture(scope="session")
def games(suite):
    return {name: suite[name] for name in ("458.sjeng", "445.gobmk")}


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a regeneration step exactly once (simulation results are
    deterministic; repeated rounds add nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
