"""Table 3 — profiling and Equation 1 estimation for the chess example
(R = 5, BW = 80 Mbps).

Paper narrative: runGame/getPlayerTurn are filtered (interactive scanf);
getAITurn and its outer loop are profitable; the inner per-move work is
unprofitable because it is invoked 12x more often.
"""

import pytest

from repro.eval import render_table3, table3_estimation

from conftest import run_once


@pytest.fixture(scope="module")
def rows():
    return table3_estimation()


def test_table3_regeneration(benchmark, rows):
    text = run_once(benchmark, render_table3, rows)
    print("\n" + text)
    assert "T_gain" in text


def test_filter_narrative(benchmark, rows):
    by_name = run_once(benchmark,
                       lambda: {r.candidate: r for r in rows})
    assert by_name["runGame"].filtered        # scanf via getPlayerTurn
    assert by_name["getPlayerTurn"].filtered  # scanf directly
    assert not by_name["getAITurn"].filtered


def test_equation_one_narrative(benchmark, rows):
    by_name = run_once(benchmark,
                       lambda: {r.candidate: r for r in rows})
    ai = by_name["getAITurn"]
    per_move = by_name["searchMove"]
    # The AI turn is worth offloading...
    assert ai.t_gain > 0
    assert ai.t_ideal == pytest.approx(ai.exec_seconds * 0.8, rel=1e-6)
    # ...but the per-move search, with similar total time and far more
    # invocations, drowns in communication (the paper's for_j case).
    assert per_move.invocations > ai.invocations * 10
    assert per_move.t_comm > ai.t_comm * 10
    assert per_move.t_gain < 0
