"""Figure 6(b) — battery consumption normalized to local execution.

Paper: geomean battery savings of 77.2% (slow) and 82.0% (fast); every
program saves energy except 164.gzip, whose bulk communication burns more
than local computation would; remote-I/O-heavy programs (300.twolf,
445.gobmk, 464.h264ref, 482.sphinx3) save relatively less than ideal.
"""

import pytest

from repro.eval import (figure6a_execution_time, figure6b_battery,
                        geomean_row, render_figure6)

from conftest import run_once


@pytest.fixture(scope="module")
def rows(suite):
    return figure6b_battery(suite)


def test_figure6b_regeneration(benchmark, rows):
    text = run_once(benchmark, render_figure6, rows,
                    "Figure 6(b): normalized battery consumption")
    print("\n" + text)
    assert "geomean" in text


def test_geomean_savings_in_paper_band(benchmark, rows):
    gm = run_once(benchmark, geomean_row, rows)
    fast_saving = (1.0 - gm["fast"]) * 100
    slow_saving = (1.0 - gm["slow"]) * 100
    # paper: 82.0% fast, 77.2% slow
    assert 70.0 < fast_saving < 92.0, f"fast saving {fast_saving:.1f}%"
    assert 45.0 < slow_saving < 90.0, f"slow saving {slow_saving:.1f}%"
    assert fast_saving > slow_saving


def test_most_programs_save_energy(benchmark, rows):
    rows = run_once(benchmark, lambda: rows)
    saving_fast = [r for r in rows if r.normalized["fast"] < 1.0]
    assert len(saving_fast) == len(rows)


def test_remote_io_programs_save_less_than_ideal(benchmark, rows):
    """Paper Section 5.2: twolf / gobmk / h264ref / sphinx3 burn extra
    power servicing remote I/O, so their fast-network battery bars sit
    clearly above their ideal bars."""
    by_name = run_once(benchmark, lambda: {r.program: r for r in rows})
    for program in ("300.twolf", "445.gobmk", "464.h264ref",
                    "482.sphinx3"):
        row = by_name[program]
        assert row.normalized["fast"] > row.normalized["ideal"] * 1.1, \
            program


def test_battery_tracks_execution_time(benchmark, suite):
    """"Battery consumption results are very similar to the execution
    time results" — correlated rankings."""
    def ranks():
        time_rows = figure6a_execution_time(suite)
        energy_rows = figure6b_battery(suite)
        t = {r.program: r.normalized["fast"] for r in time_rows}
        e = {r.program: r.normalized["fast"] for r in energy_rows}
        return t, e
    t, e = run_once(benchmark, ranks)
    order_t = sorted(t, key=t.get)
    order_e = sorted(e, key=e.get)
    # rank displacement between the two orderings stays small on average
    displacement = sum(abs(order_t.index(p) - order_e.index(p))
                       for p in t) / len(t)
    assert displacement < 4.0
