"""Table 4 — details of the 17 offloaded programs.

Reproduction targets (structural, per program): a target corresponding to
the paper's is selected, coverage is high, invocation counts match the
paper's multi-invocation programs (188.ammp, 433.milc, 458.sjeng), and the
traffic ranking puts the compression/lattice programs on top.
"""

import pytest

from repro.eval import render_table4, table4_offload_details
from repro.workloads import workload

from conftest import run_once


@pytest.fixture(scope="module")
def rows(suite):
    return table4_offload_details(suite)


def test_table4_regeneration(benchmark, rows):
    text = run_once(benchmark, render_table4, rows)
    print("\n" + text)
    assert text.count("\n") >= 18


def test_every_program_has_a_target(benchmark, rows):
    rows = run_once(benchmark, lambda: rows)
    assert len(rows) == 17
    for row in rows:
        assert row.targets, f"{row.program} selected no offload target"


def test_targets_match_paper(benchmark, rows):
    by_name = run_once(benchmark, lambda: {r.program: r for r in rows})
    expectations = {
        "164.gzip": "spec_compress",
        "179.art": "scan_recognize",
        "300.twolf": "utemp",
        "401.bzip2": "spec_compress",
        "429.mcf": "global_opt",
        "433.milc": "update",
        "445.gobmk": "gtp_main_loop",
        "456.hmmer": "main_loop_serial",
        "458.sjeng": "think",
        "462.libquantum": "quantum_exp_mod_n",
        "464.h264ref": "encode_sequence",
        # loop targets (outlined):
        "183.equake": "main_for",
        "470.lbm": "main_for",
        "482.sphinx3": "main_for",
    }
    for program, expected in expectations.items():
        targets = by_name[program].targets
        assert expected in targets, f"{program}: {targets}"


def test_coverage_high(benchmark, rows):
    rows = run_once(benchmark, lambda: rows)
    # Paper: every program's offloaded targets cover >85% except ammp-like
    # split targets; we accept >=60% for all, >=85% for the majority.
    for row in rows:
        assert row.coverage_pct >= 60.0, \
            f"{row.program}: coverage {row.coverage_pct:.1f}%"
    high = [r for r in rows if r.coverage_pct >= 85.0]
    assert len(high) >= 12


def test_multi_invocation_programs(benchmark, rows):
    by_name = run_once(benchmark, lambda: {r.program: r for r in rows})
    # paper: think runs 3x (three user moves), update 2x (trajectories),
    # ammp's two targets total 3 invocations
    assert by_name["458.sjeng"].invocations == 3
    assert by_name["433.milc"].invocations == 2
    assert by_name["188.ammp"].invocations == 3


def test_traffic_ranking_matches_paper(benchmark, rows):
    """The paper's heaviest-traffic programs (470.lbm, 164.gzip,
    401.bzip2) must top our per-invocation traffic ranking too."""
    ranked = run_once(
        benchmark,
        lambda: sorted(rows, key=lambda r: r.traffic_mb_per_invocation,
                       reverse=True))
    top4 = {r.program for r in ranked[:4]}
    assert {"164.gzip", "401.bzip2", "470.lbm"} <= top4
    # hmmer communicates almost nothing (paper: 0.3 MB)
    hmmer = next(r for r in rows if r.program == "456.hmmer")
    assert hmmer.traffic_mb_per_invocation < \
        ranked[0].traffic_mb_per_invocation / 10


def test_fn_ptr_sites_present_where_paper_reports_them(benchmark, rows):
    by_name = run_once(benchmark, lambda: {r.program: r for r in rows})
    for program in ("177.mesa", "445.gobmk", "458.sjeng", "464.h264ref"):
        assert by_name[program].fn_ptr_sites > 0, program
