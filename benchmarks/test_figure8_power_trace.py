"""Figure 8 — power consumption over time for 458.sjeng and 445.gobmk.

Paper: sjeng's trace shows communication bursts (>2000 mW) only at the
beginning and end of each of its three think() invocations, idling near
the 1350 mW waiting level in between; gobmk draws ~2000 mW *continuously*
because it services remote I/O for the whole offload; and gobmk's radio
draws less per unit time on the slow network than the fast one (1700 vs
2000 mW) while taking longer.
"""

import pytest

from repro.eval import figure8_power_traces, render_figure8

from conftest import run_once


@pytest.fixture(scope="module")
def series(games):
    return figure8_power_traces(games, resolution=1e-3)


def _panel(series, program, network):
    return next(s for s in series
                if s.program == program and s.network == network)


def test_figure8_regeneration(benchmark, series):
    text = run_once(benchmark, render_figure8, series)
    print("\n" + text)
    assert "458.sjeng" in text and "445.gobmk" in text


def test_three_panels(benchmark, series):
    panels = run_once(benchmark,
                      lambda: {(s.program, s.network) for s in series})
    assert panels == {("458.sjeng", "fast"), ("445.gobmk", "fast"),
                      ("445.gobmk", "slow")}


def test_sjeng_bursty_wait_profile(benchmark, series):
    sjeng = run_once(benchmark, _panel, series, "458.sjeng", "fast")
    powers = [p for _, p in sjeng.samples]
    # communication bursts reach transmit levels...
    assert max(powers) >= 2000.0
    # ...but most of the offloaded time is spent waiting near 1350 mW
    waiting = sum(1 for p in powers if 1000.0 <= p <= 1500.0)
    assert waiting / len(powers) > 0.3
    # distinct burst episodes for the three think() invocations
    bursts = 0
    in_burst = False
    for p in powers:
        if p >= 1900.0 and not in_burst:
            bursts += 1
            in_burst = True
        elif p < 1900.0:
            in_burst = False
    assert bursts >= 3


def test_gobmk_continuous_io_power(benchmark, games):
    """gobmk keeps the radio busy with remote I/O for the duration of its
    offload (paper: "continuously spends 2000mW to manage remote I/O
    requests"), unlike sjeng whose radio only bursts at invocation
    boundaries."""
    def io_shares():
        out = {}
        for name in ("445.gobmk", "458.sjeng"):
            trace = games[name].sessions["fast"].power_trace
            by_state = trace.energy_by_state()
            total = trace.total_energy_mj
            out[name] = by_state.get("remote_io", 0.0) / total
        return out
    shares = run_once(benchmark, io_shares)
    assert shares["445.gobmk"] > 5 * shares["458.sjeng"]
    assert shares["445.gobmk"] > 0.02


def test_gobmk_slow_network_longer_but_lower_radio_power(benchmark,
                                                         series):
    def stats():
        fast = _panel(series, "445.gobmk", "fast")
        slow = _panel(series, "445.gobmk", "slow")
        return fast, slow
    fast, slow = run_once(benchmark, stats)
    # slower network -> longer trace
    assert slow.samples[-1][0] > fast.samples[-1][0]
    # the 802.11n radio's transmit floor is lower (1700 vs 2000 mW)
    fast_tx = [p for _, p in fast.samples if p >= 1600.0]
    slow_tx = [p for _, p in slow.samples if p >= 1600.0]
    if fast_tx and slow_tx:
        assert min(slow_tx) <= min(fast_tx)


def test_energy_consistent_with_trace(benchmark, games):
    result = run_once(benchmark, lambda: games["458.sjeng"])
    session = result.sessions["fast"]
    assert session.power_trace.total_energy_mj == pytest.approx(
        session.energy_mj)
