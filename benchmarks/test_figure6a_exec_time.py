"""Figure 6(a) — whole-program execution time normalized to local
execution, under slow/fast/ideal offloading.

Paper: geomean time reductions of 82.0% (slow) and 84.4% (fast), i.e.
speedups of ~5.6x and ~6.4x, bounded by their testbed's mobile/server gap;
communication-bound programs (164.gzip & co.) are *not* offloaded on the
slow network (the ``*`` bars at 1.0).

Our simulated gap is R = 5.8, so the reproduction targets the *shape*:
ideal < fast < slow < 1.0 normalized time, substantial geomean speedups,
and the same per-program winners/losers.
"""

import pytest

from repro.eval import (figure6a_execution_time, geomean, geomean_row,
                        render_figure6)

from conftest import run_once


@pytest.fixture(scope="module")
def rows(suite):
    return figure6a_execution_time(suite)


def test_figure6a_regeneration(benchmark, rows):
    text = run_once(benchmark, render_figure6, rows,
                    "Figure 6(a): normalized execution time")
    print("\n" + text)
    assert "geomean" in text


def test_every_program_speeds_up_or_breaks_even(benchmark, rows):
    rows = run_once(benchmark, lambda: rows)
    for row in rows:
        for label in ("slow", "fast", "ideal"):
            assert row.normalized[label] <= 1.02, \
                f"{row.program} slowed down on {label}"


def test_ordering_ideal_fast_slow(benchmark, rows):
    gm = run_once(benchmark, geomean_row, rows)
    assert gm["ideal"] <= gm["fast"] <= gm["slow"] < 1.0


def test_geomean_speedups_substantial(benchmark, rows):
    gm = run_once(benchmark, geomean_row, rows)
    # paper: 6.42x fast / 5.56x slow with their hardware gap; ours is
    # bounded by R=5.8 — require >3x fast and >2x slow.
    assert 1.0 / gm["fast"] > 3.0
    assert 1.0 / gm["slow"] > 2.0
    assert 1.0 / gm["ideal"] > 4.0


def test_comm_heavy_programs_decline_on_slow(benchmark, rows):
    """The paper's star-marked bars: the dynamic estimator refuses the
    slow network for the compression programs."""
    by_name = run_once(benchmark, lambda: {r.program: r for r in rows})
    for program in ("164.gzip", "401.bzip2"):
        row = by_name[program]
        assert not row.offloaded["slow"], f"{program} offloaded on slow"
        assert row.normalized["slow"] == pytest.approx(1.0, abs=0.05)
        # ...but the fast network is worth it
        assert row.offloaded["fast"]
        assert row.normalized["fast"] < 0.85


def test_near_ideal_class(benchmark, rows):
    """vpr / equake / hmmer / libquantum communicate little: their fast-
    network bars sit close to the ideal bars (paper Section 5.1)."""
    by_name = run_once(benchmark, lambda: {r.program: r for r in rows})
    for program in ("175.vpr", "183.equake", "456.hmmer",
                    "462.libquantum"):
        row = by_name[program]
        assert row.normalized["fast"] <= row.normalized["ideal"] * 1.35, \
            program


def test_interactive_chess_engine_wins_even_slow(benchmark, suite):
    """Paper: 458.sjeng (a user-interactive chess engine invoking think
    multiple times) still speeds up on the slow network."""
    result = run_once(benchmark, lambda: suite["458.sjeng"])
    assert result.speedup("slow") > 1.5
    assert result.sessions["slow"].offloaded_invocations == 3
