"""Table 1 — movement computation time of the chess game on the
smartphone and the desktop, across difficulty levels.

Paper: the smartphone is 5.36x-5.89x slower at every difficulty.
Reproduction target: a stable gap in the same band, with absolute times
growing with difficulty.
"""

import pytest

from repro.eval import render_table1, table1_chess_gap

from conftest import run_once


@pytest.fixture(scope="module")
def rows():
    return table1_chess_gap()


def test_table1_regeneration(benchmark, rows):
    text = run_once(benchmark, render_table1, rows)
    print("\n" + text)
    assert "Table 1" in text and "Gap" in text


def test_gap_in_paper_band(benchmark, rows):
    gaps = run_once(benchmark, lambda: [r.gap for r in rows])
    for difficulty, gap in zip((7, 8, 9, 10, 11), gaps):
        assert 4.0 < gap < 8.0, f"difficulty {difficulty}: gap {gap:.2f}"
    # the gap is roughly constant across difficulties (paper: 5.36-5.89)
    assert max(gaps) / min(gaps) < 1.5


def test_times_grow_with_difficulty(benchmark, rows):
    phone, desktop = run_once(
        benchmark,
        lambda: ([r.smartphone_seconds for r in rows],
                 [r.desktop_seconds for r in rows]))
    assert phone == sorted(phone)
    assert desktop == sorted(desktop)
    assert phone[-1] > phone[0] * 10  # deep search dominates
