#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every ``*.md`` file in the repository (skipping dot-directories)
for inline links and images — ``[text](target)`` — and verifies that
each relative target resolves to a file that exists, from the linking
file's own directory.  External links (``http://``, ``https://``,
``mailto:``), pure in-page anchors (``#section``) and absolute URLs are
out of scope; a relative target's ``#fragment`` suffix is stripped
before the existence check (section anchors are not verified, only the
file half of the link).

Exit status 0 when every link resolves, 1 otherwise (one diagnostic
line per broken link: ``file:line: broken link -> target``).  CI runs
this next to the test suite; ``tests/test_docs_links.py`` wraps it so
a broken link also fails the tier-1 run locally.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link or image: ``[text](target)`` / ``![alt](target)``.
#: The target group stops at whitespace or ')' so titles
#: (``[t](file "title")``) keep only the path half.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*([^)\s]+)[^)]*\)")

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.relative_to(root).parts):
            continue
        yield path


def check_file(path: Path, root: Path) -> list:
    """Broken-link diagnostics for one markdown file."""
    problems = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("```"):
            if in_fence:
                # Per CommonMark a *closing* fence carries no info
                # string — a ```lang line inside a fence is content
                # (SNIPPETS.md nests fenced markdown inside a fence).
                if stripped.strip("`") == "":
                    in_fence = False
            else:
                in_fence = True
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            if "://" in target:
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if file_part.startswith("/"):
                resolved = root / file_part.lstrip("/")
            else:
                resolved = path.parent / file_part
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: "
                    f"broken link -> {target}")
    return problems


def main(argv: list) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent)
    problems = []
    checked = 0
    for path in iter_markdown(root):
        checked += 1
        problems.extend(check_file(path, root))
    for line in problems:
        print(line, file=sys.stderr)
    print(f"check_doc_links: {checked} files, "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
