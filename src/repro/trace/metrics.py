"""Named runtime metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is the aggregate companion of the event
tracer: where the tracer answers "what happened, in order", the registry
answers "how much, in total".  Metrics are plain Python objects with no
locking (the simulator is single-threaded) and no external dependencies.

Metric names are dotted paths (``comm.messages``, ``uva.cod_faults``)
grouped by their first component when rendered; the canonical set emitted
by the runtime is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

Number = Union[int, float]

#: Log-bucket growth factor: four buckets per octave (2 ** 0.25), fine
#: enough that a nearest-rank percentile read from bucket bounds lands
#: within ~19% of the true sample value across the full dynamic range
#: (microsecond transfers to multi-second queue waits) while keeping the
#: bucket map tiny.
LOG_BUCKET_GROWTH = 2.0 ** 0.25
_LOG_GROWTH_LN = math.log(LOG_BUCKET_GROWTH)


@dataclass
class Counter:
    """A monotonically increasing sum (counts or accumulated seconds)."""

    name: str
    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value; remembers its most recent set."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary statistics plus a log-bucketed distribution.

    Alongside count / sum / min / max / mean, every positive observation
    is counted into a logarithmic bucket (``LOG_BUCKET_GROWTH`` wide), so
    the histogram answers percentile queries (:meth:`percentile`) and can
    be merged across devices (:meth:`merge`) without retaining samples —
    the fleet-aggregation substrate of ``repro.trace.analysis``.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    zeros: int = 0                      # observations <= 0
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            idx = math.floor(math.log(value) / _LOG_GROWTH_LN)
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
        else:
            self.zeros += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate, ``q`` in ``[0, 1]``.

        Non-positive observations report as their recorded value floor
        (0.0, or ``min`` when negative values were observed); positive
        ones report the upper bound of their log bucket, clamped into
        ``[min, max]`` so single-sample and extreme queries are exact.
        Returns 0.0 on an empty histogram.  Deterministic: same
        observations (in any order) give the same answer.
        """
        if not self.count:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        rank = max(1, min(self.count, math.ceil(q * self.count)))
        if rank <= self.zeros:
            return self.min if self.min < 0.0 else 0.0
        cumulative = self.zeros
        for idx in sorted(self.buckets):
            cumulative += self.buckets[idx]
            if cumulative >= rank:
                upper = LOG_BUCKET_GROWTH ** (idx + 1)
                return min(max(upper, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always lands

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram (in place).

        The merged result is identical to having observed both streams on
        one histogram — the cross-device aggregation primitive.  Returns
        ``self`` for chaining.
        """
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.zeros += other.zeros
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        return self


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    when one with that name is already registered; registering the same
    name under a different kind raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get_or_create(self, name: str, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def value(self, name: str, default: Number = 0) -> Number:
        """The scalar value of a counter/gauge (histograms: the sum)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.total
        return metric.value

    def snapshot(self) -> Dict[str, dict]:
        """A plain-dict dump of every metric (JSON-serializable)."""
        out: Dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"kind": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"kind": "gauge", "value": metric.value}
            else:
                out[name] = {"kind": "histogram", "count": metric.count,
                             "sum": metric.total,
                             "min": metric.min if metric.count else 0.0,
                             "max": metric.max if metric.count else 0.0,
                             "mean": metric.mean,
                             "p50": metric.percentile(0.50),
                             "p95": metric.percentile(0.95),
                             "p99": metric.percentile(0.99)}
        return out

    def clear(self) -> None:
        self._metrics.clear()


class _NullMetric:
    """Accepts every update and records nothing (disabled tracing)."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    zeros = 0
    buckets: Dict[int, int] = {}

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def merge(self, other) -> "_NullMetric":
        return self


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry(MetricsRegistry):
    """Registry variant whose metrics discard all updates.

    Shared by :data:`repro.trace.NULL_TRACER` so that instrumentation
    sites that forget the ``tracer.enabled`` guard still cannot leak
    state into the disabled singleton.
    """

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_METRIC

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_METRIC

    def histogram(self, name: str):  # type: ignore[override]
        return _NULL_METRIC
