"""Structured runtime observability for the Native Offloader.

The paper's entire evaluation (Figures 6-8, Tables 3-5) is built on
*observing* the runtime: per-phase execution breakdowns, page-fault
counts, wire traffic, offload/decline decisions.  This package gives the
simulated runtime the same first-class event log that real offloading
systems ship:

* :mod:`repro.trace.tracer` — ring-buffered :class:`TraceEvent` records
  with monotonic simulated time, a category, and a key/value payload,
  behind a :class:`Tracer` that is a strict no-op when disabled.
* :mod:`repro.trace.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges and histograms accumulated alongside the events.
* :mod:`repro.trace.export` — JSONL import/export and a Chrome
  ``chrome://tracing`` / Perfetto-compatible export.
* :mod:`repro.trace.timeline` — the human-readable event timeline and
  metrics summary behind ``python -m repro trace``, plus the
  trace-derived per-phase totals that cross-check
  :meth:`SessionResult.breakdown`.
* :mod:`repro.trace.analysis` — the analysis engine behind
  ``python -m repro report``: span reconstruction, critical-path
  attribution, fleet aggregation, SLO findings and the
  baseline-diffing regression gate.

Tracing is **off by default** (``SessionOptions.enable_tracing``); the
disabled path shares a singleton :data:`NULL_TRACER` whose ``enabled``
flag gates every instrumentation site, so benchmark numbers are
bit-identical with tracing off.  The full event schema is documented in
``docs/trace-schema.md``.
"""

from .tracer import (CATEGORIES, CORE_CATEGORIES, NULL_TRACER, NullTracer,
                     TraceEvent, Tracer)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .export import (events_from_jsonl, events_to_chrome_json,
                     events_to_jsonl, load_jsonl, read_jsonl_meta,
                     write_chrome_trace, write_jsonl)
from .timeline import (phase_totals, render_metrics, render_timeline,
                       traffic_totals)

__all__ = [
    "CATEGORIES", "CORE_CATEGORIES", "NULL_TRACER", "NullTracer",
    "TraceEvent", "Tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "events_from_jsonl", "events_to_chrome_json", "events_to_jsonl",
    "load_jsonl", "read_jsonl_meta", "write_chrome_trace", "write_jsonl",
    "phase_totals", "render_metrics", "render_timeline", "traffic_totals",
]
