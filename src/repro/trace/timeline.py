"""Human-readable trace rendering and trace-derived aggregates.

``render_timeline`` prints the event stream the way edge-offloading
simulators log their decision engines: one timestamped line per event
with the load-bearing payload fields inlined.  ``phase_totals`` and
``traffic_totals`` re-derive the session's per-phase time breakdown and
byte accounting *from the events alone*, which is what makes the trace
the single source of truth: ``tests/test_trace.py`` asserts these sums
match :meth:`SessionResult.breakdown` and ``CommStats`` exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .metrics import MetricsRegistry
from .tracer import TraceEvent

# Payload keys promoted to the front of a timeline line, per category.
_LEAD_KEYS: Dict[str, Sequence[str]] = {
    "decision": ("offloaded", "reason", "gain_seconds"),
    "estimate": ("gain_seconds", "t_mobile", "t_comm"),
    "offload.init": ("prefetch_pages", "bytes_to_server"),
    "offload.exec": ("instructions", "cod_faults"),
    "offload.finalize": ("writeback_pages", "bytes_to_mobile"),
    "uva.prefetch": ("pages", "bytes"),
    "uva.fault": ("page", "bytes"),
    "uva.writeback": ("pages", "bytes"),
    "uva.cache": ("kept", "invalidated", "hits", "wasted"),
    "uva.delta": ("pages", "records", "encoded_bytes", "saved_bytes"),
    "comm.send": ("payload_bytes", "wire_bytes", "saved_bytes"),
    "comm.stream": ("payload_bytes", "wire_bytes"),
    "comm.rtt": ("request_bytes", "response_bytes"),
    "comm.adjust": ("delta_seconds",),
    "rio.op": ("bytes",),
    "fnptr.window": ("lookups", "seconds"),
}


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e-3:
            return f"{value:.6f}".rstrip("0").rstrip(".")
        return f"{value:.3e}"
    return str(value)


def _fmt_payload(event: TraceEvent) -> str:
    lead = _LEAD_KEYS.get(event.category, ())
    keys = [k for k in lead if k in event.payload]
    keys += [k for k in sorted(event.payload) if k not in keys]
    return " ".join(f"{k}={_fmt_value(event.payload[k])}" for k in keys)


def format_event(event: TraceEvent) -> str:
    """One timeline line: ``[t] category name (dur) key=value ...``."""
    dur = f" +{event.dur * 1e3:.4f}ms" if event.dur > 0 else ""
    detail = _fmt_payload(event)
    return (f"[{event.t * 1e3:12.4f} ms] {event.category:<16s} "
            f"{event.name:<20s}{dur}"
            f"{('  ' + detail) if detail else ''}")


def render_timeline(events: Iterable[TraceEvent],
                    categories: Optional[Sequence[str]] = None,
                    tail: Optional[int] = None) -> str:
    """The full human-readable timeline, optionally filtered.

    ``categories`` restricts output to the given event categories;
    ``tail`` keeps only the last N lines (with an elision marker).
    """
    selected = [e for e in events
                if categories is None or e.category in categories]
    lines = [format_event(e) for e in selected]
    if tail is not None and len(lines) > tail:
        omitted = len(lines) - tail
        lines = [f"... ({omitted} earlier events omitted; "
                 f"use --jsonl for the full trace)"] + lines[-tail:]
    return "\n".join(lines)


def render_metrics(metrics: MetricsRegistry) -> str:
    """A grouped ``metric = value`` summary table."""
    lines: List[str] = ["metrics"]
    last_group = None
    for name in metrics.names():
        group = name.split(".", 1)[0]
        if group != last_group:
            lines.append(f"  [{group}]")
            last_group = group
        snap = metrics.snapshot()[name]
        if snap["kind"] == "histogram":
            lines.append(
                f"    {name:<32s} count={snap['count']} "
                f"sum={_fmt_value(snap['sum'])} "
                f"mean={_fmt_value(snap['mean'])} "
                f"p95={_fmt_value(snap['p95'])} "
                f"min={_fmt_value(snap['min'])} "
                f"max={_fmt_value(snap['max'])}")
        else:
            lines.append(f"    {name:<32s} {_fmt_value(snap['value'])}")
    return "\n".join(lines)


# -- trace-derived aggregates -------------------------------------------
def phase_totals(events: Iterable[TraceEvent]) -> Dict[str, float]:
    """Re-derive the Figure 7 phase breakdown from trace events.

    Mirrors :meth:`SessionResult.breakdown` exactly:

    * ``communication`` — every second the communication manager
      charged: message sends, output streams, control round trips, plus
      the signed pipelined-remote-input corrections (``comm.adjust``).
    * ``remote_io`` — the forwarding cost of each ``rio.op``.
    * ``fn_ptr_translation`` — the per-invocation ``fnptr.window`` sums.
    * ``computation`` — mobile compute (from ``session.end``) plus raw
      server execution time minus the fn-ptr time charged inside it,
      clamped at zero like the session does.
    """
    comm = 0.0
    rio = 0.0
    fnptr = 0.0
    server_raw = 0.0
    mobile = 0.0
    for event in events:
        cat = event.category
        if cat in ("comm.send", "comm.stream", "comm.rtt"):
            comm += event.dur
        elif cat == "comm.adjust":
            comm += event.payload.get("delta_seconds", 0.0)
        elif cat == "rio.op":
            rio += event.dur
        elif cat == "fnptr.window":
            fnptr += event.payload.get("seconds", 0.0)
        elif cat == "offload.exec":
            server_raw += event.dur
        elif cat == "session.end":
            mobile = event.payload.get("mobile_compute_seconds", 0.0)
    return {
        "computation": mobile + max(server_raw - fnptr, 0.0),
        "fn_ptr_translation": fnptr,
        "remote_io": rio,
        "communication": comm,
    }


def traffic_totals(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Re-derive the byte accounting from trace events.

    Every payload byte crosses the communication manager exactly once,
    so summing the comm-layer events reproduces ``CommStats``; the
    UVA-layer numbers (prefetch / write-back / CoD) are *attributions*
    of subsets of that same traffic, not additional bytes.  See
    ``docs/trace-schema.md`` ("Byte accounting").
    """
    totals = {
        "payload_bytes_to_server": 0, "payload_bytes_to_mobile": 0,
        "wire_bytes_to_server": 0, "wire_bytes_to_mobile": 0,
        "messages": 0, "compression_saved_bytes": 0,
        "uva_prefetch_bytes": 0, "uva_writeback_bytes": 0,
        "uva_cod_bytes": 0, "rio_bytes": 0,
        "uva_delta_saved_bytes": 0,
    }
    for event in events:
        p = event.payload
        cat = event.category
        if cat == "comm.send":
            key = "server" if event.name == "to_server" else "mobile"
            totals[f"payload_bytes_to_{key}"] += p.get("payload_bytes", 0)
            totals[f"wire_bytes_to_{key}"] += p.get("wire_bytes", 0)
            totals["messages"] += p.get("messages", 0)
            totals["compression_saved_bytes"] += p.get("saved_bytes", 0)
        elif cat == "comm.stream":
            totals["payload_bytes_to_mobile"] += p.get("payload_bytes", 0)
            totals["wire_bytes_to_mobile"] += p.get("wire_bytes", 0)
            totals["messages"] += 1
        elif cat == "comm.rtt":
            totals["payload_bytes_to_server"] += p.get("request_bytes", 0)
            totals["payload_bytes_to_mobile"] += p.get("response_bytes", 0)
            totals["wire_bytes_to_server"] += p.get("wire_request_bytes", 0)
            totals["wire_bytes_to_mobile"] += p.get("wire_response_bytes",
                                                    0)
            totals["messages"] += 2
        elif cat == "uva.prefetch":
            totals["uva_prefetch_bytes"] += p.get("bytes", 0)
        elif cat == "uva.writeback":
            totals["uva_writeback_bytes"] += p.get("bytes", 0)
        elif cat == "uva.fault":
            totals["uva_cod_bytes"] += p.get("bytes", 0)
        elif cat == "uva.delta":
            totals["uva_delta_saved_bytes"] += p.get("saved_bytes", 0)
        elif cat == "rio.op":
            totals["rio_bytes"] += p.get("bytes", 0)
    return totals
