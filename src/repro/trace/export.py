"""Trace serialization: JSONL and Chrome-tracing exports.

JSONL is the interchange format — one JSON object per line, stable keys
(``t``, ``seq``, ``cat``, ``name``, ``dur``, ``args``), round-trippable
via :func:`events_from_jsonl`.  The Chrome export produces the JSON
array format understood by ``chrome://tracing`` and Perfetto's legacy
loader: events with a modeled duration become complete (``"ph": "X"``)
slices, instant events become ``"ph": "i"`` marks, with microsecond
timestamps as the format requires.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .tracer import TraceEvent

# Chrome trace viewers group slices by (pid, tid); we map the runtime's
# logical actors onto fixed "threads" of one simulated process.
_CHROME_TRACKS: Dict[str, int] = {
    "session": 0, "decision": 1, "estimate": 1, "offload": 2,
    "uva": 3, "comm": 4, "rio": 5, "fnptr": 6,
}


def _track(category: str) -> int:
    return _CHROME_TRACKS.get(category.split(".", 1)[0], 7)


# -- JSONL ---------------------------------------------------------------
def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events, one compact JSON object per line."""
    return "\n".join(
        json.dumps(e.to_dict(), separators=(",", ":"), sort_keys=True)
        for e in events)


def events_from_jsonl(text: str) -> List[TraceEvent]:
    """Parse a JSONL trace back into :class:`TraceEvent` records."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def write_jsonl(events: Iterable[TraceEvent], path: str,
                dropped: int = 0) -> int:
    """Write a JSONL trace file; returns the number of events written.

    The first line is a ``#`` header carrying the stream metadata —
    event count and the tracer's ring-buffer drop counter — so a reader
    can tell a complete trace from a truncated one without the live
    :class:`~repro.trace.tracer.Tracer`.  ``events_from_jsonl`` skips
    ``#`` lines, keeping the format round-trippable.
    """
    events = list(events)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# repro-trace v1 events={len(events)} "
                 f"dropped={dropped}\n")
        text = events_to_jsonl(events)
        if text:
            fh.write(text + "\n")
    return len(events)


def load_jsonl(path: str) -> List[TraceEvent]:
    with open(path, "r", encoding="utf-8") as fh:
        return events_from_jsonl(fh.read())


def read_jsonl_meta(path: str) -> Dict[str, int]:
    """The header metadata of a JSONL trace (``{}`` for header-less
    files written before the header existed — their drop count is
    unknown, not zero)."""
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
    meta: Dict[str, int] = {}
    if first.startswith("# repro-trace"):
        for token in first.split():
            if "=" in token:
                key, _, value = token.partition("=")
                try:
                    meta[key] = int(value)
                except ValueError:
                    pass
    return meta


# -- Chrome tracing ------------------------------------------------------
def events_to_chrome_json(events: Iterable[TraceEvent],
                          process_name: str = "repro offload session",
                          dropped: int = 0) -> str:
    """Render events in the Chrome Trace Event JSON-array format."""
    events = list(events)
    chrome: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }, {
        "name": "trace_meta", "ph": "M", "pid": 0, "tid": 0,
        "args": {"events": len(events), "dropped": dropped},
    }]
    for track_name, tid in sorted(_CHROME_TRACKS.items(),
                                  key=lambda kv: kv[1]):
        chrome.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid, "args": {"name": track_name}})
    for event in events:
        record = {
            "name": f"{event.category}:{event.name}",
            "cat": event.category,
            "pid": 0,
            "tid": _track(event.category),
            "ts": event.t * 1e6,          # microseconds
            "args": dict(event.payload, seq=event.seq),
        }
        if event.dur > 0:
            record["ph"] = "X"
            record["dur"] = event.dur * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"             # thread-scoped instant
        chrome.append(record)
    return json.dumps(chrome, separators=(",", ":"))


def write_chrome_trace(events: Iterable[TraceEvent], path: str,
                       process_name: str = "repro offload session",
                       dropped: int = 0) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(events_to_chrome_json(events, process_name,
                                       dropped=dropped))
