"""Span reconstruction: fold the flat event stream into nested spans.

The tracer emits a *flat* stream of :class:`~repro.trace.TraceEvent`
records; the paper's evaluation (Figures 6-8, Tables 3-5) and every
question the report answers ("where did this invocation's wall clock
go?") need the stream folded back into its natural nesting:

    session (one per ``sid``)
      └─ invocation (one per dynamic offload decision site execution)
           └─ phase (decide / queue / init / exec / finalize /
                     reject / abort / fallback)
                └─ the raw events

Reconstruction is a deterministic state machine over the per-``sid``
stream in emission (``seq``) order, mirroring the runtime's control flow
in ``repro/runtime/backend.py``:

* an invocation opens at its first ``estimate`` or ``decision`` event;
* a declined decision closes it immediately (the local run of a declined
  target is ordinary mobile compute, not an offload span);
* an offloaded decision advances through ``queue`` (fleet admission
  wait), ``init`` (everything up to and including ``offload.init``),
  ``exec`` (up to ``offload.exec``; ``fnptr.window`` trails the exec
  marker but belongs to the window), ``finalize`` (up to
  ``offload.finalize``);
* ``offload.reject`` / ``offload.abort`` divert to their own phases and
  the closing ``offload.fallback`` ends the invocation.

**Lossless invariant**: every event of the input stream is claimed by
exactly one phase (or by the session span itself, for
``session.start``/``session.end``), and per-span duration sums reconcile
with the ``session.end`` accounting totals to the same ``1e-9``
tolerance as :func:`repro.trace.phase_totals` —
:func:`validate_sessions` checks both and returns the discrepancies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..tracer import TraceEvent

#: Tolerance for duration reconciliation — matches the existing
#: phase/traffic reconciliation tests (tests/test_trace.py).
RECONCILE_TOLERANCE = 1e-9

#: Phase names in canonical order (for deterministic serialization).
PHASES = ("decide", "queue", "init", "exec", "finalize",
          "reject", "abort", "fallback")

#: Invocation outcome classification.
STATUSES = ("offloaded", "declined", "rejected", "aborted")


@dataclass
class PhaseSpan:
    """One phase of an invocation and the raw events it claimed."""

    name: str                       # one of PHASES
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def start(self) -> float:
        return min(e.t for e in self.events) if self.events else 0.0

    @property
    def end(self) -> float:
        return max(e.t + e.dur for e in self.events) if self.events \
            else 0.0

    @property
    def anchor_seconds(self) -> float:
        """The phase's modeled duration, from its anchor event.

        ``queue``/``init``/``exec``/``finalize`` each carry anchor
        events (``offload.queue`` / ``offload.init`` or the plan's
        ``offload.scatter`` / ``offload.exec`` — one per surviving
        shard of a scatter/gather plan / ``offload.finalize`` or the
        plan's ``offload.gather``) whose ``dur`` is the phase's charged
        wall time; phases without an anchor report 0.  For a plan's
        exec phase the sum over shard anchors is *serial* server time;
        the charged wall is the max (docs/parallel-offload.md).
        """
        anchors = {"queue": ("offload.queue",),
                   "init": ("offload.init", "offload.scatter"),
                   "exec": ("offload.exec",),
                   "finalize": ("offload.finalize", "offload.gather")}
        categories = anchors.get(self.name)
        if categories is None:
            return 0.0
        return sum(e.dur for e in self.events
                   if e.category in categories)


@dataclass
class InvocationSpan:
    """One dynamic offload decision site execution."""

    index: int                      # 0-based within the session
    target: str
    sid: Optional[str]
    status: str = "declined"        # one of STATUSES
    reason: Optional[str] = None    # decision payload reason
    gain_seconds: Optional[float] = None
    abort_phase: Optional[str] = None
    phases: Dict[str, PhaseSpan] = field(default_factory=dict)

    def phase(self, name: str) -> PhaseSpan:
        span = self.phases.get(name)
        if span is None:
            span = PhaseSpan(name)
            self.phases[name] = span
        return span

    def events(self) -> List[TraceEvent]:
        out: List[TraceEvent] = []
        for name in PHASES:
            span = self.phases.get(name)
            if span is not None:
                out.extend(span.events)
        return out

    @property
    def start(self) -> float:
        events = self.events()
        return min(e.t for e in events) if events else 0.0

    @property
    def end(self) -> float:
        events = self.events()
        return max(e.t + e.dur for e in events) if events else 0.0

    @property
    def wall_seconds(self) -> float:
        """The invocation's span on the device timeline.  An upper
        bound: ``end`` extends to ``t + dur`` of the last event, and a
        dur later re-attributed by ``comm.adjust`` (pipelined remote
        input) can overstate the charged time."""
        return max(self.end - self.start, 0.0)

    @property
    def queue_seconds(self) -> float:
        phase = self.phases.get("queue")
        return phase.anchor_seconds if phase else 0.0


@dataclass
class SessionSpan:
    """One device session: the root of the span tree for one ``sid``."""

    sid: Optional[str]
    program: str = ""
    start: float = 0.0
    end: float = 0.0
    partial: bool = False           # stream truncated (no session.start)
    events: List[TraceEvent] = field(default_factory=list)  # own events
    invocations: List[InvocationSpan] = field(default_factory=list)
    totals: Dict[str, object] = field(default_factory=dict)  # session.end

    def event_count(self) -> int:
        return len(self.events) + sum(len(inv.events())
                                      for inv in self.invocations)


class SpanReconstructionError(ValueError):
    """The event stream violates the runtime's emission protocol."""


# Categories that always belong to the *exec* window even though the
# runtime emits them after the ``offload.exec`` anchor (the fn-ptr
# window is aggregated and flushed once the server returns).
_TRAILS_EXEC = ("fnptr.window",)


def _close_invocation(session: SessionSpan,
                      inv: Optional[InvocationSpan]) -> None:
    if inv is not None:
        session.invocations.append(inv)


def reconstruct_session(events: Iterable[TraceEvent],
                        sid: Optional[str] = None) -> SessionSpan:
    """Fold one session's events (one ``sid``, ``seq`` order) into its
    span tree.  Tolerant of a ring-buffer-truncated head: a stream that
    does not open with ``session.start`` is marked ``partial`` and any
    events that precede the first reconstructible invocation are owned
    by the session span."""
    session = SessionSpan(sid=sid)
    inv: Optional[InvocationSpan] = None
    phase = "decide"
    saw_start = False
    index = 0

    for event in events:
        cat = event.category
        if cat == "session.start":
            session.program = event.name
            session.start = event.t
            session.events.append(event)
            saw_start = True
            continue
        if cat == "session.end":
            if inv is not None:
                # Truncation or a protocol break left an open invocation.
                inv.status = inv.status or "declined"
                _close_invocation(session, inv)
                inv = None
            session.program = session.program or event.name
            session.end = event.t + event.dur
            session.totals = dict(event.payload)
            session.events.append(event)
            continue

        if inv is None:
            if cat in ("estimate", "decision"):
                inv = InvocationSpan(index=index, target=event.name,
                                     sid=sid)
                index += 1
                phase = "decide"
            else:
                # No open invocation: pre-invocation noise (possible on
                # a truncated stream) is owned by the session span.
                session.events.append(event)
                continue

        if cat == "decision":
            inv.target = event.name
            inv.reason = event.payload.get("reason")
            inv.gain_seconds = event.payload.get("gain_seconds")
            inv.phase("decide").events.append(event)
            if event.payload.get("offloaded"):
                inv.status = "offloaded"
                phase = "init"
            else:
                inv.status = "declined"
                _close_invocation(session, inv)
                inv = None
            continue
        if cat == "offload.queue":
            inv.phase("queue").events.append(event)
            continue
        if cat in ("offload.init", "offload.scatter"):
            # offload.scatter is the plan's init anchor
            # (docs/parallel-offload.md)
            inv.phase("init").events.append(event)
            phase = "exec"
            continue
        if cat == "offload.exec":
            # A scatter/gather plan emits one exec anchor per surviving
            # shard; each belongs to the exec phase regardless of where
            # the phase cursor already advanced to.
            inv.phase("exec").events.append(event)
            phase = "finalize"
            continue
        if cat in _TRAILS_EXEC:
            inv.phase("exec").events.append(event)
            continue
        if cat in ("offload.finalize", "offload.gather"):
            # offload.gather closes a plan exactly as offload.finalize
            # closes a classic invocation; the plan's straggler-replay
            # events (offload.straggler) precede it by construction.
            inv.phase("finalize").events.append(event)
            _close_invocation(session, inv)
            inv = None
            continue
        if cat == "offload.reject":
            inv.status = "rejected"
            inv.phase("reject").events.append(event)
            phase = "fallback"
            continue
        if cat == "offload.abort":
            inv.status = "aborted"
            inv.abort_phase = event.payload.get("phase")
            inv.phase("abort").events.append(event)
            phase = "fallback"
            continue
        if cat == "offload.fallback":
            inv.phase("fallback").events.append(event)
            _close_invocation(session, inv)
            inv = None
            continue
        if cat == "estimate" and phase != "decide":
            # record_offload_failure re-estimates mid-abort: the event
            # belongs to the failing invocation, not a new one.
            inv.phase("abort").events.append(event)
            inv.status = "aborted"
            phase = "fallback"
            continue
        # Everything else (uva.*, comm.*, transport.*, rio.op, estimate
        # in the decide window) rides the current phase.
        inv.phase(phase).events.append(event)

    if inv is not None:         # truncated tail: keep what we saw
        _close_invocation(session, inv)
    session.partial = not saw_start or not session.totals
    if not session.events and not session.invocations:
        session.partial = True
    if session.end == 0.0:
        ends = [i.end for i in session.invocations] + \
            [e.t + e.dur for e in session.events]
        session.end = max(ends) if ends else 0.0
    return session


def reconstruct_sessions(events: Iterable[TraceEvent]
                         ) -> List[SessionSpan]:
    """Group a (possibly merged fleet) stream by ``sid`` and reconstruct
    each session's span tree.  Sessions are ordered by first appearance
    in the stream, which for merged fleet traces is global-time order."""
    by_sid: Dict[Optional[str], List[TraceEvent]] = {}
    order: List[Optional[str]] = []
    for event in events:
        if event.sid not in by_sid:
            by_sid[event.sid] = []
            order.append(event.sid)
        by_sid[event.sid].append(event)
    sessions = []
    for sid in order:
        stream = sorted(by_sid[sid], key=lambda e: e.seq)
        sessions.append(reconstruct_session(stream, sid=sid))
    return sessions


def _comm_seconds(events: Iterable[TraceEvent]) -> float:
    total = 0.0
    for e in events:
        if e.category in ("comm.send", "comm.stream", "comm.rtt"):
            total += e.dur
        elif e.category == "comm.adjust":
            total += e.payload.get("delta_seconds", 0.0)
    return total


def validate_sessions(sessions: List[SessionSpan],
                      events: List[TraceEvent],
                      tolerance: float = RECONCILE_TOLERANCE
                      ) -> List[str]:
    """The lossless invariant, as a list of discrepancies (empty = ok).

    * every input event is claimed by exactly one span (conservation:
      claimed count == stream length; the construction claims each event
      at most once by design, so equality implies the bijection);
    * per-session duration sums reconcile with the ``session.end``
      accounting: communication, fn-ptr translation, remote I/O and raw
      server execution re-derived from the spans match the totals the
      session reported, within ``tolerance``.

    Sessions marked ``partial`` (ring-buffer truncation) skip the
    reconciliation checks — their totals are unknowable by construction.
    """
    issues: List[str] = []
    claimed = sum(s.event_count() for s in sessions)
    if claimed != len(events):
        issues.append(f"event conservation: {claimed} claimed vs "
                      f"{len(events)} in the stream")
    for session in sessions:
        label = session.sid or "session"
        if session.partial:
            continue
        totals = session.totals
        all_events = list(session.events)
        for inv in session.invocations:
            all_events.extend(inv.events())
        checks: List[Tuple[str, float, float]] = [
            ("comm_seconds", _comm_seconds(all_events),
             float(totals.get("comm_seconds", 0.0))),
            ("fnptr_seconds",
             sum(e.payload.get("seconds", 0.0) for e in all_events
                 if e.category == "fnptr.window"),
             float(totals.get("fnptr_seconds", 0.0))),
            ("remote_io_seconds",
             sum(e.dur for e in all_events if e.category == "rio.op"),
             float(totals.get("remote_io_seconds", 0.0))),
            # offload.exec durs, plus the partial execution a mid-exec
            # abort charged (carried on the offload.abort payload —
            # the aborted window never emits offload.exec).
            ("server_compute_seconds",
             sum(e.dur for e in all_events
                 if e.category == "offload.exec")
             + sum(e.payload.get("server_seconds", 0.0)
                   for e in all_events
                   if e.category == "offload.abort"),
             float(totals.get("server_compute_seconds", 0.0))),
        ]
        for name, derived, reported in checks:
            if abs(derived - reported) > tolerance:
                issues.append(f"{label}: {name} {derived!r} from spans "
                              f"vs {reported!r} reported")
        for inv in session.invocations:
            if inv.status not in STATUSES:
                issues.append(f"{label}: invocation {inv.index} has "
                              f"unknown status {inv.status!r}")
            # Bound-check on event *timestamps* only: ``dur`` is an
            # attribution quantity, not a placement — a ``comm.rtt``
            # later re-attributed by a negative ``comm.adjust``
            # (pipelined remote input) can carry a dur far beyond its
            # charged wall time, so ``t + dur`` may legitimately pass
            # the session end.
            events = inv.events()
            last_t = max(e.t for e in events) if events else 0.0
            if inv.start < session.start - tolerance or \
                    last_t > session.end + tolerance:
                issues.append(f"{label}: invocation {inv.index} "
                              f"[{inv.start}, {last_t}] outside the "
                              f"session [{session.start}, {session.end}]")
    return issues
