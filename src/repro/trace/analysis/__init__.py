"""Trace analysis: spans, critical paths, aggregation, SLOs, reports.

The read-only consumer side of the observability stack.  The tracer and
the fleet scheduler *emit*; this package *explains*:

* :mod:`spans` — fold the flat event stream back into nested
  session → invocation → phase spans, with a lossless invariant.
* :mod:`critical_path` — split each invocation's wall clock into six
  disjoint buckets and name the dominant bottleneck.
* :mod:`aggregate` — roll many sessions up into percentile
  distributions, per-device/per-server tables and bucket totals.
* :mod:`slo` — declarative thresholds over sliding windows of simulated
  time, emitting structured findings.
* :mod:`report` — deterministic JSON + single-file HTML reports, and
  the baseline/bench regression diff behind
  ``python -m repro report --baseline``.

Nothing in here mutates runtime state or consumes randomness: analysis
of a trace is a pure function of its events (docs/observability.md).
"""

from .aggregate import (DISTRIBUTIONS, DeviceRow, FleetAggregate,
                        aggregate_sessions, invocation_counts,
                        nearest_rank_percentile)
from .critical_path import (BUCKETS, CriticalPath, attribute_invocation,
                            attribute_session, bucket_totals,
                            dominant_counts)
from .report import (GATED_METRICS, SCHEMA, build_report, diff_bench,
                     diff_reports, render_html, report_to_json)
from .slo import (DEFAULT_RULES, Finding, SloRule, evaluate_rules,
                  prefetch_waste_findings)
from .spans import (InvocationSpan, PhaseSpan, SessionSpan,
                    reconstruct_session, reconstruct_sessions,
                    validate_sessions)

__all__ = [
    "DISTRIBUTIONS", "DeviceRow", "FleetAggregate",
    "aggregate_sessions", "invocation_counts",
    "nearest_rank_percentile",
    "BUCKETS", "CriticalPath", "attribute_invocation",
    "attribute_session", "bucket_totals", "dominant_counts",
    "GATED_METRICS", "SCHEMA", "build_report", "diff_bench",
    "diff_reports", "render_html", "report_to_json",
    "DEFAULT_RULES", "Finding", "SloRule", "evaluate_rules",
    "prefetch_waste_findings",
    "InvocationSpan", "PhaseSpan", "SessionSpan",
    "reconstruct_session", "reconstruct_sessions", "validate_sessions",
]
