"""The report: deterministic JSON + self-contained HTML + baseline diff.

``build_report`` turns an event stream (live tracer or loaded JSONL)
into one JSON-safe dict with a pinned schema (``repro.trace.report/1``)
and **no wall-clock anything** — two same-seed runs serialize
byte-identically, which is what lets CI diff reports at all.

``diff_reports`` / ``diff_bench`` implement the regression gate: compare
a baseline report (or a checked-in ``BENCH_*.json``) against a current
one and return structured regressions when a lower-is-better metric
worsened beyond the tolerance.  ``python -m repro report --baseline``
exits non-zero when any come back.
"""

from __future__ import annotations

import html as _html
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..tracer import TraceEvent
from .aggregate import FleetAggregate, aggregate_sessions
from .critical_path import BUCKETS
from .slo import DEFAULT_RULES, evaluate_rules
from .spans import reconstruct_sessions, validate_sessions

SCHEMA = "repro.trace.report/1"

#: Report metrics the baseline gate watches.  ``rel`` metrics compare
#: relative growth (seconds, bytes); ``abs`` metrics compare absolute
#: change (ratios in [0, 1], where "10% tolerance" means ten
#: percentage points).  All are lower-is-better.
GATED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("fleet.distributions.invocation_seconds.mean", "rel"),
    ("fleet.distributions.invocation_seconds.p50", "rel"),
    ("fleet.distributions.invocation_seconds.p95", "rel"),
    ("fleet.distributions.invocation_seconds.p99", "rel"),
    ("fleet.distributions.queue_wait_seconds.p95", "rel"),
    ("fleet.distributions.wire_bytes.mean", "rel"),
    ("fleet.totals.total_seconds", "rel"),
    ("fleet.totals.energy_mj", "rel"),
    ("fleet.decline_rate", "abs"),
    ("fleet.fallback_ratio", "abs"),
)

#: Key-name fragments that orient the generic BENCH_*.json diff.
_LOWER_BETTER = ("makespan", "seconds", "_s", "delay", "decline",
                 "energy", "wire", "bytes_to", "total_bytes", "wasted")
_HIGHER_BETTER = ("throughput", "reduction", "speedup", "hit", "saved",
                  "admitted")


def build_report(events: Sequence[TraceEvent], *,
                 source: Optional[dict] = None,
                 dropped: int = 0,
                 rules=DEFAULT_RULES,
                 servers: Optional[Sequence[dict]] = None) -> dict:
    """Analyze ``events`` into the full report dict.

    ``servers`` is the optional pool-side per-server detail of a live
    fleet run (``FleetResult.summary()["servers_detail"]`` rows); the
    trace alone only sees queued admissions, so utilization, busy
    seconds, peak queue depth, tier and speed ride in from the pool and
    are merged into the ``fleet.servers`` table.  Reports built from a
    saved JSONL have no pool and keep the trace-derived columns only.
    """
    events = list(events)
    sessions = reconstruct_sessions(events)
    agg: FleetAggregate = aggregate_sessions(sessions)
    if servers:
        for row in servers:
            merged = agg.servers.setdefault(
                int(row["id"]),
                {"queued_admissions": 0, "queue_delay_s": 0.0})
            for key in ("tier", "speed", "capacity", "active", "admitted",
                        "rejected", "busy_seconds", "max_queue_depth",
                        "utilization"):
                merged[key] = row[key]
            # Scatter/gather fan-out (docs/parallel-offload.md); absent
            # from rows recorded before the plan refactor.
            if "shard_admissions" in row:
                merged["shard_admissions"] = row["shard_admissions"]
    findings = evaluate_rules(sessions, rules)
    invariant = validate_sessions(sessions, events)
    warnings: List[str] = []
    if dropped:
        warnings.append(
            f"trace ring buffer dropped {dropped} events; span "
            f"reconstruction and every figure below are PARTIAL")
    if agg.partial_sessions:
        warnings.append(
            f"{agg.partial_sessions} of {agg.sessions} sessions are "
            f"partial (truncated stream); their totals are excluded "
            f"from reconciliation")
    for issue in invariant:
        warnings.append(f"span invariant: {issue}")
    return {
        "schema": SCHEMA,
        "source": dict(sorted((source or {}).items())),
        "events": len(events),
        "dropped_events": dropped,
        "warnings": warnings,
        "fleet": agg.to_json(),
        "findings": [f.to_json() for f in findings],
    }


def report_to_json(report: dict) -> str:
    """The canonical serialization (sorted keys, trailing newline) —
    byte-identical for same-seed runs."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# -- baseline diffing ----------------------------------------------------
def _lookup(report: dict, path: str):
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def diff_reports(baseline: dict, current: dict,
                 tolerance: float = 0.10) -> List[dict]:
    """Regressions of ``current`` vs ``baseline`` over the gated
    metrics.  A ``rel`` metric regresses when it grew more than
    ``tolerance`` relative to the baseline; an ``abs`` metric when it
    grew more than ``tolerance`` in absolute terms."""
    regressions: List[dict] = []
    for path, kind in GATED_METRICS:
        base = _lookup(baseline, path)
        cur = _lookup(current, path)
        if base is None or cur is None:
            continue
        delta = cur - base
        if kind == "rel":
            limit = tolerance * abs(base)
            # A zero baseline cannot scale a relative tolerance; any
            # growth beyond noise regresses.
            if base == 0:
                limit = 1e-9
        else:
            limit = tolerance
        if delta > limit:
            regressions.append({
                "metric": path, "kind": kind,
                "baseline": base, "current": cur,
                "delta": delta,
                "relative": (delta / abs(base)) if base else None,
                "tolerance": tolerance,
            })
    return regressions


def _numeric_leaves(node, prefix="") -> Dict[str, float]:
    out: Dict[str, float] = {}
    if isinstance(node, dict):
        for key in sorted(node):
            out.update(_numeric_leaves(node[key], f"{prefix}{key}."))
    elif isinstance(node, list):
        for i, item in enumerate(node):
            out.update(_numeric_leaves(item, f"{prefix}{i}."))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix[:-1]] = float(node)
    return out


def _direction(path: str) -> int:
    """-1 lower-is-better, +1 higher-is-better, 0 informational."""
    leaf = path.rsplit(".", 1)[-1]
    for frag in _HIGHER_BETTER:
        if frag in leaf:
            return 1
    for frag in _LOWER_BETTER:
        if frag in leaf or leaf.endswith("_s"):
            return -1
    return 0


def diff_bench(baseline: dict, current: dict,
               tolerance: float = 0.10) -> List[dict]:
    """Generic numeric diff of two ``BENCH_*.json`` files.

    Walks every numeric leaf; a leaf whose key orients it (see
    ``_LOWER_BETTER`` / ``_HIGHER_BETTER``) regresses when it moved the
    wrong way by more than ``tolerance`` relative; unoriented leaves
    never fail the gate."""
    base_leaves = _numeric_leaves(baseline)
    cur_leaves = _numeric_leaves(current)
    regressions: List[dict] = []
    for path in sorted(set(base_leaves) & set(cur_leaves)):
        direction = _direction(path)
        if direction == 0:
            continue
        base, cur = base_leaves[path], cur_leaves[path]
        worsened = (cur - base) * -direction  # positive = got worse
        limit = tolerance * abs(base) if base != 0 else 1e-9
        if worsened > limit:
            regressions.append({
                "metric": path,
                "kind": "bench",
                "baseline": base, "current": cur,
                "delta": cur - base,
                "relative": ((cur - base) / abs(base)) if base else None,
                "tolerance": tolerance,
            })
    return regressions


# -- HTML rendering ------------------------------------------------------
_CSS = """
body{font-family:system-ui,sans-serif;margin:2em auto;max-width:70em;
color:#1a1a2e}
h1{font-size:1.4em;border-bottom:2px solid #1a1a2e}
h2{font-size:1.1em;margin-top:1.6em}
table{border-collapse:collapse;margin:.6em 0}
th,td{border:1px solid #b8b8c8;padding:.25em .6em;text-align:right;
font-variant-numeric:tabular-nums}
th{background:#eef;text-align:center}
td.l{text-align:left}
.warn{background:#fff3cd;border:1px solid #cc9a06;padding:.5em .8em;
margin:.4em 0}
.finding-critical{background:#f8d7da}
.finding-warning{background:#fff3cd}
.ok{color:#0a6640}
""".strip()


def _esc(value) -> str:
    return _html.escape(str(value))


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e-3:
            return f"{value:.6f}".rstrip("0").rstrip(".")
        return f"{value:.3e}"
    return str(value)


def _table(headers: Sequence[str], rows: Sequence[Sequence],
           left: int = 1) -> str:
    out = ["<table><tr>"]
    out += [f"<th>{_esc(h)}</th>" for h in headers]
    out.append("</tr>")
    for row in rows:
        out.append("<tr>")
        for i, cell in enumerate(row):
            cls = ' class="l"' if i < left else ""
            out.append(f"<td{cls}>{_esc(_fmt(cell))}</td>")
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def render_html(report: dict) -> str:
    """One self-contained HTML page (inline CSS, no external assets,
    nothing non-deterministic)."""
    fleet = report["fleet"]
    parts: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro trace report</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>repro trace report</h1>",
    ]
    if report["source"]:
        parts.append("<h2>Source</h2>")
        parts.append(_table(
            ["key", "value"],
            [(k, v) for k, v in sorted(report["source"].items())]))
    parts.append(
        f"<p>{report['events']} events, {fleet['sessions']} session(s), "
        f"{fleet['invocations']['total']} invocations.</p>")
    for warning in report["warnings"]:
        parts.append(f"<div class='warn'>&#9888; {_esc(warning)}</div>")

    inv = fleet["invocations"]
    parts.append("<h2>Invocations</h2>")
    parts.append(_table(
        ["total", "offloaded", "declined", "rejected", "aborted",
         "local fallbacks", "decline rate", "fallback ratio"],
        [[inv["total"], inv["offloaded"], inv["declined"],
          inv["rejected"], inv["aborted"], inv["local_fallbacks"],
          fleet["decline_rate"], fleet["fallback_ratio"]]], left=0))
    if fleet["decline_reasons"]:
        parts.append(_table(
            ["decline reason", "count"],
            sorted(fleet["decline_reasons"].items())))

    parts.append("<h2>Distributions</h2>")
    parts.append(_table(
        ["metric", "count", "mean", "p50", "p95", "p99", "min", "max"],
        [[name, d["count"], d["mean"], d["p50"], d["p95"], d["p99"],
          d["min"], d["max"]]
         for name, d in sorted(fleet["distributions"].items())]))

    parts.append("<h2>Critical path</h2>")
    cp = fleet["critical_path_seconds"]
    parts.append(_table(["bucket", "seconds"],
                        [(name, cp[name]) for name in BUCKETS]))
    if fleet["dominant_bottlenecks"]:
        parts.append(_table(
            ["dominant bottleneck", "invocations"],
            sorted(fleet["dominant_bottlenecks"].items())))

    if fleet["devices"]:
        parts.append("<h2>Devices</h2>")
        parts.append(_table(
            ["sid", "program", "invocations", "offloaded", "declined",
             "rejected", "aborted", "total s", "energy mJ", "partial"],
            [[d["sid"] or "-", d["program"], d["invocations"],
              d["offloaded"], d["declined"], d["rejected"], d["aborted"],
              d["total_seconds"], d["energy_mj"], d["partial"]]
             for d in fleet["devices"]], left=2))

    if fleet["servers"]:
        parts.append("<h2>Servers</h2>")
        # Pool-side columns (tier/speed/utilization/peak depth) exist
        # only for live fleet runs; JSONL-derived reports show "-".
        parts.append(_table(
            ["server", "tier", "speed", "admitted", "gang shards",
             "rejected", "queued admissions", "queue delay s", "busy s",
             "utilization", "peak queue depth"],
            [[sid, row.get("tier", "-"), row.get("speed", "-"),
              row.get("admitted", "-"), row.get("shard_admissions", "-"),
              row.get("rejected", "-"),
              row["queued_admissions"], row["queue_delay_s"],
              row.get("busy_seconds", "-"), row.get("utilization", "-"),
              row.get("max_queue_depth", "-")]
             for sid, row in sorted(fleet["servers"].items(),
                                    key=lambda kv: int(kv[0]))],
            left=2))

    parts.append("<h2>SLO findings</h2>")
    if report["findings"]:
        parts.append("".join(
            f"<div class='finding-{_esc(f['severity'])} warn'>"
            f"<b>{_esc(f['rule'])}</b> "
            f"[{_fmt(f['start_s'])}s &ndash; {_fmt(f['end_s'])}s] "
            f"value {_fmt(f['value'])} vs threshold "
            f"{_fmt(f['threshold'])} ({_esc(f['detail'])})"
            + (f" sid={_esc(f['sid'])}" if f["sid"] else "")
            + "</div>"
            for f in report["findings"]))
    else:
        parts.append("<p class='ok'>No SLO findings.</p>")
    parts.append("</body></html>")
    return "".join(parts) + "\n"
