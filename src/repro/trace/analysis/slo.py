"""SLO / anomaly detection over sliding windows of simulated time.

A rule names a windowed metric, a comparison, and a threshold; the
evaluator slides a window (half-overlapping, so a burst straddling a
boundary is still seen whole) over the merged event timeline, computes
the metric per window, and emits one structured *finding* per violated
stretch — adjacent violated windows of the same rule merge into one.
Everything is read-only over the events and fully deterministic: the
same trace yields byte-identical findings.

The default rule set covers the failure modes the runtime can actually
exhibit (docs/observability.md, "SLO rules"):

* ``decline_rate_spike`` — the estimator stops offloading (saturated
  pool, dead link, failure cooldown);
* ``queue_pressure`` — admission waits approach the service time, the
  contention collapse of docs/fleet.md;
* ``retry_storm`` — transport-level recovery dominates a window;
* ``fallback_ratio`` — too many invocations end in a local replay;
* ``prefetch_waste_streak`` — the adaptive prefetcher keeps pushing
  pages the server never touches (a *streak* over consecutive
  invocations rather than a time window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .spans import SessionSpan

#: Comparison operators a rule may use.
_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


@dataclass(frozen=True)
class SloRule:
    """One declarative threshold.

    ``metric`` names a windowed metric the evaluator knows how to
    compute (see ``WINDOW_METRICS``); ``window_s`` is the sliding-window
    width in simulated seconds; ``min_samples`` suppresses findings from
    windows with too few observations to be meaningful.
    """

    name: str
    metric: str
    op: str
    threshold: float
    window_s: float = 0.05
    min_samples: int = 4
    severity: str = "warning"

    def violated(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


@dataclass
class Finding:
    """One violated stretch of simulated time (or one streak)."""

    rule: str
    severity: str
    start_s: float
    end_s: float
    value: float          # the worst windowed value in the stretch
    threshold: float
    samples: int
    sid: Optional[str] = None
    detail: str = ""

    def to_json(self) -> dict:
        return {
            "rule": self.rule, "severity": self.severity,
            "start_s": self.start_s, "end_s": self.end_s,
            "value": self.value, "threshold": self.threshold,
            "samples": self.samples, "sid": self.sid,
            "detail": self.detail,
        }


#: The default rule set (tunable per call; thresholds chosen so healthy
#: fault-free runs stay quiet and the saturation/fault benchmarks light
#: up — see tests/test_analysis_report.py).
DEFAULT_RULES = (
    SloRule("decline_rate_spike", "decline_rate", ">", 0.6,
            window_s=0.05, min_samples=6),
    SloRule("queue_pressure", "mean_queue_wait_s", ">", 0.005,
            window_s=0.05, min_samples=4),
    SloRule("retry_storm", "retry_count", ">=", 6,
            window_s=0.02, min_samples=1, severity="critical"),
    SloRule("fallback_ratio", "fallback_ratio", ">", 0.25,
            window_s=0.1, min_samples=4),
)

#: Consecutive fully-wasted prefetch windows before the streak rule
#: fires (mirrors the adaptive prefetcher's demotion logic).
PREFETCH_WASTE_STREAK = 3


@dataclass
class Observation:
    """One invocation flattened to the fields the metrics consume.

    Shared with the fleet's :class:`~repro.fleet.autoscaler.Autoscaler`,
    which builds these live from admission outcomes instead of from
    reconstructed spans — same metrics, same thresholds, evaluated
    mid-simulation (docs/placement.md, "Autoscaler").
    """

    t: float
    offloaded: bool
    fallback: bool
    queue_wait_s: float
    retries: int


#: Backwards-compatible private alias (pre-autoscaler name).
_Observation = Observation


def _observe(sessions: Sequence[SessionSpan]) -> List[Observation]:
    obs: List[Observation] = []
    for session in sessions:
        for inv in session.invocations:
            retries = sum(1 for e in inv.events()
                          if e.category == "transport.retry")
            fallback = any(e.category == "offload.fallback"
                           for e in inv.events())
            obs.append(Observation(
                t=inv.start, offloaded=inv.status == "offloaded",
                fallback=fallback, queue_wait_s=inv.queue_seconds,
                retries=retries))
    obs.sort(key=lambda o: o.t)
    return obs


def window_metric(name: str, window: Sequence[Observation]) -> float:
    """One windowed metric over a non-empty observation window.

    The single implementation behind both the post-hoc report rules
    and the in-simulation autoscaler, so the two can never drift."""
    if name == "decline_rate":
        return sum(1 for o in window if not o.offloaded) / len(window)
    if name == "mean_queue_wait_s":
        return sum(o.queue_wait_s for o in window) / len(window)
    if name == "retry_count":
        return float(sum(o.retries for o in window))
    if name == "fallback_ratio":
        return sum(1 for o in window if o.fallback) / len(window)
    raise KeyError(f"unknown SLO metric {name!r}")


#: Backwards-compatible private alias (pre-autoscaler name).
_metric = window_metric


def _windows(span_end: float, width: float):
    """Half-overlapping window starts covering [0, span_end]."""
    stride = width / 2.0
    start = 0.0
    while start <= span_end:
        yield start
        start += stride
    # (span_end itself is covered by the last yielded window)


def evaluate_rules(sessions: Sequence[SessionSpan],
                   rules: Sequence[SloRule] = DEFAULT_RULES
                   ) -> List[Finding]:
    """Evaluate every rule over the sessions' merged timeline."""
    observations = _observe(sessions)
    findings: List[Finding] = []
    if observations:
        span_end = max(o.t for o in observations)
        for rule in rules:
            open_finding: Optional[Finding] = None
            for start in _windows(span_end, rule.window_s):
                end = start + rule.window_s
                window = [o for o in observations if start <= o.t < end]
                if len(window) < rule.min_samples:
                    continue
                value = _metric(rule.metric, window)
                if not rule.violated(value):
                    if open_finding is not None:
                        findings.append(open_finding)
                        open_finding = None
                    continue
                if (open_finding is not None
                        and start <= open_finding.end_s):
                    open_finding.end_s = end
                    open_finding.samples += len(window)
                    if abs(value) > abs(open_finding.value):
                        open_finding.value = value
                else:
                    if open_finding is not None:
                        findings.append(open_finding)
                    open_finding = Finding(
                        rule=rule.name, severity=rule.severity,
                        start_s=start, end_s=end, value=value,
                        threshold=rule.threshold, samples=len(window),
                        detail=f"{rule.metric} {rule.op} "
                               f"{rule.threshold:g}")
            if open_finding is not None:
                findings.append(open_finding)
    findings.extend(prefetch_waste_findings(sessions))
    findings.sort(key=lambda f: (f.start_s, f.rule, f.sid or ""))
    return findings


def prefetch_waste_findings(sessions: Sequence[SessionSpan],
                            streak: int = PREFETCH_WASTE_STREAK
                            ) -> List[Finding]:
    """Per-device streaks of fully-wasted prefetch windows.

    A ``uva.cache`` adaptive event with ``wasted > 0`` and ``hits == 0``
    means every page pushed for that invocation went unused; ``streak``
    of them in a row is sustained wasted uplink the prefetcher should
    have adapted away.
    """
    findings: List[Finding] = []
    for session in sessions:
        run: List = []
        for inv in session.invocations:
            for event in inv.events():
                if event.category != "uva.cache":
                    continue
                if event.name != "adaptive":
                    continue
                if (event.payload.get("wasted", 0) > 0
                        and event.payload.get("hits", 0) == 0):
                    run.append(event)
                else:
                    if len(run) >= streak:
                        findings.append(_streak_finding(session, run))
                    run = []
        if len(run) >= streak:
            findings.append(_streak_finding(session, run))
    return findings


def _streak_finding(session: SessionSpan, run: List) -> Finding:
    wasted = sum(e.payload.get("wasted", 0) for e in run)
    return Finding(
        rule="prefetch_waste_streak", severity="warning",
        start_s=run[0].t, end_s=run[-1].t, value=float(len(run)),
        threshold=float(PREFETCH_WASTE_STREAK), samples=len(run),
        sid=session.sid,
        detail=f"{len(run)} consecutive fully-wasted prefetch windows "
               f"({wasted} pages)")
