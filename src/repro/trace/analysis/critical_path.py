"""Critical-path attribution: where did each invocation's wall clock go?

The paper's Figure 7 answers this per *program*; the analysis layer
answers it per *invocation*, splitting the device wall-clock time an
invocation charged to the timeline into six disjoint buckets:

``mobile_compute``
    Local execution after a decline is invisible to the span (it is
    ordinary interpreter time), so this bucket counts the *fallback
    replay* seconds of rejected/aborted invocations — the local run the
    device paid for because the offload did not complete.
``server_compute``
    Raw server execution (``offload.exec`` dur), fn-ptr translation
    included — the device waits through all of it.
``comm``
    Initialization and finalization transfers, remote-I/O forwarding,
    and the rejection probe round trip, minus the carve-outs below.
``queue``
    Fleet admission wait (``offload.queue`` dur).
``uva``
    Demand-paging service: the CoD fault round trips
    (``offload.exec`` payload ``cod_seconds``; the paired ``uva.fault``
    / ``comm.rtt`` event durations are the same seconds — counted once).
``retry_backoff``
    Transport-level recovery: retry timeouts, exponential backoff waits
    and reconnect probes (``transport.retry`` / ``transport.reconnect``
    payloads).  These seconds are *nested inside* the comm transfers
    that suffered them, so they are carved out of ``comm`` — the report
    shows fault-recovery cost separately from useful transfer time.

The buckets sum to the invocation's charged wall time, with one
documented approximation: a retried-but-successful CoD round trip books
its recovery seconds under ``retry_backoff`` (and ``comm`` is clamped at
zero), and an invocation aborted mid-exec never emits ``offload.exec``,
so its partial CoD traffic stays in ``comm`` as wasted transfer time
(the partial *server execution* is recovered from the ``offload.abort``
payload's ``server_seconds`` and books under ``server_compute``).

Scatter/gather plans (docs/parallel-offload.md): each surviving shard
emits its own ``offload.exec`` anchor, but the device only *waited*
through the slowest one — the ``offload.gather`` (or plan
``offload.abort``) payload's ``overlap_seconds`` is the serial-minus-
parallel difference, subtracted from ``server_compute`` so the buckets
still sum to charged wall.  A straggler's local replay books its
``offload.straggler`` payload seconds under ``mobile_compute``, exactly
as a fallback replay does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .spans import InvocationSpan, SessionSpan

#: Bucket names in canonical (serialization and tie-break) order.
BUCKETS = ("mobile_compute", "server_compute", "comm", "queue", "uva",
           "retry_backoff")


@dataclass
class CriticalPath:
    """The per-bucket split of one invocation's charged wall time."""

    target: str
    status: str
    buckets: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.buckets.values())

    @property
    def dominant(self) -> str:
        """The bucket that dominates the invocation's wall time (the
        "bottleneck" column of the report).  Ties break in canonical
        bucket order; an all-zero split (e.g. a declined invocation
        under ``--zero-overhead``) reports ``idle``."""
        best = max(BUCKETS, key=lambda b: self.buckets.get(b, 0.0))
        return best if self.buckets.get(best, 0.0) > 0.0 else "idle"


def attribute_invocation(inv: InvocationSpan) -> CriticalPath:
    """Split one invocation span into the six critical-path buckets."""
    buckets = {name: 0.0 for name in BUCKETS}
    comm_event_seconds = 0.0
    overlap_seconds = 0.0
    for event in inv.events():
        cat = event.category
        if cat == "offload.queue":
            buckets["queue"] += event.dur
        elif cat == "offload.exec":
            buckets["server_compute"] += event.dur
            buckets["uva"] += event.payload.get("cod_seconds", 0.0)
        elif cat == "offload.abort":
            # partial server execution before a mid-exec abort: charged
            # wall time the device waited through (a plan abort reports
            # the parallel overlap to subtract, like offload.gather)
            buckets["server_compute"] += event.payload.get(
                "server_seconds", 0.0)
            overlap_seconds += event.payload.get("overlap_seconds", 0.0)
        elif cat == "offload.gather":
            # the plan's shards ran in parallel: the device waited only
            # through the slowest survivor, not the serial sum
            overlap_seconds += event.payload.get("overlap_seconds", 0.0)
        elif cat == "offload.straggler":
            # an abandoned shard's index range, replayed on the device
            buckets["mobile_compute"] += event.payload.get(
                "seconds", 0.0)
        elif cat == "offload.fallback":
            buckets["mobile_compute"] += event.payload.get("seconds", 0.0)
        elif cat == "offload.reject":
            comm_event_seconds += event.payload.get("probe_seconds", 0.0)
        elif cat in ("comm.send", "comm.stream", "comm.rtt"):
            comm_event_seconds += event.dur
        elif cat == "comm.adjust":
            comm_event_seconds += event.payload.get("delta_seconds", 0.0)
        elif cat == "transport.retry":
            buckets["retry_backoff"] += (
                event.payload.get("timeout_seconds", 0.0)
                + event.payload.get("backoff_seconds", 0.0))
        elif cat == "transport.reconnect":
            buckets["retry_backoff"] += event.payload.get("seconds", 0.0)
    # Every comm-layer second the invocation charged, minus what is
    # attributed more specifically (CoD service -> uva, recovery waits
    # -> retry_backoff).  Remote-I/O forwarding stays here: it is link
    # time on the device timeline.
    buckets["comm"] = max(
        comm_event_seconds - buckets["uva"] - buckets["retry_backoff"],
        0.0)
    if overlap_seconds > 0.0:
        buckets["server_compute"] = max(
            buckets["server_compute"] - overlap_seconds, 0.0)
    return CriticalPath(target=inv.target, status=inv.status,
                        buckets=buckets)


def attribute_session(session: SessionSpan) -> List[CriticalPath]:
    return [attribute_invocation(inv) for inv in session.invocations]


def bucket_totals(paths: List[CriticalPath]) -> Dict[str, float]:
    """Sum the per-invocation splits into one stacked-bar row."""
    totals = {name: 0.0 for name in BUCKETS}
    for path in paths:
        for name in BUCKETS:
            totals[name] += path.buckets.get(name, 0.0)
    return totals


def dominant_counts(paths: List[CriticalPath]) -> Dict[str, int]:
    """How many invocations each bucket dominated (plus ``idle``)."""
    counts: Dict[str, int] = {}
    for path in paths:
        counts[path.dominant] = counts.get(path.dominant, 0) + 1
    return {k: counts[k] for k in sorted(counts)}
