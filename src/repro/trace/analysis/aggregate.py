"""Fleet aggregation: one statistical view over many sessions' spans.

Everything here is derived from reconstructed spans (``spans.py``) —
the same numbers whether they come from a live run's tracer or a saved
JSONL file, which is what lets ``python -m repro report`` and the CLI
summary lines share one source of truth.  Distributions use the
log-bucketed :class:`~repro.trace.metrics.Histogram` so percentiles
survive cross-device merging without retaining samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..metrics import Histogram
from .critical_path import (BUCKETS, CriticalPath, attribute_session,
                            bucket_totals, dominant_counts)
from .spans import SessionSpan

#: Histogram metrics the aggregate tracks, in serialization order.
DISTRIBUTIONS = ("invocation_seconds", "queue_wait_seconds",
                 "wire_bytes")


def nearest_rank_percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile over raw samples (deterministic, no
    interpolation).  The exact-sample companion of
    :meth:`Histogram.percentile`; ``fleet.scheduler`` sources its
    completion percentiles from here so the fleet summary and the
    report can never disagree on the definition."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(q * len(ordered))))
    return ordered[rank - 1]


def invocation_counts(records) -> Dict[str, int]:
    """Outcome counts over :class:`InvocationRecord`-shaped objects
    (``offloaded`` / ``rejected`` / ``aborted`` / ``fallback_local``
    attributes).  The one counting definition behind
    ``SessionResult``'s summary lines, ``FleetResult.summary()`` and the
    report — the CLI and ``repro report`` cannot drift apart because
    they both call this."""
    counts = {"total": 0, "offloaded": 0, "declined": 0, "rejected": 0,
              "aborted": 0, "local_fallbacks": 0}
    for record in records:
        counts["total"] += 1
        if record.offloaded:
            counts["offloaded"] += 1
        elif record.rejected:
            counts["rejected"] += 1
        elif record.aborted:
            counts["aborted"] += 1
        else:
            counts["declined"] += 1
        if record.fallback_local:
            counts["local_fallbacks"] += 1
    return counts


def _invocation_wire_bytes(inv) -> int:
    total = 0
    for event in inv.events():
        p = event.payload
        cat = event.category
        if cat in ("comm.send", "comm.stream"):
            total += p.get("wire_bytes", 0)
        elif cat == "comm.rtt":
            total += (p.get("wire_request_bytes", 0)
                      + p.get("wire_response_bytes", 0))
    return total


@dataclass
class DeviceRow:
    """One device's line of the report's per-device table."""

    sid: Optional[str]
    program: str
    invocations: int
    offloaded: int
    declined: int
    rejected: int
    aborted: int
    total_seconds: float
    energy_mj: float
    partial: bool

    def to_json(self) -> dict:
        return {
            "sid": self.sid, "program": self.program,
            "invocations": self.invocations, "offloaded": self.offloaded,
            "declined": self.declined, "rejected": self.rejected,
            "aborted": self.aborted, "total_seconds": self.total_seconds,
            "energy_mj": self.energy_mj, "partial": self.partial,
        }


@dataclass
class FleetAggregate:
    """The cross-session rollup every report section reads from."""

    sessions: int = 0
    partial_sessions: int = 0
    invocations: Dict[str, int] = field(default_factory=dict)
    decline_reasons: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    critical_path: Dict[str, float] = field(default_factory=dict)
    dominant: Dict[str, int] = field(default_factory=dict)
    devices: List[DeviceRow] = field(default_factory=list)
    servers: Dict[int, Dict[str, float]] = field(default_factory=dict)
    totals: Dict[str, float] = field(default_factory=dict)
    paths: List[CriticalPath] = field(default_factory=list)

    @property
    def decline_rate(self) -> float:
        total = self.invocations.get("total", 0)
        if not total:
            return 0.0
        return (total - self.invocations.get("offloaded", 0)) / total

    @property
    def fallback_ratio(self) -> float:
        total = self.invocations.get("total", 0)
        if not total:
            return 0.0
        return self.invocations.get("local_fallbacks", 0) / total

    def to_json(self) -> dict:
        """A JSON-safe dict with a stable shape and key order."""
        histograms = {}
        for name in DISTRIBUTIONS:
            h = self.histograms[name]
            histograms[name] = {
                "count": h.count, "sum": h.total,
                "min": h.min if h.count else 0.0,
                "max": h.max if h.count else 0.0,
                "mean": h.mean,
                "p50": h.percentile(0.50),
                "p95": h.percentile(0.95),
                "p99": h.percentile(0.99),
            }
        return {
            "sessions": self.sessions,
            "partial_sessions": self.partial_sessions,
            "invocations": dict(sorted(self.invocations.items())),
            "decline_rate": self.decline_rate,
            "fallback_ratio": self.fallback_ratio,
            "decline_reasons": dict(sorted(self.decline_reasons.items())),
            "distributions": histograms,
            "critical_path_seconds": {name: self.critical_path.get(name,
                                                                   0.0)
                                      for name in BUCKETS},
            "dominant_bottlenecks": dict(sorted(self.dominant.items())),
            "devices": [row.to_json() for row in self.devices],
            "servers": {str(k): self.servers[k]
                        for k in sorted(self.servers)},
            "totals": dict(sorted(self.totals.items())),
        }


def aggregate_sessions(sessions: List[SessionSpan]) -> FleetAggregate:
    """Roll every session's spans up into one :class:`FleetAggregate`."""
    agg = FleetAggregate()
    agg.invocations = {"total": 0, "offloaded": 0, "declined": 0,
                       "rejected": 0, "aborted": 0, "local_fallbacks": 0}
    agg.histograms = {name: Histogram(name) for name in DISTRIBUTIONS}
    agg.critical_path = {name: 0.0 for name in BUCKETS}
    totals = {"total_seconds": 0.0, "energy_mj": 0.0,
              "comm_seconds": 0.0, "mobile_compute_seconds": 0.0,
              "server_compute_seconds": 0.0, "wire_bytes": 0,
              "retries": 0, "reconnects": 0, "disconnects": 0}

    for session in sessions:
        agg.sessions += 1
        if session.partial:
            agg.partial_sessions += 1
        counts = {"offloaded": 0, "declined": 0, "rejected": 0,
                  "aborted": 0}
        paths = attribute_session(session)
        agg.paths.extend(paths)
        for name, value in bucket_totals(paths).items():
            agg.critical_path[name] += value
        for name, n in dominant_counts(paths).items():
            agg.dominant[name] = agg.dominant.get(name, 0) + n

        for inv in session.invocations:
            agg.invocations["total"] += 1
            counts[inv.status] = counts.get(inv.status, 0) + 1
            if inv.status == "declined" and inv.reason:
                agg.decline_reasons[inv.reason] = \
                    agg.decline_reasons.get(inv.reason, 0) + 1
            wire = _invocation_wire_bytes(inv)
            totals["wire_bytes"] += wire
            for event in inv.events():
                cat = event.category
                if cat == "offload.fallback":
                    agg.invocations["local_fallbacks"] += 1
                elif cat == "transport.retry":
                    totals["retries"] += 1
                elif cat == "transport.reconnect":
                    # failed probe sweeps carry failed=True and are
                    # recovery time, not a re-established link
                    if not event.payload.get("failed"):
                        totals["reconnects"] += 1
                elif cat == "transport.disconnect":
                    totals["disconnects"] += 1
                elif cat == "offload.queue":
                    server = event.payload.get("server")
                    if server is not None:
                        row = agg.servers.setdefault(
                            int(server), {"queued_admissions": 0,
                                          "queue_delay_s": 0.0})
                        row["queued_admissions"] += 1
                        row["queue_delay_s"] += event.dur
            if inv.status == "offloaded":
                agg.histograms["invocation_seconds"].observe(
                    inv.wall_seconds)
                agg.histograms["wire_bytes"].observe(float(wire))
            if inv.queue_seconds > 0.0:
                agg.histograms["queue_wait_seconds"].observe(
                    inv.queue_seconds)
        for key in ("offloaded", "declined", "rejected", "aborted"):
            agg.invocations[key] += counts.get(key, 0)

        t = session.totals
        totals["total_seconds"] += float(t.get("total_seconds", 0.0))
        totals["energy_mj"] += float(t.get("energy_mj", 0.0))
        totals["comm_seconds"] += float(t.get("comm_seconds", 0.0))
        totals["mobile_compute_seconds"] += float(
            t.get("mobile_compute_seconds", 0.0))
        totals["server_compute_seconds"] += float(
            t.get("server_compute_seconds", 0.0))
        agg.devices.append(DeviceRow(
            sid=session.sid, program=session.program,
            invocations=len(session.invocations),
            offloaded=counts.get("offloaded", 0),
            declined=counts.get("declined", 0),
            rejected=counts.get("rejected", 0),
            aborted=counts.get("aborted", 0),
            total_seconds=float(t.get("total_seconds", 0.0)),
            energy_mj=float(t.get("energy_mj", 0.0)),
            partial=session.partial))
    agg.totals = totals
    return agg
