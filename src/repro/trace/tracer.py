"""The structured event tracer.

A :class:`Tracer` collects :class:`TraceEvent` records into a bounded
ring buffer.  Each event carries

* ``t`` — the simulated mobile wall-clock time at emission (seconds).
  The tracer clamps timestamps so the stored stream is monotonically
  non-decreasing even if a clock source momentarily disagrees;
* ``seq`` — a global sequence number that breaks ties between events
  emitted at the same simulated instant (e.g. every copy-on-demand fault
  during one server execution window carries the mobile timestamp at
  which the mobile started waiting);
* ``category`` — a dotted event type from :data:`CATEGORIES`
  (``comm.send``, ``uva.fault``, ...), documented field-by-field in
  ``docs/trace-schema.md``;
* ``name`` — an event-specific label (offload target, remote-I/O
  function, transfer direction);
* ``dur`` — the modeled duration of the event in seconds (0 for instant
  events);
* ``payload`` — free-form key/value details.

Overhead discipline: the runtime's hot paths guard every emission with
``if tracer.enabled:``, and the disabled singleton :data:`NULL_TRACER`
additionally turns ``emit`` into a no-op, so a session with tracing off
performs exactly the arithmetic it performed before this subsystem
existed (the tracing-disabled invariant recorded in ``DESIGN.md``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from .metrics import MetricsRegistry, NullMetricsRegistry

DEFAULT_CAPACITY = 262_144

# The full event vocabulary.  docs/trace-schema.md documents each
# category's payload; tests assert the runtime never emits outside it.
CATEGORIES = (
    "session.start",      # one per OffloadSession.run()
    "session.end",        # final accounting totals
    "estimate",           # dynamic estimator: Equation 1 inputs/output
    "decision",           # offload / decline, with the reason
    "offload.init",       # initialization phase of one invocation
    "offload.exec",       # server execution window of one invocation
    "offload.finalize",   # finalization phase of one invocation
    "uva.prefetch",       # likely-used page push at initialization
    "uva.fault",          # one copy-on-demand page fault
    "uva.writeback",      # dirty-page write-back at finalization
    "uva.cache",          # page-cache sync summary / adaptive hit-waste
    "uva.delta",          # sub-page delta transfer (prefetch/CoD/writeback)
    "comm.send",          # one batched/unbatched message transfer
    "comm.stream",        # pipelined one-way output forwarding
    "comm.rtt",           # a control round trip
    "comm.adjust",        # pipelined remote-input timing correction
    "rio.op",             # one forwarded remote I/O operation
    "fnptr.window",       # fn-ptr translations of one invocation
    "transport.retry",    # one dropped/timed-out delivery being retried
    "transport.disconnect",  # the link went down mid-delivery
    "transport.reconnect",   # a reconnect probe succeeded
    "offload.abort",      # an invocation lost the link mid-flight
    "offload.fallback",   # an aborted invocation replayed locally
    "offload.queue",      # time spent waiting for a pooled server slot
    "offload.reject",     # the server pool refused admission
)

# Categories every offloading run emits (workload-independent).  The
# remainder depend on program structure: uva.fault needs CoD misses,
# rio.op/comm.stream need server-side I/O, fnptr.window needs function
# pointers, comm.adjust needs remote *input* (fread/fgets/fgetc/feof).
CORE_CATEGORIES = (
    "session.start", "session.end", "estimate", "decision",
    "offload.init", "offload.exec", "offload.finalize",
    "uva.prefetch", "uva.writeback", "comm.send",
)


@dataclass
class TraceEvent:
    """One structured runtime event."""

    t: float                 # simulated seconds, monotonic within a trace
    seq: int                 # global emission order (tie-break for t)
    category: str
    name: str
    dur: float = 0.0         # modeled duration in seconds (0 = instant)
    payload: Dict[str, object] = field(default_factory=dict)
    sid: Optional[str] = None  # session id, set only in fleet runs

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "t": self.t, "seq": self.seq, "cat": self.category,
            "name": self.name, "dur": self.dur, "args": self.payload}
        # Serialized only when set so single-session traces keep their
        # exact pre-fleet wire format.
        if self.sid is not None:
            data["sid"] = self.sid
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        sid = data.get("sid")
        return cls(t=float(data["t"]), seq=int(data["seq"]),
                   category=str(data["cat"]), name=str(data["name"]),
                   dur=float(data.get("dur", 0.0)),
                   payload=dict(data.get("args", {})),
                   sid=None if sid is None else str(sid))


class Tracer:
    """Ring-buffered structured event sink with attached metrics."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: Optional[Callable[[], float]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 sid: Optional[str] = None):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.sid = sid
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self._last_t = 0.0
        self.dropped = 0      # events evicted by the ring buffer

    # -- emission -------------------------------------------------------
    def emit(self, category: str, name: str, t: Optional[float] = None,
             dur: float = 0.0, **payload) -> Optional[TraceEvent]:
        """Record one event, stamping it with the simulated clock.

        Timestamps are clamped to be monotonically non-decreasing in
        emission order; ``seq`` preserves the exact order for equal
        timestamps.
        """
        if t is None:
            t = self.clock()
        if t < self._last_t:
            t = self._last_t
        self._last_t = t
        if len(self._events) == self.capacity:
            self.dropped += 1
        event = TraceEvent(t=t, seq=self._seq, category=category,
                           name=name, dur=dur, payload=payload,
                           sid=self.sid)
        self._seq += 1
        self._events.append(event)
        return event

    # -- access ---------------------------------------------------------
    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def categories(self) -> List[str]:
        return sorted({e.category for e in self._events})

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(list(self._events))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self._last_t = 0.0


class NullTracer(Tracer):
    """The disabled sink: ``enabled`` is False and ``emit`` is a no-op.

    Instrumentation sites check ``tracer.enabled`` before doing any
    payload computation; this class is the belt-and-braces second layer
    that guarantees an unguarded emit still records nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1, metrics=NullMetricsRegistry())

    def emit(self, category: str, name: str, t: Optional[float] = None,
             dur: float = 0.0, **payload) -> Optional[TraceEvent]:
        return None


#: Shared disabled sink used wherever no tracer was provided.
NULL_TRACER = NullTracer()
