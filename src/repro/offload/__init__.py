"""The Native Offloader compiler: target selection, memory unification,
partitioning and server-specific optimization (paper, Section 3)."""

from .filter import (FilterVerdict, FunctionFilter, INTERACTIVE_IO,
                     IO_FUNCTIONS, PURE_BUILTINS, REMOTE_FILE_INPUT,
                     REMOTE_OUTPUT)
from .estimator import (EstimatorParams, StaticEstimate,
                        StaticPerformanceEstimator, mbps)
from .selector import Candidate, SelectionResult, TargetSelector
from .outline import OutliningError, can_outline, outline_loop
from .unify import (UnificationReport, reallocate_referenced_globals,
                    replace_heap_allocations, unified_data_layout,
                    unify_memory, UNIFIED_LAYOUTS_KEY, UNIFIED_ORDER_KEY,
                    UNIFIED_POINTER_KEY)
from .partition import (OffloadTarget, PartitionResult, partition,
                        OFFLOAD_PREFIX, SHOULD_OFFLOAD, STUB_SUFFIX)
from .server_opt import (M2S_FCN_MAP, REMOTE_IO_PREFIX, S2M_FCN_MAP,
                         apply_function_pointer_mapping, apply_remote_io)
from .pipeline import CompilerOptions, NativeOffloaderCompiler, OffloadProgram

__all__ = [
    "FilterVerdict", "FunctionFilter", "INTERACTIVE_IO", "IO_FUNCTIONS",
    "PURE_BUILTINS", "REMOTE_FILE_INPUT", "REMOTE_OUTPUT",
    "EstimatorParams", "StaticEstimate", "StaticPerformanceEstimator",
    "mbps",
    "Candidate", "SelectionResult", "TargetSelector",
    "OutliningError", "can_outline", "outline_loop",
    "UnificationReport", "reallocate_referenced_globals",
    "replace_heap_allocations", "unified_data_layout", "unify_memory",
    "UNIFIED_LAYOUTS_KEY", "UNIFIED_ORDER_KEY", "UNIFIED_POINTER_KEY",
    "OffloadTarget", "PartitionResult", "partition", "OFFLOAD_PREFIX",
    "SHOULD_OFFLOAD", "STUB_SUFFIX",
    "M2S_FCN_MAP", "REMOTE_IO_PREFIX", "S2M_FCN_MAP",
    "apply_function_pointer_mapping", "apply_remote_io",
    "CompilerOptions", "NativeOffloaderCompiler", "OffloadProgram",
]
