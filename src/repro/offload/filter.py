"""Function filter: machine-specific task detection (paper, Section 3.1).

A function or loop is ruled out of offloading if it (transitively) contains
an assembly instruction, a system call, an unknown external library call, or
an I/O instruction.  Remotely-executable I/O functions (known output
functions, and file input via prefetch) are excluded from the machine
specific set when the remote I/O manager is enabled (Section 3.4), which is
what lets hot loops containing ``printf`` still be offloaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..analysis.callgraph import CallGraph
from ..analysis.loops import Loop
from ..ir import instructions as inst
from ..ir.module import Module
from ..ir.values import Function
from ..frontend.builtins import BUILTIN_SIGNATURES

# Interactive input: requires the user at the mobile device.  Always
# machine specific (scanf in getPlayerTurn pins runGame/main, Figure 3).
INTERACTIVE_IO = {"scanf", "getchar"}

# Output functions that the remote I/O manager can forward to the mobile
# device (r_printf & co., Section 3.4).
REMOTE_OUTPUT = {"printf", "puts", "putchar", "fprintf", "fwrite",
                 "sprintf"}

# File input: remotely executable because file data can be prefetched and
# the round trips amortized (Section 3.4).
REMOTE_FILE_INPUT = {"fopen", "fclose", "fread", "fgets", "fgetc", "feof"}

IO_FUNCTIONS = INTERACTIVE_IO | REMOTE_OUTPUT | REMOTE_FILE_INPUT

# Remaining known builtins (allocation, string, math, ...) are machine
# independent.
PURE_BUILTINS = set(BUILTIN_SIGNATURES) - IO_FUNCTIONS


@dataclass
class FilterVerdict:
    """Why a candidate is machine specific (or None if offloadable)."""

    name: str
    machine_specific: bool
    reasons: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # truthy == offloadable
        return not self.machine_specific


class FunctionFilter:
    """Classifies every function (and any loop) of a module."""

    def __init__(self, module: Module, callgraph: Optional[CallGraph] = None,
                 enable_remote_io: bool = True):
        self.module = module
        self.callgraph = callgraph or CallGraph(module)
        self.enable_remote_io = enable_remote_io
        self._local_reasons: Dict[str, List[str]] = {}
        self._verdicts: Dict[str, FilterVerdict] = {}
        self._classify_all()

    # -- public API ------------------------------------------------------
    def verdict(self, name: str) -> FilterVerdict:
        return self._verdicts[name]

    def is_offloadable(self, name: str) -> bool:
        return not self._verdicts[name].machine_specific

    def offloadable_functions(self) -> List[str]:
        return sorted(n for n, v in self._verdicts.items()
                      if not v.machine_specific)

    def classify_loop(self, loop: Loop) -> FilterVerdict:
        """A loop is machine specific iff its blocks contain a machine
        specific instruction or call a machine specific function
        (transitively)."""
        reasons: List[str] = []
        for block in loop.blocks:
            for instruction in block.instructions:
                reasons.extend(self._instruction_reasons(instruction))
                if isinstance(instruction, inst.Call):
                    callee = instruction.called_function
                    if callee is not None and callee.is_definition:
                        verdict = self._verdicts.get(callee.name)
                        if verdict is not None and verdict.machine_specific:
                            reasons.append(
                                f"calls machine-specific {callee.name}")
                    elif callee is None:
                        # indirect call: any address-taken function may run
                        for name in sorted(self.callgraph.address_taken):
                            verdict = self._verdicts.get(name)
                            if verdict is not None and \
                                    verdict.machine_specific:
                                reasons.append(
                                    f"may call machine-specific {name} "
                                    "through a pointer")
        return FilterVerdict(loop.name, bool(reasons), reasons)

    # -- classification ---------------------------------------------------
    def _classify_all(self) -> None:
        for fn in self.module.functions.values():
            if fn.is_definition:
                self._local_reasons[fn.name] = self._local_scan(fn)
        for fn in self.module.defined_functions():
            reasons = list(self._local_reasons[fn.name])
            for callee in sorted(self.callgraph.transitive_callees(fn.name)):
                for reason in self._local_reasons.get(callee, []):
                    reasons.append(f"via {callee}: {reason}")
            self._verdicts[fn.name] = FilterVerdict(
                fn.name, bool(reasons), reasons)

    def _local_scan(self, fn: Function) -> List[str]:
        reasons: List[str] = []
        for instruction in fn.instructions():
            reasons.extend(self._instruction_reasons(instruction))
        return reasons

    def _instruction_reasons(self, instruction: inst.Instruction
                             ) -> List[str]:
        if isinstance(instruction, inst.InlineAsm):
            return [f"assembly instruction {instruction.text!r}"]
        if isinstance(instruction, inst.Syscall):
            return [f"system call {instruction.number}"]
        if not isinstance(instruction, inst.Call):
            return []
        callee = instruction.called_function
        if callee is None or callee.is_definition:
            return []  # defined functions handled transitively
        return self._external_reasons(callee.name)

    def _external_reasons(self, name: str) -> List[str]:
        if name in INTERACTIVE_IO:
            return [f"interactive I/O call {name}"]
        if name in REMOTE_OUTPUT or name in REMOTE_FILE_INPUT:
            if self.enable_remote_io:
                return []  # remotely executable (Section 3.4)
            return [f"I/O call {name}"]
        if name in PURE_BUILTINS or name.startswith("__no_") or \
                name.startswith("u_"):
            return []
        return [f"unknown external library call {name}"]
