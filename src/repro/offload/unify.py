"""Memory unification code generation (paper, Section 3.2).

Five cooperating transformations give both machines one coherent view of
shared data on the unified virtual address (UVA) space:

* **Heap allocation replacement** — every malloc/free/calloc/realloc call
  site becomes a UVA allocation (u_malloc & co.), because imprecise alias
  analysis cannot prove which objects the server will touch.
* **Referenced global variable allocation** — globals referenced by the
  offloaded task (transitively) are reallocated onto the UVA heap, so both
  back ends resolve them to the *same* address.
* **Memory layout realignment** — the mobile ABI's struct layouts become
  the unified layouts both machines use (Figure 4).
* **Address size conversion** — pointers are stored at the mobile pointer
  width; a 64-bit server zero-extends on load and truncates on store.
* **Endianness translation** — memory is kept in the mobile byte order;
  a different-endian server swaps on every multi-byte access.

The last three are realized as a *unified data layout* recorded in module
metadata; the runtime installs it on both machines, and the interpreter
charges the conversion costs (Section 5 reports them: negligible for
address size, zero for endianness on ARM/x86).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..analysis.callgraph import CallGraph
from ..ir import instructions as inst
from ..ir.module import Module
from ..ir.values import Function, GlobalVariable
from ..targets.abi import DataLayout, StructLayout, layouts_differ
from ..targets.arch import TargetArch

# malloc-family -> UVA-family rewrite map.
_ALLOC_REWRITES = {
    "malloc": "u_malloc",
    "free": "u_free",
    "calloc": "u_calloc",
    "realloc": "u_realloc",
}

UNIFIED_LAYOUTS_KEY = "unified_layouts"
UNIFIED_POINTER_KEY = "unified_pointer_bytes"
UNIFIED_ORDER_KEY = "unified_byte_order"


@dataclass
class UnificationReport:
    replaced_allocation_sites: int = 0
    uva_globals: int = 0
    total_globals: int = 0
    realigned_structs: List[str] = field(default_factory=list)
    needs_pointer_conversion: bool = False
    needs_endianness_translation: bool = False

    def summary(self) -> str:
        return (f"alloc sites: {self.replaced_allocation_sites}, "
                f"UVA globals: {self.uva_globals}/{self.total_globals}, "
                f"realigned structs: {len(self.realigned_structs)}, "
                f"ptr conv: {self.needs_pointer_conversion}, "
                f"endian: {self.needs_endianness_translation}")


def unify_memory(module: Module,
                 mobile_arch: TargetArch,
                 server_arch: TargetArch,
                 target_names: List[str],
                 callgraph: Optional[CallGraph] = None,
                 enable_heap_replacement: bool = True,
                 enable_global_realloc: bool = True,
                 enable_layout_realignment: bool = True) -> UnificationReport:
    """Apply memory unification in place; returns what was done."""
    report = UnificationReport(total_globals=len(module.globals))
    if enable_heap_replacement:
        report.replaced_allocation_sites = replace_heap_allocations(module)
    if enable_global_realloc:
        report.uva_globals = reallocate_referenced_globals(
            module, target_names, callgraph)
    mobile_layout = DataLayout(mobile_arch)
    server_layout = DataLayout(server_arch)
    if enable_layout_realignment:
        report.realigned_structs = layouts_differ(
            mobile_layout, server_layout, list(module.structs.values()))
        module.metadata[UNIFIED_LAYOUTS_KEY] = {
            name: mobile_layout.struct_layout(struct)
            for name, struct in module.structs.items()
            if not struct.is_opaque}
        module.metadata[UNIFIED_POINTER_KEY] = mobile_arch.pointer_bytes
        module.metadata[UNIFIED_ORDER_KEY] = mobile_arch.endianness
    report.needs_pointer_conversion = (
        mobile_arch.pointer_bytes != server_arch.pointer_bytes)
    report.needs_endianness_translation = (
        mobile_arch.endianness != server_arch.endianness)
    return report


def replace_heap_allocations(module: Module) -> int:
    """Rewrite every allocation/deallocation call site to the UVA heap."""
    replaced = 0
    for fn in list(module.defined_functions()):
        for instruction in fn.instructions():
            if not isinstance(instruction, inst.Call):
                continue
            callee = instruction.called_function
            if callee is None or callee.is_definition:
                continue
            new_name = _ALLOC_REWRITES.get(callee.name)
            if new_name is None:
                continue
            replacement = module.declare_function(new_name, callee.ftype)
            instruction.replace_operand(callee, replacement)
            instruction.ftype = replacement.ftype
            replaced += 1
    return replaced


def reallocate_referenced_globals(module: Module,
                                  target_names: List[str],
                                  callgraph: Optional[CallGraph] = None
                                  ) -> int:
    """Mark every global referenced by the offloaded tasks (transitively,
    including functions reachable through taken addresses) as
    UVA-allocated."""
    callgraph = callgraph or CallGraph(module)
    reachable: Set[str] = set()
    roots = list(target_names) + sorted(callgraph.address_taken)
    reachable |= callgraph.reachable_from(roots)
    referenced: Set[str] = set()
    for name in reachable:
        fn = module.get_function(name)
        if fn is None or not fn.is_definition:
            continue
        for instruction in fn.instructions():
            for op in instruction.operands:
                if isinstance(op, GlobalVariable):
                    referenced.add(op.name)
    count = 0
    for name in referenced:
        gv = module.globals.get(name)
        if gv is not None and not gv.uva_allocated:
            gv.uva_allocated = True
            count += 1
    return count


def unified_data_layout(module: Module, arch: TargetArch) -> DataLayout:
    """The data layout a machine of ``arch`` must use for this module: the
    unified (mobile) layout if unification ran, else the native one."""
    layouts: Dict[str, StructLayout] = module.metadata.get(
        UNIFIED_LAYOUTS_KEY, {})
    pointer_bytes = module.metadata.get(UNIFIED_POINTER_KEY, 0)
    byte_order = module.metadata.get(UNIFIED_ORDER_KEY, "")
    return DataLayout(arch,
                      pointer_bytes=pointer_bytes,
                      struct_overrides=layouts,
                      byte_order=byte_order)
