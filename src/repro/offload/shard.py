"""Shard analysis: split a data-parallel offload target into index ranges.

The paper's runtime ships each selected region to exactly one server.  Elf
(SNIPPETS.md #2) showed that a data-parallel kernel can instead be scattered
across *k* servers as index-range shards and gathered afterwards.  This
module is the compiler half of that scheme: it proves a target is safe to
shard and emits a range wrapper ``__no_shard_<target>`` that executes only
iterations ``[lo, hi)`` of the target's top-level loop.

The proof obligations are deliberately conservative — a refusal simply
degrades the invocation to the paper's k=1 path, it never changes program
semantics:

* exactly one top-level natural loop with a canonical induction variable
  (``i = C; i < bound; i = i + 1`` in clang -O0 alloca form);
* the bound is a compile-time constant or an ``i32`` global never written
  by the target (read at run time to size the shards);
* no calls, inline asm or syscalls anywhere in the target;
* every in-loop memory *store* is affine in the IV (``base[i] = ...``) so
  shards write disjoint elements and the UVA dirty deltas merge cleanly;
* every in-loop read of mutable state is either per-iteration fresh (an
  alloca re-initialized by a dominating in-loop store — no loop-carried
  scalar dependence) or reads shard-invariant data (distinct root globals
  are assumed not to alias, a restrict-style contract documented in
  docs/parallel-offload.md); a read whose base has *no* provable root
  global is refused whenever the target writes memory at all — an affine
  index alone cannot prove same-element access on an unproven base;
* no memory reads or writes outside the loop, and the return value is
  void or a compile-time constant (so the gathered result is
  shard-schedule independent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.loops import Loop, LoopInfo
from ..ir import instructions as inst
from ..ir.module import Module
from ..ir.types import FunctionType, I32
from ..ir.values import (Argument, BasicBlock, Constant, Function,
                         GlobalVariable, Value)

# Range wrappers follow the runtime's ``__no_`` namespace (cf. the
# partitioner's ``__no_offload_`` request stubs).
SHARD_PREFIX = "__no_shard_"

_PEELABLE_CASTS = ("sext", "zext", "trunc")


@dataclass(frozen=True)
class ShardSpec:
    """Everything the runtime needs to scatter one target."""

    target: str
    wrapper: str                    # __no_shard_<target>(args..., lo, hi)
    iv_init: int                    # first iteration index
    bound_const: Optional[int]      # exclusive static bound ...
    bound_global: Optional[str]     # ... or i32 global read at run time ...
    bound_arg: Optional[int] = None  # ... or the index of an i32 argument
    ret_const: Optional[int] = None  # constant return value (None = void)

    def static_trip_count(self) -> Optional[int]:
        if self.bound_const is None:
            return None
        return max(0, self.bound_const - self.iv_init)


def contiguous_ranges(start: int,
                      sizes: Sequence[int]) -> List[Tuple[int, int]]:
    """Turn per-shard iteration counts into contiguous [lo, hi) ranges."""
    ranges: List[Tuple[int, int]] = []
    lo = start
    for size in sizes:
        ranges.append((lo, lo + size))
        lo += size
    return ranges


def analyze_shard_targets(module: Module, target_names: Iterable[str]
                          ) -> Tuple[Dict[str, "ShardSpec"], Dict[str, str]]:
    """Analyze each offload target in the *unified* module and clone a
    range wrapper for every shardable one.  Returns ``(specs, refusals)``
    keyed by target name.  Wrappers are appended after every existing
    function, so code addresses of the original program are unchanged."""
    specs: Dict[str, ShardSpec] = {}
    refusals: Dict[str, str] = {}
    for name in sorted(set(target_names)):
        fn = module.get_function(name)
        if fn is None or not fn.is_definition:
            refusals[name] = "target has no definition"
            continue
        analysis = _analyze(fn)
        if isinstance(analysis, str):
            refusals[name] = analysis
            continue
        wrapper = _build_wrapper(module, fn, analysis)
        specs[name] = ShardSpec(
            target=name, wrapper=wrapper.name,
            iv_init=analysis.iv_init,
            bound_const=analysis.bound_const,
            bound_global=analysis.bound_global,
            bound_arg=analysis.bound_arg,
            ret_const=analysis.ret_const)
    return specs, refusals


# ---------------------------------------------------------------------------
# analysis


@dataclass
class _Analysis:
    loop: Loop
    iv: inst.Alloca
    init_store: inst.Store          # outside-loop ``store C, %i``
    cond: inst.Cmp                  # header ``icmp slt/ult (load %i), bound``
    iv_init: int
    bound_const: Optional[int]
    bound_global: Optional[str]
    bound_arg: Optional[int]
    ret_const: Optional[int]


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


def _peel(value: Value) -> Value:
    while isinstance(value, inst.Cast) and value.op in _PEELABLE_CASTS:
        value = value.value
    return value


def _root_global(value: Value) -> Optional[GlobalVariable]:
    """The global object (or global pointer) a base address derives from.

    ``None`` means the chain is not analyzable; distinct root globals are
    assumed to address disjoint objects (restrict-style contract)."""
    v = value
    while True:
        if isinstance(v, GlobalVariable):
            return v
        if isinstance(v, inst.Load) and isinstance(v.pointer, GlobalVariable):
            return v.pointer
        if isinstance(v, inst.Gep):
            if not all(isinstance(i, Constant) for i in v.indices):
                return None
            v = v.base
            continue
        if isinstance(v, inst.Cast) and v.op == "bitcast":
            v = v.value
            continue
        return None


def _before(a: inst.Instruction, b: inst.Instruction,
            block: BasicBlock) -> bool:
    for ins in block.instructions:
        if ins is a:
            return True
        if ins is b:
            return False
    return False


def _analyze(fn: Function):  # -> _Analysis | str
    """Prove ``fn`` shardable; returns an :class:`_Analysis` or the
    refusal reason as a string."""
    for ins in fn.instructions():
        if isinstance(ins, (inst.Call, inst.InlineAsm, inst.Syscall)):
            return "target calls other functions"

    li = LoopInfo(fn)
    tops = li.top_level_loops()
    if len(tops) != 1:
        return ("target has no loop" if not tops
                else "target has multiple top-level loops")
    loop = tops[0]
    in_loop: Set[int] = {id(b) for b in loop.blocks}

    def inside(ins: inst.Instruction) -> bool:
        return ins.parent is not None and id(ins.parent) in in_loop

    # Canonical induction variable from the header's exit test.
    term = loop.header.terminator
    if not isinstance(term, inst.CondBr):
        return "loop header does not end in a conditional branch"
    if (id(term.if_true) not in in_loop) or (id(term.if_false) in in_loop):
        return "loop header branch is not a canonical exit test"
    cond = term.cond
    if not isinstance(cond, inst.Cmp) or cond.pred not in ("slt", "ult"):
        return "loop bound is not a < comparison"
    iv_load = cond.lhs
    if not (isinstance(iv_load, inst.Load)
            and isinstance(iv_load.pointer, inst.Alloca)):
        return "no canonical induction variable"
    iv = iv_load.pointer
    if iv.allocated_type != I32:
        return "induction variable is not i32"

    # The IV address must not escape: only loads and stores touch it.
    for ins in fn.instructions():
        for op in ins.operands:
            if op is iv and not (
                    isinstance(ins, inst.Load)
                    or (isinstance(ins, inst.Store) and ins.pointer is iv)):
                return "induction variable address escapes"

    # Exactly one in-loop increment (i = i + 1) and one dominating init.
    iv_stores = [ins for ins in fn.instructions()
                 if isinstance(ins, inst.Store) and ins.pointer is iv]
    steps = [s for s in iv_stores if inside(s)]
    inits = [s for s in iv_stores if not inside(s)]
    if len(steps) != 1 or len(inits) != 1:
        return "induction variable is not i = C; ...; i = i + 1"
    step, init = steps[0], inits[0]
    step_value = step.value
    if not (isinstance(step_value, inst.BinOp) and step_value.op == "add"
            and isinstance(step_value.lhs, inst.Load)
            and step_value.lhs.pointer is iv and inside(step_value.lhs)
            and isinstance(step_value.rhs, Constant)
            and step_value.rhs.value == 1):
        return "induction variable step is not +1"
    if not isinstance(init.value, Constant):
        return "induction variable start is not a constant"
    if not li.domtree.dominates(init.parent, loop.header):
        return "induction variable init does not dominate the loop"
    iv_init = _signed32(init.value.value)

    # Bound: a constant, an i32 global the target never writes, or an
    # i32 argument (read through its clang -O0 entry-block spill slot).
    bound = cond.rhs
    bound_const: Optional[int] = None
    bound_global: Optional[str] = None
    bound_arg: Optional[int] = None
    if isinstance(bound, Constant):
        bound_const = _signed32(bound.value)
    elif (isinstance(bound, inst.Load)
          and isinstance(bound.pointer, GlobalVariable)
          and bound.type == I32):
        gv = bound.pointer
        for ins in fn.instructions():
            if isinstance(ins, inst.Store) and ins.pointer is gv:
                return "loop bound global is written by the target"
        bound_global = gv.name
    elif (isinstance(bound, inst.Load)
          and isinstance(bound.pointer, inst.Alloca)
          and bound.type == I32):
        slot = bound.pointer
        spills = [ins for ins in fn.instructions()
                  if isinstance(ins, inst.Store) and ins.pointer is slot]
        if not (len(spills) == 1 and not inside(spills[0])
                and isinstance(spills[0].value, Argument)
                and spills[0].value.type == I32
                and li.domtree.dominates(spills[0].parent, loop.header)):
            return "loop bound is neither constant nor a readable global"
        bound_arg = spills[0].value.index
    else:
        return "loop bound is neither constant nor a readable global"

    # Classify stores: IV (done), private allocas, affine memory writes.
    stored_roots: Set[int] = set()
    alloca_stores: Dict[int, List[inst.Store]] = {}
    for ins in fn.instructions():
        if not isinstance(ins, inst.Store) or ins.pointer is iv:
            continue
        pointer = ins.pointer
        if isinstance(pointer, inst.Alloca):
            alloca_stores.setdefault(id(pointer), []).append(ins)
            continue
        if not inside(ins):
            return "memory write outside the loop"
        if not (isinstance(pointer, inst.Gep) and len(pointer.indices) == 1):
            return "in-loop store is not a one-dimensional element write"
        index = _peel(pointer.indices[0])
        if not (isinstance(index, inst.Load) and index.pointer is iv
                and inside(index)):
            return "in-loop store index is not the induction variable"
        root = _root_global(pointer.base)
        if root is None:
            return "in-loop store base is not rooted in a global"
        stored_roots.add(id(root))

    # Classify loads: IV, fresh/loop-invariant allocas, shard-safe memory.
    for ins in fn.instructions():
        if not isinstance(ins, inst.Load) or ins.pointer is iv:
            continue
        pointer = ins.pointer
        if isinstance(pointer, inst.Alloca):
            writes = [s for s in alloca_stores.get(id(pointer), ())
                      if inside(s)]
            if not inside(ins) or not writes:
                continue  # private scratch / loop-invariant spill
            # Per-iteration freshness: some in-loop store must dominate.
            fresh = any(
                (s.parent is ins.parent and _before(s, ins, ins.parent))
                or (s.parent is not ins.parent
                    and li.domtree.dominates(s.parent, ins.parent))
                for s in writes)
            if not fresh:
                return "loop-carried dependence on a local variable"
            continue
        if not inside(ins):
            return "memory read outside the loop"
        if isinstance(pointer, GlobalVariable):
            if id(pointer) in stored_roots:
                return "in-loop read of shard-written data"
            continue
        if isinstance(pointer, inst.Gep):
            root = _root_global(pointer.base)
            if root is None:
                # An affine index proves nothing without a proven base:
                # ``int *q = a - 1`` makes ``q[i]`` read ``a[i-1]``, a
                # cross-shard dependence.  With any shard-written root
                # the unproven base may alias it, so refuse outright.
                if stored_roots:
                    return "unanalyzable in-loop read"
                continue
            if id(root) in stored_roots:
                index = (_peel(pointer.indices[0])
                         if len(pointer.indices) == 1 else None)
                affine = (isinstance(index, inst.Load)
                          and index.pointer is iv and inside(index))
                if not affine:
                    return "in-loop read of shard-written data"
            continue
        return "unanalyzable in-loop read"

    # Return value must not depend on the shard schedule.
    ret_const: Optional[int] = None
    rets = [ins for ins in fn.instructions() if isinstance(ins, inst.Ret)]
    if not fn.ftype.ret.is_void:
        values = []
        for ret in rets:
            if not isinstance(ret.value, Constant):
                return "return value is not a compile-time constant"
            values.append(_signed32(ret.value.value))
        if len(set(values)) != 1:
            return "return value differs across paths"
        ret_const = values[0]
    return _Analysis(loop=loop, iv=iv, init_store=init, cond=cond,
                     iv_init=iv_init, bound_const=bound_const,
                     bound_global=bound_global, bound_arg=bound_arg,
                     ret_const=ret_const)


# ---------------------------------------------------------------------------
# wrapper cloning


def _build_wrapper(module: Module, fn: Function,
                   analysis: _Analysis) -> Function:
    """Clone ``fn`` as ``__no_shard_<fn>`` with two extra i32 arguments
    ``lo``/``hi`` replacing the IV start constant and the loop bound."""
    ftype = FunctionType(fn.ftype.ret, list(fn.ftype.params) + [I32, I32])
    wrapper = Function(SHARD_PREFIX + fn.name, ftype,
                       [a.name for a in fn.args] + ["shard.lo", "shard.hi"])
    module.add_function(wrapper)
    wrapper.source_lines = getattr(fn, "source_lines", 1)

    value_map: Dict[int, Value] = {
        id(a): wrapper.args[i] for i, a in enumerate(fn.args)}
    block_map: Dict[int, BasicBlock] = {}
    for block in fn.blocks:
        block_map[id(block)] = wrapper.add_block(block.name)

    for block in fn.blocks:
        new_block = block_map[id(block)]
        for ins in block.instructions:
            clone = _clone_instruction(ins, block_map)
            value_map[id(ins)] = clone
            new_block.append(clone)

    # Remap operands to the cloned definitions (arguments included).
    for block in wrapper.blocks:
        for ins in block.instructions:
            for op in list(ins.operands):
                mapped = value_map.get(id(op))
                if mapped is not None:
                    ins.replace_operand(op, mapped)

    lo, hi = wrapper.args[-2], wrapper.args[-1]
    init_clone = value_map[id(analysis.init_store)]
    init_clone.replace_operand(init_clone.value, lo)
    cond_clone = value_map[id(analysis.cond)]
    old_bound = cond_clone.rhs
    cond_clone.replace_operand(old_bound, hi)
    _drop_if_dead(wrapper, old_bound)
    return wrapper


def _clone_instruction(ins: inst.Instruction,
                       block_map: Dict[int, BasicBlock]) -> inst.Instruction:
    """Shallow-clone one instruction.  Value operands still reference the
    originals (remapped by the caller afterwards); block targets are
    remapped here since they are attributes, not operands."""
    if isinstance(ins, inst.Alloca):
        return inst.Alloca(ins.allocated_type, ins.name)
    if isinstance(ins, inst.Load):
        return inst.Load(ins.pointer, ins.name)
    if isinstance(ins, inst.Store):
        return inst.Store(ins.value, ins.pointer)
    if isinstance(ins, inst.Gep):
        return inst.Gep(ins.base, list(ins.indices), ins.name)
    if isinstance(ins, inst.BinOp):
        return inst.BinOp(ins.op, ins.lhs, ins.rhs, ins.name)
    if isinstance(ins, inst.Cmp):
        return inst.Cmp(ins.pred, ins.lhs, ins.rhs, ins.name)
    if isinstance(ins, inst.Cast):
        return inst.Cast(ins.op, ins.value, ins.type, ins.name)
    if isinstance(ins, inst.Select):
        return inst.Select(ins.operands[0], ins.operands[1],
                           ins.operands[2], ins.name)
    if isinstance(ins, inst.Br):
        return inst.Br(block_map[id(ins.target)])
    if isinstance(ins, inst.CondBr):
        return inst.CondBr(ins.cond, block_map[id(ins.if_true)],
                           block_map[id(ins.if_false)])
    if isinstance(ins, inst.Switch):
        clone = inst.Switch(ins.value, block_map[id(ins.default)])
        clone.cases = [(c, block_map[id(b)]) for c, b in ins.cases]
        return clone
    if isinstance(ins, inst.Ret):
        return inst.Ret(ins.value)
    if isinstance(ins, inst.Unreachable):
        return inst.Unreachable()
    raise TypeError(f"cannot clone {ins.opcode} into a shard wrapper")


def _drop_if_dead(fn: Function, value: Value) -> None:
    """Remove a cloned bound load left dead by the hi-argument rewrite."""
    if not isinstance(value, inst.Instruction):
        return
    for ins in fn.instructions():
        if any(op is value for op in ins.operands):
            return
    if value.parent is not None:
        value.parent.remove(value)
