"""Target selector (paper, Section 3.1).

Combines the hot function/loop profiler, the function filter and the static
performance estimator: offload candidates are profiled functions and loops;
machine-specific ones are filtered out; the estimator scores the rest; and
profitable, non-overlapping candidates are chosen (outermost first, so that
selecting ``getAITurn`` subsumes its inner ``for_i``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..analysis.callgraph import CallGraph
from ..analysis.loops import Loop, LoopInfo
from ..ir import instructions as inst
from ..ir.module import Module
from ..profiler.profile_data import ProfileData
from .estimator import StaticEstimate, StaticPerformanceEstimator
from .filter import FilterVerdict, FunctionFilter


@dataclass
class Candidate:
    name: str
    kind: str                      # "function" or "loop"
    function_name: str
    estimate: StaticEstimate
    verdict: FilterVerdict
    loop: Optional[Loop] = None

    @property
    def selectable(self) -> bool:
        return (not self.verdict.machine_specific
                and self.estimate.profitable)


@dataclass
class SelectionResult:
    candidates: Dict[str, Candidate]
    selected: List[Candidate]

    def selected_names(self) -> List[str]:
        return [c.name for c in self.selected]


class TargetSelector:
    def __init__(self, module: Module, profile: ProfileData,
                 estimator: StaticPerformanceEstimator,
                 filter_: Optional[FunctionFilter] = None,
                 min_gain_fraction: float = 0.05):
        self.module = module
        self.profile = profile
        self.estimator = estimator
        # A target must promise at least this fraction of whole-program
        # time as gain; offloading trivial helpers is all protocol
        # overhead and no win.
        self.min_gain_fraction = min_gain_fraction
        self.callgraph = (filter_.callgraph if filter_ is not None
                          else CallGraph(module))
        self.filter = filter_ or FunctionFilter(module, self.callgraph)
        self._loop_infos: Dict[str, LoopInfo] = {
            fn.name: LoopInfo(fn) for fn in module.defined_functions()}

    def select(self, exclude: Optional[Set[str]] = None) -> SelectionResult:
        exclude = exclude or set()
        candidates = self._build_candidates()
        for name in exclude:
            if name in candidates:
                candidates[name].verdict.machine_specific = True
                candidates[name].verdict.reasons.append("excluded")
        threshold = self.min_gain_fraction * self.profile.program_seconds
        ordered = sorted(
            (c for c in candidates.values()
             if c.selectable and c.estimate.t_gain >= threshold),
            key=lambda c: (-c.estimate.t_gain, c.name))
        selected: List[Candidate] = []
        covered: Set[str] = set()
        for candidate in ordered:
            if candidate.name in covered:
                continue
            if self._overlaps_selected(candidate, selected):
                continue
            selected.append(candidate)
            covered |= self._coverage_of(candidate)
        selected.sort(key=lambda c: c.name)
        return SelectionResult(candidates=candidates, selected=selected)

    # -- candidate construction ------------------------------------------
    def _build_candidates(self) -> Dict[str, Candidate]:
        out: Dict[str, Candidate] = {}
        for fn in self.module.defined_functions():
            prof = self.profile.candidates.get(fn.name)
            if prof is None or prof.invocations == 0:
                continue
            verdict = self.filter.verdict(fn.name)
            if fn.name == "main":
                # the application entry point anchors local execution
                verdict = FilterVerdict(fn.name, True,
                                        ["program entry point"])
            out[fn.name] = Candidate(
                name=fn.name, kind="function", function_name=fn.name,
                estimate=self.estimator.estimate(prof), verdict=verdict)
            for loop in self._loop_infos[fn.name].loops:
                lprof = self.profile.candidates.get(loop.name)
                if lprof is None or lprof.invocations == 0:
                    continue
                out[loop.name] = Candidate(
                    name=loop.name, kind="loop", function_name=fn.name,
                    estimate=self.estimator.estimate(lprof),
                    verdict=self.filter.classify_loop(loop), loop=loop)
        return out

    # -- overlap / subsumption ---------------------------------------------
    def _coverage_of(self, candidate: Candidate) -> Set[str]:
        """Names (functions and loops) subsumed by offloading this
        candidate."""
        covered: Set[str] = {candidate.name}
        if candidate.kind == "function":
            fns = {candidate.function_name}
            fns |= self.callgraph.transitive_callees(candidate.function_name)
        else:
            called = self._functions_called_in_loop(candidate.loop)
            fns = set(called)
            for name in called:
                fns |= self.callgraph.transitive_callees(name)
            # nested loops of the same loop
            info = self._loop_infos[candidate.function_name]
            for loop in info.loops:
                if loop.blocks <= candidate.loop.blocks:
                    covered.add(loop.name)
        for name in fns:
            covered.add(name)
            info = self._loop_infos.get(name)
            if info is not None:
                covered.update(loop.name for loop in info.loops)
        return covered

    def _overlaps_selected(self, candidate: Candidate,
                           selected: List[Candidate]) -> bool:
        coverage = self._coverage_of(candidate)
        for other in selected:
            if other.name in coverage:
                return True
        return False

    def _functions_called_in_loop(self, loop: Loop) -> List[str]:
        names: List[str] = []
        for block in loop.blocks:
            for instruction in block.instructions:
                if isinstance(instruction, inst.Call):
                    callee = instruction.called_function
                    if callee is not None and callee.is_definition:
                        names.append(callee.name)
        return names
