"""Static performance estimator (paper, Section 3.1, Equation 1).

    Tg = (Tm - Ts) - Tc  =  Tm * (1 - 1/R)  -  2 * (M / BW) * Ninvo

where Tm is mobile execution time of the candidate, R the average
server/mobile performance ratio, M the memory the task uses, BW the network
bandwidth, and Ninvo the invocation count.  Shared data crosses the network
twice per invocation (live-ins out, dirty data back), hence the factor 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..profiler.profile_data import CandidateProfile, ProfileData


@dataclass(frozen=True)
class EstimatorParams:
    """Environment assumptions of the static estimator."""

    performance_ratio: float        # R
    bandwidth_bytes_per_s: float    # BW
    # Incremental-data-plane awareness (docs/uva-data-plane.md): with the
    # cross-invocation page cache and sub-page deltas, invocations after
    # the first ship only this fraction of M.  The default of 1.0 is the
    # paper's original Equation 1 (every invocation pays the full 2M/BW).
    warm_transfer_fraction: float = 1.0

    def __post_init__(self):
        if self.performance_ratio <= 1.0:
            raise ValueError("performance ratio must exceed 1 "
                             "(the server must be faster)")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 < self.warm_transfer_fraction <= 1.0:
            raise ValueError("warm transfer fraction must be in (0, 1]")


@dataclass
class StaticEstimate:
    """Per-candidate output of the estimator — the Table 3 columns."""

    name: str
    t_mobile: float          # Tm: profiled mobile execution time
    t_ideal: float           # Tm * (1 - 1/R): ideal gain
    t_comm: float            # Tc: 2 * M/BW * Ninvo
    invocations: int
    memory_bytes: int

    @property
    def t_gain(self) -> float:
        return self.t_ideal - self.t_comm

    @property
    def profitable(self) -> bool:
        return self.t_gain > 0


class StaticPerformanceEstimator:
    def __init__(self, params: EstimatorParams):
        self.params = params

    def estimate(self, profile: CandidateProfile) -> StaticEstimate:
        t_mobile = profile.total_seconds
        t_ideal = t_mobile * (1.0 - 1.0 / self.params.performance_ratio)
        # The first invocation pays the full transfer; with the
        # incremental data plane, warm invocations pay only a fraction.
        warm = self.params.warm_transfer_fraction
        effective_invocations = (
            profile.invocations if profile.invocations <= 1
            else 1.0 + (profile.invocations - 1) * warm)
        t_comm = (2.0 * profile.memory_bytes
                  / self.params.bandwidth_bytes_per_s
                  * effective_invocations)
        return StaticEstimate(
            name=profile.name,
            t_mobile=t_mobile,
            t_ideal=t_ideal,
            t_comm=t_comm,
            invocations=profile.invocations,
            memory_bytes=profile.memory_bytes,
        )

    def estimate_all(self, data: ProfileData,
                     names: Optional[List[str]] = None
                     ) -> Dict[str, StaticEstimate]:
        selected = (data.candidates.keys() if names is None else names)
        return {name: self.estimate(data.candidates[name])
                for name in selected}


def mbps(megabits_per_second: float) -> float:
    """Convert Mbit/s (the unit the paper quotes) to bytes/s."""
    return megabits_per_second * 1e6 / 8.0
