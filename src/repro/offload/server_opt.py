"""Server-specific optimizations (paper, Section 3.4).

* **Remote I/O manager** — output and file-I/O call sites in the server
  partition are rewritten to ``r_*`` runtime calls that forward the request
  to the mobile device (its files, its screen), instead of poisoning the
  whole hot region as machine specific.
* **Function pointer mapping** — back ends place functions at different
  addresses, and shared memory holds *mobile* function addresses.  Every
  indirect call on the server first maps the loaded (mobile) address to the
  server's address (``m2s``); every store of a server function address into
  memory converts it back to the canonical mobile address (``s2m``).
"""

from __future__ import annotations

from typing import List

from ..ir import instructions as inst
from ..ir.module import Module
from ..ir.types import FunctionType, PointerType, I8
from ..ir.values import Function
from .filter import REMOTE_FILE_INPUT, REMOTE_OUTPUT

M2S_FCN_MAP = "__no_m2s_fcn_map"
S2M_FCN_MAP = "__no_s2m_fcn_map"
REMOTE_IO_PREFIX = "r_"

# sprintf formats into memory, not onto a device, so it needs no remoting.
REMOTE_IO_FUNCTIONS = (REMOTE_OUTPUT | REMOTE_FILE_INPUT) - {"sprintf"}


def apply_remote_io(server_module: Module) -> int:
    """Rewrite I/O call sites to remote I/O calls; returns sites rewritten."""
    rewritten = 0
    for fn in list(server_module.defined_functions()):
        for instruction in fn.instructions():
            if not isinstance(instruction, inst.Call):
                continue
            callee = instruction.called_function
            if callee is None or callee.is_definition:
                continue
            if callee.name not in REMOTE_IO_FUNCTIONS:
                continue
            remote = server_module.declare_function(
                REMOTE_IO_PREFIX + callee.name, callee.ftype)
            instruction.replace_operand(callee, remote)
            rewritten += 1
    return rewritten


def apply_function_pointer_mapping(server_module: Module) -> int:
    """Insert m2s translation before indirect calls and s2m translation on
    stores of function addresses; returns conversion sites inserted."""
    i8p = PointerType(I8)
    m2s = server_module.declare_function(
        M2S_FCN_MAP, FunctionType(i8p, [i8p]))
    s2m = server_module.declare_function(
        S2M_FCN_MAP, FunctionType(i8p, [i8p]))
    inserted = 0
    for fn in list(server_module.defined_functions()):
        for block in fn.blocks:
            index = 0
            while index < len(block.instructions):
                instruction = block.instructions[index]
                if (isinstance(instruction, inst.Call)
                        and instruction.is_indirect):
                    callee = instruction.callee
                    raw = inst.Cast("bitcast", callee, i8p, "fp.raw")
                    mapped = inst.Call(m2s, [raw], "fp.m2s")
                    typed = inst.Cast("bitcast", mapped, callee.type,
                                      "fp.typed")
                    block.insert(index, raw)
                    block.insert(index + 1, mapped)
                    block.insert(index + 2, typed)
                    instruction.replace_operand(callee, typed)
                    index += 4
                    inserted += 1
                    continue
                if (isinstance(instruction, inst.Store)
                        and isinstance(instruction.value, Function)):
                    value = instruction.value
                    raw = inst.Cast("bitcast", value, i8p, "fp.raw")
                    mapped = inst.Call(s2m, [raw], "fp.s2m")
                    typed = inst.Cast("bitcast", mapped, value.type,
                                      "fp.typed")
                    block.insert(index, raw)
                    block.insert(index + 1, mapped)
                    block.insert(index + 2, typed)
                    instruction.replace_operand(value, typed)
                    index += 4
                    inserted += 1
                    continue
                index += 1
    return inserted
