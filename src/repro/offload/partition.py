"""Partitioning: derive the mobile and server binaries (paper, Section 3.3).

* **Mobile partition** — every call site of an offload target is redirected
  to a generated stub that consults the runtime's *dynamic* performance
  estimator (``__no_should_offload``) and either requests offloading
  (``__no_offload_<target>``) or falls back to the local body, exactly the
  ``isProfitable``/``requestOffload`` pattern of Figure 3(b).
* **Server partition** — only the offload targets and whatever they can
  reach (including address-taken functions callable through pointers)
  survive; everything else, ``getPlayerTurn``-style, is removed.  Request
  dispatch itself lives in the Native Offloader runtime.
* **Stack reallocation** — the server executes targets on a stack far from
  the mobile stack in the shared UVA space; the machine model's
  ``SERVER_STACK_TOP`` realizes this, and the partition records it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.callgraph import CallGraph
from ..ir import instructions as inst
from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import FunctionType, I1, I32
from ..ir.values import Constant, Function
from ..machine.machine import SERVER_STACK_TOP

SHOULD_OFFLOAD = "__no_should_offload"
OFFLOAD_PREFIX = "__no_offload_"
STUB_SUFFIX = "__offstub"


@dataclass
class OffloadTarget:
    """One compiled offload target."""

    id: int
    name: str           # function name in both partitions
    kind: str           # "function" or "loop" (outlined loops included)


@dataclass
class PartitionResult:
    mobile_module: Module
    server_module: Module
    targets: List[OffloadTarget]
    removed_server_functions: List[str] = field(default_factory=list)
    server_stack_base: int = SERVER_STACK_TOP

    def target_named(self, name: str) -> OffloadTarget:
        for target in self.targets:
            if target.name == name:
                return target
        raise KeyError(name)

    def target_by_id(self, target_id: int) -> OffloadTarget:
        for target in self.targets:
            if target.id == target_id:
                return target
        raise KeyError(target_id)


def partition(module: Module, target_names: List[str],
              target_kinds: Optional[Dict[str, str]] = None,
              server_roots: Optional[List[str]] = None
              ) -> PartitionResult:
    """Split a unified module into mobile and server partitions.

    ``server_roots`` names extra functions the server partition must keep
    even though no target calls them — the scatter/gather shard wrappers
    the runtime invokes directly."""
    kinds = target_kinds or {}
    targets = [OffloadTarget(i + 1, name, kinds.get(name, "function"))
               for i, name in enumerate(sorted(target_names))]
    mobile = module.clone(f"{module.name}.mobile")
    server = module.clone(f"{module.name}.server")
    for target in targets:
        _install_mobile_stub(mobile, target)
    removed = _remove_unused_server_functions(
        server, [t.name for t in targets] + sorted(server_roots or []))
    return PartitionResult(mobile_module=mobile, server_module=server,
                           targets=targets,
                           removed_server_functions=removed)


def _install_mobile_stub(module: Module, target: OffloadTarget) -> None:
    fn = module.function(target.name)
    should = module.declare_function(
        SHOULD_OFFLOAD, FunctionType(I1, [I32]))
    remote = module.declare_function(
        OFFLOAD_PREFIX + target.name, fn.ftype)
    stub = Function(target.name + STUB_SUFFIX, fn.ftype,
                    [a.name for a in fn.args])
    module.add_function(stub)

    entry = stub.add_block("entry")
    off_block = stub.add_block("offload")
    local_block = stub.add_block("local")
    b = IRBuilder(entry)
    decision = b.call(should, [Constant(I32, target.id)], "go")
    b.condbr(decision, off_block, local_block)
    b.position_at_end(off_block)
    remote_result = b.call(remote, list(stub.args))
    b.ret(None if fn.ftype.ret.is_void else remote_result)
    b.position_at_end(local_block)
    local_result = b.call(fn, list(stub.args))
    b.ret(None if fn.ftype.ret.is_void else local_result)

    # Redirect every direct call site (outside the stub and the target
    # itself — recursive calls stay local to one placement).
    for caller in list(module.defined_functions()):
        if caller is stub or caller is fn:
            continue
        for instruction in caller.instructions():
            if (isinstance(instruction, inst.Call)
                    and instruction.called_function is fn):
                instruction.replace_operand(fn, stub)


def _remove_unused_server_functions(module: Module,
                                    target_names: List[str]) -> List[str]:
    callgraph = CallGraph(module)
    roots = list(target_names) + sorted(callgraph.address_taken)
    keep = callgraph.reachable_from(roots)
    keep.update(target_names)
    removed = []
    for name in list(module.functions):
        fn = module.functions[name]
        if not fn.is_definition:
            continue  # externals stay declared
        if name not in keep:
            module.remove_function(name)
            removed.append(name)
    return sorted(removed)
