"""The Native Offloader compiler pipeline (paper, Figure 2).

    unmodified IR
      -> target selection   (profile, filter, Equation 1)
      -> memory unification (UVA allocations, global realloc, layouts)
      -> partition          (mobile stubs + pruned server module)
      -> server-specific optimization (remote I/O, fn-ptr mapping)
      -> offloading-enabled mobile and server "binaries"

Every stage can be disabled through :class:`CompilerOptions` for the
ablation studies in the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.callgraph import CallGraph
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..profiler.profile_data import ProfileData
from ..targets.arch import TargetArch, performance_ratio
from ..targets.presets import ARM32, X86_64
from .estimator import (EstimatorParams, StaticPerformanceEstimator, mbps)
from .filter import FunctionFilter
from .outline import OutliningError, can_outline, outline_loop
from .partition import PartitionResult, partition
from .selector import Candidate, SelectionResult, TargetSelector
from .server_opt import (apply_function_pointer_mapping, apply_remote_io)
from .shard import SHARD_PREFIX, ShardSpec, analyze_shard_targets
from .unify import UnificationReport, unify_memory


@dataclass
class CompilerOptions:
    mobile_arch: TargetArch = ARM32
    server_arch: TargetArch = X86_64
    # Static estimator environment.  The paper's worked example assumes
    # R=5 and BW=80 Mbps (Table 3); the *default* compilation bandwidth is
    # optimistic (LAN-class) because static selection only gates which
    # targets get offloading code — the dynamic estimator re-decides per
    # invocation against the live network, declining when it is too slow.
    bandwidth_mbps: float = 1000.0
    performance_ratio: Optional[float] = None
    # Minimum promised gain (as a fraction of whole-program time) for a
    # candidate to be worth generating offloading code for.
    min_gain_fraction: float = 0.12
    enable_remote_io: bool = True
    enable_fn_ptr_mapping: bool = True
    enable_heap_replacement: bool = True
    enable_global_realloc: bool = True
    enable_layout_realignment: bool = True
    # Force a specific target set (bypasses selection); for tests/ablation.
    forced_targets: Optional[List[str]] = None
    verify: bool = True

    def resolved_ratio(self) -> float:
        if self.performance_ratio is not None:
            return self.performance_ratio
        return performance_ratio(self.server_arch, self.mobile_arch)


@dataclass
class OffloadProgram:
    """Everything the runtime needs to execute an offloading-enabled app."""

    name: str
    mobile_module: Module
    server_module: Module
    partition: PartitionResult
    selection: Optional[SelectionResult]
    unification: UnificationReport
    options: CompilerOptions
    profile: ProfileData
    remote_io_sites: int = 0
    fn_ptr_sites: int = 0
    outlined_loops: List[str] = field(default_factory=list)
    # Scatter/gather support (docs/parallel-offload.md): per-target range
    # wrappers for data-parallel targets, and why the rest were refused.
    shard_specs: Dict[str, ShardSpec] = field(default_factory=dict)
    shard_refusals: Dict[str, str] = field(default_factory=dict)

    @property
    def targets(self):
        return self.partition.targets

    def target_names(self) -> List[str]:
        return [t.name for t in self.partition.targets]

    def statistics(self) -> Dict[str, object]:
        """Static per-program statistics — the left half of Table 4."""
        # Generated shard wrappers are scaffolding, not program functions;
        # keeping them out preserves the Table 4 figures at any shard count.
        server_defined = sum(
            1 for f in self.server_module.defined_functions()
            if not f.name.startswith(SHARD_PREFIX))
        mobile_defined = sum(
            1 for f in self.mobile_module.defined_functions()
            if not f.name.startswith(SHARD_PREFIX))
        return {
            "program": self.name,
            "offloaded_functions": server_defined,
            "total_functions": mobile_defined,
            "referenced_globals": self.unification.uva_globals,
            "total_globals": self.unification.total_globals,
            "fn_ptr_sites": self.fn_ptr_sites,
            "remote_io_sites": self.remote_io_sites,
            "targets": self.target_names(),
        }


class NativeOffloaderCompiler:
    """Drives the full pipeline over one application module."""

    def __init__(self, options: Optional[CompilerOptions] = None):
        self.options = options or CompilerOptions()

    def compile(self, module: Module, profile: ProfileData
                ) -> OffloadProgram:
        opts = self.options
        work = module.clone(module.name)

        selection: Optional[SelectionResult] = None
        if opts.forced_targets is None:
            selection = self._select(work, profile)
            chosen = selection.selected
        else:
            chosen = [self._forced_candidate(work, profile, name)
                      for name in opts.forced_targets]

        target_names: List[str] = []
        target_kinds: Dict[str, str] = {}
        outlined: List[str] = []
        for candidate in chosen:
            if candidate.kind == "loop":
                try:
                    outline_loop(work, candidate.loop, candidate.name)
                except OutliningError:
                    continue
                outlined.append(candidate.name)
            target_names.append(candidate.name)
            target_kinds[candidate.name] = candidate.kind
        if opts.verify:
            verify_module(work)

        callgraph = CallGraph(work)
        unification = unify_memory(
            work, opts.mobile_arch, opts.server_arch, target_names,
            callgraph=callgraph,
            enable_heap_replacement=opts.enable_heap_replacement,
            enable_global_realloc=opts.enable_global_realloc,
            enable_layout_realignment=opts.enable_layout_realignment)

        # Shard analysis runs on the unified module so the range wrappers
        # are cloned into *both* partitions: the server executes them, the
        # mobile replays straggler shards locally.  Wrappers are appended
        # after every existing function, keeping k=1 byte-identical.
        shard_specs, shard_refusals = analyze_shard_targets(
            work, target_names)

        result = partition(work, target_names, target_kinds,
                           server_roots=[spec.wrapper
                                         for spec in shard_specs.values()])

        remote_io_sites = 0
        if opts.enable_remote_io:
            remote_io_sites = apply_remote_io(result.server_module)
        fn_ptr_sites = 0
        if opts.enable_fn_ptr_mapping:
            fn_ptr_sites = apply_function_pointer_mapping(
                result.server_module)
        if opts.verify:
            verify_module(result.mobile_module)
            verify_module(result.server_module)

        return OffloadProgram(
            name=module.name,
            mobile_module=result.mobile_module,
            server_module=result.server_module,
            partition=result,
            selection=selection,
            unification=unification,
            options=opts,
            profile=profile,
            remote_io_sites=remote_io_sites,
            fn_ptr_sites=fn_ptr_sites,
            outlined_loops=outlined,
            shard_specs=shard_specs,
            shard_refusals=shard_refusals,
        )

    # -- helpers ----------------------------------------------------------
    def _estimator(self) -> StaticPerformanceEstimator:
        params = EstimatorParams(
            performance_ratio=self.options.resolved_ratio(),
            bandwidth_bytes_per_s=mbps(self.options.bandwidth_mbps))
        return StaticPerformanceEstimator(params)

    def _select(self, module: Module, profile: ProfileData
                ) -> SelectionResult:
        filter_ = FunctionFilter(
            module, enable_remote_io=self.options.enable_remote_io)
        selector = TargetSelector(module, profile, self._estimator(),
                                  filter_,
                                  min_gain_fraction=self.options
                                  .min_gain_fraction)
        # Iterate: loop candidates that cannot be outlined are excluded and
        # selection re-runs so a containing function can win instead.
        excluded: set = set()
        while True:
            result = selector.select(exclude=excluded)
            bad = {c.name for c in result.selected
                   if c.kind == "loop" and can_outline(c.loop) is not None}
            if not bad:
                return result
            excluded |= bad

    def _forced_candidate(self, module: Module, profile: ProfileData,
                          name: str) -> Candidate:
        filter_ = FunctionFilter(
            module, enable_remote_io=self.options.enable_remote_io)
        selector = TargetSelector(module, profile, self._estimator(),
                                  filter_, min_gain_fraction=0.0)
        candidates = selector._build_candidates()
        if name not in candidates:
            raise KeyError(f"no candidate named {name}")
        return candidates[name]
