"""Loop outlining: extract a natural loop into its own function.

The paper offloads loops as well as functions (targets like
``main_for.cond`` in Table 4).  Offloading machinery operates on callable
units, so a selected loop is first outlined into a function whose arguments
are the values defined outside the loop that its body uses — in clang -O0
style IR these are the entry-block allocas of the enclosing function.

Loops with multiple exits (``break`` out of a guarded read, for instance)
are supported: the outlined function returns the index of the exit edge it
left through, and the call site dispatches on that index.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.loops import Loop
from ..ir import instructions as inst
from ..ir.types import FunctionType, I32, VOID
from ..ir.values import (Argument, BasicBlock, Constant, Function,
                         GlobalVariable, UndefValue, Value)
from ..ir.module import Module


class OutliningError(Exception):
    pass


def can_outline(loop: Loop) -> Optional[str]:
    """Returns None if the loop is outlineable, else the reason it isn't."""
    if not loop.exit_blocks():
        return "loop has no exit blocks"
    for block in loop.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, inst.Ret):
                return "loop contains a return"
    # Values defined inside the loop must not be used outside it.
    inside = set()
    for block in loop.blocks:
        for instruction in block.instructions:
            inside.add(id(instruction))
    for block in loop.function.blocks:
        if block in loop.blocks:
            continue
        for instruction in block.instructions:
            for op in instruction.operands:
                if id(op) in inside:
                    return "loop defines values used outside"
    return None


def outline_loop(module: Module, loop: Loop, name: str) -> Function:
    """Extract ``loop`` from its function into a new function named
    ``name`` returning the exit-edge index; the original site becomes a
    call plus a dispatch to the original exit blocks."""
    reason = can_outline(loop)
    if reason is not None:
        raise OutliningError(f"cannot outline {loop.name}: {reason}")
    parent = loop.function
    exit_blocks = loop.exit_blocks()

    inputs = _live_in_values(loop)
    ftype = FunctionType(I32, [v.type for v in inputs])
    arg_names = [_input_name(v, i) for i, v in enumerate(inputs)]
    outlined = Function(name, ftype, arg_names)
    module.add_function(outlined)
    outlined.source_lines = max(
        1, sum(len(b.instructions) for b in loop.blocks) // 4)

    entry = outlined.add_block("outline.entry")
    value_map: Dict[int, Value] = {
        id(v): arg for v, arg in zip(inputs, outlined.args)}

    # Move loop blocks, preserving original order.
    moved = [b for b in parent.blocks if b in loop.blocks]
    for block in moved:
        parent.blocks.remove(block)
        block.parent = outlined
        outlined.blocks.append(block)

    # One return block per exit edge, returning the exit index.
    ret_blocks: List[BasicBlock] = []
    for i, exit_block in enumerate(exit_blocks):
        ret_block = outlined.add_block(f"outline.ret{i}")
        ret_block.append(inst.Ret(Constant(I32, i)))
        ret_blocks.append(ret_block)

    entry.append(inst.Br(loop.header))

    for block in outlined.blocks:
        for instruction in block.instructions:
            for op in list(instruction.operands):
                mapped = value_map.get(id(op))
                if mapped is not None:
                    instruction.replace_operand(op, mapped)
            for i, exit_block in enumerate(exit_blocks):
                _retarget(instruction, exit_block, ret_blocks[i])

    # Replace the loop in the parent: call, then dispatch on exit index.
    call_block = parent.add_block(f"call.{name}", before=exit_blocks[0])
    call = inst.Call(outlined, list(inputs), "exitidx")
    call_block.append(call)
    if len(exit_blocks) == 1:
        call_block.append(inst.Br(exit_blocks[0]))
    else:
        switch = inst.Switch(call, exit_blocks[-1])
        for i, exit_block in enumerate(exit_blocks[:-1]):
            switch.add_case(i, exit_block)
        call_block.append(switch)
    for block in parent.blocks:
        if block is call_block:
            continue
        term = block.terminator
        if term is not None:
            _retarget(term, loop.header, call_block)
    return outlined


def _retarget(instruction: inst.Instruction, old: BasicBlock,
              new: BasicBlock) -> None:
    if isinstance(instruction, inst.Br):
        if instruction.target is old:
            instruction.target = new
    elif isinstance(instruction, inst.CondBr):
        if instruction.if_true is old:
            instruction.if_true = new
        if instruction.if_false is old:
            instruction.if_false = new
    elif isinstance(instruction, inst.Switch):
        if instruction.default is old:
            instruction.default = new
        instruction.cases = [(c, new if b is old else b)
                             for c, b in instruction.cases]


def _live_in_values(loop: Loop) -> List[Value]:
    """Values (arguments / instructions) defined outside the loop but used
    inside, in deterministic first-use order."""
    inside_defs: Set[int] = set()
    for block in loop.blocks:
        for instruction in block.instructions:
            inside_defs.add(id(instruction))
    seen: Set[int] = set()
    inputs: List[Value] = []
    ordered_blocks = [b for b in loop.function.blocks if b in loop.blocks]
    for block in ordered_blocks:
        for instruction in block.instructions:
            for op in instruction.operands:
                if isinstance(op, (Constant, GlobalVariable, Function,
                                   UndefValue, BasicBlock)):
                    continue
                if isinstance(op, (Argument, inst.Instruction)):
                    if id(op) in inside_defs or id(op) in seen:
                        continue
                    seen.add(id(op))
                    inputs.append(op)
    return inputs


def _input_name(value: Value, index: int) -> str:
    base = value.name or f"in{index}"
    return f"{base}.in"
