"""The fleet's global simulated clock and event queue.

A fleet run is a discrete-event simulation over *global* time: each
device session keeps its own session-local clock (exactly the
single-session ``OffloadSession.now()``), and the scheduler maps it to
the fleet timeline by adding the device's start offset.  The scheduler
pops events strictly in global-time order through an
:class:`EventQueue`; :class:`SimClock` tracks the high-water mark so a
misordered event (which would mean the simulation invariants broke)
fails loudly instead of silently corrupting the queueing model.  The
full API contract — including how to add a new event type — is
documented in docs/simulator.md.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple


class SimClock:
    """Monotonic global simulation time."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to ``t``; rejects travel to the past
        (events must be served in nondecreasing global time)."""
        if t < self._now - 1e-12:
            raise RuntimeError(
                f"simulation clock moving backwards: {self._now} -> {t}")
        if t > self._now:
            self._now = t
        return self._now


class EventQueue:
    """A min-heap of ``(time, key)`` events with FIFO tie-breaking.

    ``key`` orders simultaneous events (the fleet uses the device index,
    so ties resolve by device id — deterministic and documented in
    docs/fleet.md); ``seq`` preserves insertion order beneath that.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, object]] = []
        self._seq = 0

    def push(self, t: float, key: int, payload: object = None) -> None:
        heapq.heappush(self._heap, (t, key, self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, int, object]:
        t, key, _, payload = heapq.heappop(self._heap)
        return t, key, payload

    def peek(self) -> Optional[Tuple[float, int, object]]:
        if not self._heap:
            return None
        t, key, _, payload = self._heap[0]
        return t, key, payload

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
