"""Scripted re-execution: how the event-driven scheduler advances a
device without a thread.

The guest interpreter is deeply recursive (one Python frame per guest
frame), so a device session cannot be suspended mid-stack and resumed
later — the lockstep scheduler parked each session on its own OS
thread precisely to get that suspension.  The event-driven core takes
the opposite route: a device is advanced by *re-running its session
from program start* against a :class:`ScriptedDispatcher` that replays
the admission outcomes the pool already granted, verbatim, and stops
the session at the first admission request the script does not cover
(docs/simulator.md, "Replay, not resumption").

This is exact, not approximate, because a session is a deterministic
function of the *projection* of its admission outcomes — the only
fields a session ever reads are the session-visible
:class:`~repro.runtime.backend.Admission` fields (``server_id``,
``queue_seconds``, and the heterogeneous-pool ``speed`` / ``network``
/ ``tier`` / ``deadline_s`` / ``priority``) and
``Rejection.estimated_wait_s`` (``start_s``/``token`` are pool
bookkeeping the session never touches).  Same script in, same
execution out: same timeline, same energy, same trace, same estimator
state.

Naively this costs O(k^2) interpreter work for a device with k
admissions.  The :class:`SegmentCache` removes that in the common case:
devices whose specs agree on everything behavior-relevant (program,
network, stdin, files, options minus identity fields) form a *behavior
class*, and within a class a segment replay is a pure function of the
outcome script — so N identical devices with identical scripts cost
k+1 session runs **total**, not per device.  Traced devices share the
intermediate segments (a request boundary carries no trace) but always
run their final segment privately, because the finished result embeds
the device's session id in every trace event.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..runtime.backend import Admission, OffloadDispatcher, Rejection
from ..runtime.session import OffloadSession, SessionOptions, SessionResult
from .spec import DeviceSpec


@dataclass(frozen=True)
class OutcomeProjection:
    """The session-visible part of one admission outcome.

    This is the *entire* channel from the pool into a device session;
    everything else on :class:`~repro.runtime.backend.Admission` is
    pool-internal.  Hashable, so outcome scripts can key the
    :class:`SegmentCache`.
    """

    admitted: bool
    server_id: int = 0
    queue_seconds: float = 0.0
    estimated_wait_s: float = 0.0
    # Heterogeneous-pool fields (docs/placement.md): sessions scale
    # server compute by speed, talk through the tier's network
    # override, and record tier/deadline/priority.  NetworkModel is a
    # frozen dataclass, so the projection stays hashable.
    speed: float = 1.0
    network: object = None
    tier: Optional[str] = None
    deadline_s: Optional[float] = None
    priority: bool = False

    @classmethod
    def of(cls, outcome) -> "OutcomeProjection":
        """Project a real pool outcome down to what sessions can see."""
        if isinstance(outcome, Admission):
            return cls(admitted=True, server_id=outcome.server_id,
                       queue_seconds=outcome.queue_seconds,
                       speed=outcome.speed, network=outcome.network,
                       tier=outcome.tier, deadline_s=outcome.deadline_s,
                       priority=outcome.priority)
        if isinstance(outcome, Rejection):
            return cls(admitted=False,
                       estimated_wait_s=outcome.estimated_wait_s)
        raise TypeError(f"not an admission outcome: {outcome!r}")

    def materialize(self):
        """The synthetic outcome handed to a replayed session."""
        if self.admitted:
            return Admission(server_id=self.server_id,
                             queue_seconds=self.queue_seconds,
                             speed=self.speed, network=self.network,
                             tier=self.tier, deadline_s=self.deadline_s,
                             priority=self.priority)
        return Rejection(estimated_wait_s=self.estimated_wait_s)


@dataclass(frozen=True)
class GangProjection:
    """The session-visible part of one gang admission (k >= 2 members)
    granted to a scatter/gather plan (docs/parallel-offload.md).

    A tuple of per-member projections: sessions read exactly the same
    fields of each member they read of a single admission, so replaying
    the members verbatim replays the plan exactly.  Hashable, so gang
    outcomes key the :class:`SegmentCache` like any other outcome.
    """

    members: Tuple[OutcomeProjection, ...]

    @classmethod
    def of(cls, admissions) -> "GangProjection":
        return cls(members=tuple(OutcomeProjection.of(a)
                                 for a in admissions))

    def materialize(self) -> List[Admission]:
        return [m.materialize() for m in self.members]


class SegmentBoundary(BaseException):
    """Raised inside a replayed session at the first unscripted
    admission request — the signal that the segment is over.

    Deliberately a ``BaseException``: the runtime has no broad
    ``except BaseException`` handlers on the session path, so the
    boundary unwinds cleanly through the recursive interpreter without
    being mistaken for a guest-program error.
    """

    def __init__(self, target_name: str, now_s: float, shards: int = 1):
        super().__init__(target_name, now_s, shards)
        self.target_name = target_name
        self.now_s = now_s
        # >1 when the unscripted request was a gang admission for a
        # scatter/gather plan — the scheduler must ask the real pool
        # for the same gang width when it serves this request.
        self.shards = shards


class ScriptedDispatcher(OffloadDispatcher):
    """Replays a recorded outcome script into a session.

    Admission request k gets the script's k-th outcome; the first
    request past the end of the script raises :class:`SegmentBoundary`.
    Releases are recorded as ``(admission, session-local time)`` pairs
    so the scheduler can hand each *real* pool slot back at exactly the
    instant the lockstep device thread would have.  Identity matters:
    a plan's members do not all release at one instant — the backend
    hands a zero-share member's slot back at sizing time while the rest
    release at plan end — so chronological release order is not grant
    order, and pairing by position would free the wrong server's slot.
    """

    def __init__(self, script: Tuple[OutcomeProjection, ...]):
        self._script = script
        self._cursor = 0
        self._admissions_granted = 0
        self._last_grant: List[Admission] = []
        self.release_log: List[Tuple[Admission, float]] = []

    def admit(self, target_name: str, now_s: float):
        if self._cursor >= len(self._script):
            raise SegmentBoundary(target_name, now_s)
        outcome = self._script[self._cursor]
        self._cursor += 1
        if not outcome.admitted:
            return outcome.materialize()
        admission = outcome.materialize()
        self._admissions_granted += 1
        self._last_grant = [admission]
        return admission

    def admit_gang(self, target_name: str, now_s: float, shards: int):
        if self._cursor >= len(self._script):
            raise SegmentBoundary(target_name, now_s, shards=shards)
        outcome = self._script[self._cursor]
        self._cursor += 1
        if isinstance(outcome, GangProjection):
            members = outcome.materialize()
            self._admissions_granted += len(members)
            self._last_grant = list(members)
            return members
        if outcome.admitted:
            # the pool degraded the gang to one classic admission
            admission = outcome.materialize()
            self._admissions_granted += 1
            self._last_grant = [admission]
            return [admission]
        return outcome.materialize()   # a Rejection

    def release(self, admission: Admission, now_s: float) -> None:
        self.release_log.append((admission, now_s))

    def _check_balanced(self) -> None:
        if len(self.release_log) != self._admissions_granted:
            raise RuntimeError(
                "replayed session ended with an unreleased admission "
                f"({len(self.release_log)} releases for "
                f"{self._admissions_granted} admissions)")

    @property
    def last_release_t(self) -> Optional[float]:
        """Session-local release time of the script's final admission
        (None when the script is empty or ends in a rejection)."""
        ts = self.last_release_ts
        return ts[-1] if ts else None

    @property
    def last_release_ts(self) -> Optional[Tuple[float, ...]]:
        """Session-local release times of the final grant's members,
        in GRANT order — matched by admission identity (the log holds
        every released admission alive, so ``id`` is collision-free),
        which is what lets the scheduler zip them against the real
        pool's grant list even when a zero-share member released early."""
        if not self._admissions_granted or not self._last_grant:
            return None
        self._check_balanced()
        times = {id(a): t for a, t in self.release_log}
        return tuple(times[id(m)] for m in self._last_grant)


@dataclass
class Segment:
    """What one replayed execution segment produced.

    Either the device stopped at its next admission request
    (``target``/``local_t`` set) or it ran to completion (``result``
    set).  ``release_local_t`` is the session-local time the script's
    final admission was released — the scheduler applies it to the real
    pool before serving anyone else, preserving the lockstep pool call
    order admit(k), release(k), admit(k+1).
    """

    target: Optional[str] = None
    local_t: Optional[float] = None
    result: Optional[SessionResult] = None
    release_local_t: Optional[float] = None
    # Gang-admission extensions (docs/parallel-offload.md): the width
    # of the gang the boundary request asked for (1 = classic), and the
    # per-member release times of the script's final grant, in grant
    # order (identity-matched — zero-share members release early).
    shards: int = 1
    release_local_ts: Optional[Tuple[float, ...]] = None

    @property
    def done(self) -> bool:
        return self.result is not None


#: SessionOptions fields that do not influence a session's behavior
#: given a fixed outcome script — identity tags and fleet wiring.
_IDENTITY_FIELDS = ("session_id", "dispatcher")


def behavior_key(spec: DeviceSpec, engine: str = "fifo") -> tuple:
    """The behavior class of a device: a hashable key equal for two
    specs exactly when their sessions are behaviorally interchangeable
    under identical outcome scripts.

    ``engine`` is the pool's decision-engine name: outcome scripts are
    produced by a specific placement policy, so segments must never be
    shared across engines even when the device specs agree
    (docs/placement.md).

    Unhashable or stateful option values (fault plans are frozen and
    hash by value; anything else falls back to object identity) only
    ever make the key *finer*, never coarser — a too-fine key costs
    speed, a too-coarse one would cost correctness.
    """
    base = spec.options or SessionOptions()
    parts = []
    for field in dataclasses.fields(SessionOptions):
        if field.name in _IDENTITY_FIELDS:
            continue
        value = getattr(base, field.name)
        if isinstance(value, dict):
            value = tuple(sorted(value.items()))
        try:
            hash(value)
        except TypeError:
            value = ("id", id(value))
        parts.append(value)
    if spec.files:
        files_key = tuple(sorted(
            (name, bytes(data)) for name, data in spec.files.items()))
    else:
        files_key = None
    return (engine, id(spec.program), id(spec.network),
            bytes(spec.stdin), spec.deadline_s, files_key, tuple(parts))


def run_segment(spec: DeviceSpec,
                script: Tuple[OutcomeProjection, ...]) -> Segment:
    """Run one fresh session for ``spec`` under ``script`` and capture
    where it stops."""
    dispatcher = ScriptedDispatcher(script)
    base = spec.options or SessionOptions()
    options = replace(base, dispatcher=dispatcher,
                      session_id=spec.device_id)
    session = OffloadSession(spec.program, spec.network, options=options,
                             stdin=spec.stdin, files=spec.files)
    try:
        result = session.run()
    except SegmentBoundary as boundary:
        return Segment(target=boundary.target_name,
                       local_t=boundary.now_s,
                       shards=boundary.shards,
                       release_local_t=dispatcher.last_release_t,
                       release_local_ts=dispatcher.last_release_ts)
    return Segment(result=result,
                   release_local_t=dispatcher.last_release_t,
                   release_local_ts=dispatcher.last_release_ts)


class SegmentCache:
    """Cross-device memoization of replayed segments.

    Keyed by ``(behavior class, outcome script)``.  Request boundaries
    are always shareable (they carry no per-device identity); finished
    results are shareable only for untraced devices — a traced result
    embeds the session id in every event, so traced devices always run
    their final segment themselves.
    """

    def __init__(self, engine: str = "fifo") -> None:
        self._segments: Dict[tuple, Segment] = {}
        self.engine = engine
        self.session_runs = 0
        self.shared_hits = 0

    def advance(self, spec: DeviceSpec,
                script: Tuple[OutcomeProjection, ...]) -> Segment:
        """The segment ``spec`` executes after ``script`` — from cache
        when a behaviorally identical device already ran it."""
        base = spec.options or SessionOptions()
        traced = bool(base.enable_tracing)
        key = (behavior_key(spec, self.engine), script)
        hit = self._segments.get(key)
        if hit is not None and (not hit.done or not traced):
            self.shared_hits += 1
            return hit
        segment = run_segment(spec, script)
        self.session_runs += 1
        if not segment.done or not traced:
            self._segments[key] = segment
        return segment

    def stats(self) -> dict:
        """Replay accounting (surfaced by benchmarks/test_sim_speed.py
        to gate cache regressions)."""
        return {
            "session_runs": self.session_runs,
            "shared_hits": self.shared_hits,
            "distinct_segments": len(self._segments),
        }
