"""Deterministic RNG fan-out for fleet runs.

Every stochastic component of a fleet — each device's fault plan, the
arrival process, any future jittered policy — must draw from a seed
*derived* from the single fleet root seed, never from a shared
`random.Random` whose consumption order could depend on scheduling.
``derive_seed`` hashes the root together with a label path, so

* the same root always yields the same per-component seed (the
  determinism test in ``tests/test_fleet.py`` pins two same-seed runs
  to byte-identical summaries and traces), and
* adding a device or component never perturbs the seeds of the others
  (no positional coupling, unlike ``root + index`` schemes).
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root: int, *labels: object) -> int:
    """A 64-bit seed for the component named by ``labels``, stable
    across runs and independent of every sibling component."""
    digest = hashlib.sha256()
    digest.update(str(int(root)).encode("ascii"))
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class SeedFanout:
    """The one place a fleet run mints seeds and RNGs from."""

    def __init__(self, root: int):
        self.root = int(root)

    def seed(self, *labels: object) -> int:
        return derive_seed(self.root, *labels)

    def rng(self, *labels: object) -> random.Random:
        return random.Random(self.seed(*labels))
