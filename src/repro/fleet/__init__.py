"""Fleet-scale offloading: many devices sharing a contended server pool.

The paper evaluates one mobile device against one dedicated server; this
package answers the production question — what happens to its speedups
when N devices share M servers — without touching a line of session
logic.  Devices are plain :class:`~repro.runtime.session.OffloadSession`
instances wired to a shared :class:`~repro.fleet.pool.ServerPool`
through the :class:`~repro.runtime.backend.OffloadDispatcher` seam, and
a deterministic discrete-event :class:`FleetScheduler` serializes their
interactions (docs/fleet.md).
"""

from .clock import EventQueue, SimClock
from .pool import PoolOptions, ServerPool, ServerStats
from .scheduler import (DeviceOutcome, DeviceSpec, FleetResult,
                        FleetScheduler, arrival_offsets)
from .seeding import SeedFanout, derive_seed

__all__ = [
    "EventQueue", "SimClock",
    "PoolOptions", "ServerPool", "ServerStats",
    "DeviceOutcome", "DeviceSpec", "FleetResult", "FleetScheduler",
    "arrival_offsets",
    "SeedFanout", "derive_seed",
]
