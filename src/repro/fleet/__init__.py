"""Fleet-scale offloading: many devices sharing a contended server pool.

The paper evaluates one mobile device against one dedicated server; this
package answers the production question — what happens to its speedups
when N devices share M servers — without touching a line of session
logic.  Devices are plain :class:`~repro.runtime.session.OffloadSession`
instances wired to a shared :class:`~repro.fleet.pool.ServerPool`
through the :class:`~repro.runtime.backend.OffloadDispatcher` seam, and
a single-threaded discrete-event :class:`FleetScheduler` serializes
their interactions (docs/fleet.md, docs/simulator.md).  The deprecated
one-thread-per-device engine is retained as
:class:`LockstepFleetScheduler` — the reference the differential test
checks the event core against.

Placement is a swappable layer (docs/placement.md): the pool ranks
eligible servers through a :class:`~repro.fleet.engines.DecisionEngine`
(``fifo`` / ``worst-fit`` / ``best-fit`` / ``deadline-aware``), servers
are heterogeneous :class:`ServerSpec` records spanning an edge/cloud
tier hierarchy, and an optional :class:`Autoscaler` resizes the pool
mid-simulation off the same sliding-window SLO rules the report uses.
"""

from .autoscaler import (DEFAULT_AUTOSCALE_RULES, Autoscaler,
                         AutoscalerOptions)
from .clock import EventQueue, SimClock
from .engines import (DECISION_ENGINES, DEFAULT_DECISION_ENGINE, Candidate,
                      DecisionEngine, PlacementRequest, make_engine)
from .events import (ADMISSION_REQUEST, ARRIVAL, AUTOSCALE, COMPLETION,
                     EVENT_KINDS, DeviceState)
from .lockstep import LockstepFleetScheduler
from .pool import TIERS, PoolOptions, ServerPool, ServerSpec, ServerStats
from .replay import (OutcomeProjection, ScriptedDispatcher, Segment,
                     SegmentBoundary, SegmentCache, behavior_key)
from .result import DeviceOutcome, FleetResult
from .scheduler import (DEFAULT_ENGINE, SCHEDULER_ENGINES, FleetScheduler,
                        make_scheduler)
from .seeding import SeedFanout, derive_seed
from .spec import DeviceSpec, arrival_offsets

__all__ = [
    "EventQueue", "SimClock",
    "ARRIVAL", "ADMISSION_REQUEST", "COMPLETION", "AUTOSCALE",
    "EVENT_KINDS", "DeviceState",
    "PoolOptions", "ServerPool", "ServerSpec", "ServerStats", "TIERS",
    "Candidate", "DecisionEngine", "PlacementRequest",
    "DECISION_ENGINES", "DEFAULT_DECISION_ENGINE", "make_engine",
    "Autoscaler", "AutoscalerOptions", "DEFAULT_AUTOSCALE_RULES",
    "OutcomeProjection", "ScriptedDispatcher", "Segment",
    "SegmentBoundary", "SegmentCache", "behavior_key",
    "DeviceOutcome", "DeviceSpec", "FleetResult",
    "FleetScheduler", "LockstepFleetScheduler",
    "DEFAULT_ENGINE", "SCHEDULER_ENGINES", "make_scheduler",
    "arrival_offsets",
    "SeedFanout", "derive_seed",
]
