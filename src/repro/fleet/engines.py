"""Pluggable placement engines: *where* an admitted invocation runs.

The :class:`~repro.fleet.pool.ServerPool` owns admission mechanics —
queue-room eligibility, the rejection quote, slot bookkeeping — but the
*ranking* of eligible servers is policy, extracted here behind the
:class:`DecisionEngine` interface (okec models placement exactly this
way: swappable decision engines over heterogeneous edge servers).

The pool hands an engine one :class:`Candidate` per eligible server
(queue-room already checked) plus the :class:`PlacementRequest`; the
engine returns the candidate to admit.  Engines never mutate anything —
selection is a pure function of the candidates, which is what keeps the
event-driven replay sound (docs/simulator.md) and the ``fifo`` engine
byte-identical to the historical admission arithmetic.

Four engines ship (docs/placement.md):

* ``fifo`` — the historical behavior and the default: least wait,
  server id as the tie-break.
* ``worst-fit`` — most free slots first; spreads load across the pool
  so no single server builds a deep queue.
* ``best-fit`` — least sufficient: the tightest server that can still
  start the invocation now, keeping big servers free for bursts.
* ``deadline-aware`` — minimizes the *expected finish time* (wait plus
  a per-server service estimate that reflects the server's speed),
  preferring servers that meet the request's deadline and refusing
  placement entirely (admission control) when none can.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class PlacementRequest:
    """One admission request as the engines see it."""

    target: str
    arrival_t: float
    priority: bool = False
    #: Absolute global time the invocation should finish by (None =
    #: no deadline).  The pool computes it from the device's relative
    #: ``deadline_s`` at admission time.
    deadline_t: Optional[float] = None


@dataclass
class Candidate:
    """One eligible server, snapshotted at the request's arrival time.

    ``wait`` is the hindsight-exact queueing delay the request would
    face there; ``free_slots`` the number of idle execution slots at
    arrival (``wait > 0`` implies 0); ``queue_len`` the invocations
    already waiting.  ``spec``/``stats`` expose the server's
    :class:`~repro.fleet.pool.ServerSpec` and accumulated
    :class:`~repro.fleet.pool.ServerStats` for policy use.  ``server``
    is the pool-internal object the pool maps the choice back to —
    engines must treat it as opaque.
    """

    server_id: int
    wait: float
    free_slots: int
    queue_len: int
    spec: object
    stats: object
    slot_idx: int
    server: object


class DecisionEngine:
    """Ranks eligible servers for one admission request.

    ``select`` receives a non-empty candidate list in server-id order
    and returns the winner, or ``None`` to refuse placement outright —
    admission control: the pool then issues the same
    :class:`~repro.fleet.pool.Rejection` it would for a full pool and
    the device falls back to local execution.  Implementations must be
    deterministic and side-effect free; ties must break on
    ``server_id`` so two same-seed runs place identically
    (docs/fleet.md, "Determinism contract").
    """

    name = "engine"

    def select(self, candidates: Sequence[Candidate],
               request: PlacementRequest) -> Optional[Candidate]:
        raise NotImplementedError

    def select_gang(self, candidates: Sequence[Candidate],
                    request: PlacementRequest,
                    shards: int) -> List[Candidate]:
        """Place up to ``shards`` gang members for one scatter/gather
        plan (docs/parallel-offload.md) over zero-wait candidates.

        The default derives gang placement from ``select``: repeatedly
        pick the engine's best candidate, decrementing that server's
        free-slot count between picks, until the gang is full, the pool
        runs out of free slots, or the engine refuses — ending the gang
        early degrades the plan to fewer shards, never to a partial
        deadlock.  Deterministic because ``select`` is.  A returned
        member may name the same server several times; the pool maps
        each pick to a distinct free slot."""
        members: List[Candidate] = []
        live = list(candidates)
        while len(members) < shards and live:
            chosen = self.select(live, request)
            if chosen is None:
                break
            members.append(chosen)
            remaining = []
            for candidate in live:
                if candidate is chosen:
                    if candidate.free_slots > 1:
                        remaining.append(replace(
                            candidate,
                            free_slots=candidate.free_slots - 1))
                else:
                    remaining.append(candidate)
            live = remaining
        return members


class FifoEngine(DecisionEngine):
    """The historical policy: least wait, then lowest server id.

    Byte-identical to the pre-engine ``ServerPool.admit`` arithmetic —
    the differential test holds a ``fifo`` pool to the default pool's
    exact output (tests/test_fleet_differential.py)."""

    name = "fifo"

    def select(self, candidates, request):
        return min(candidates, key=lambda c: (c.wait, c.server_id))


class WorstFitEngine(DecisionEngine):
    """Most free slots first (okec's worst-fit): spread the load.

    Prefers the emptiest server, falling back to least wait once the
    pool is saturated (every candidate at 0 free slots)."""

    name = "worst-fit"

    def select(self, candidates, request):
        return min(candidates,
                   key=lambda c: (-c.free_slots, c.wait, c.server_id))


class BestFitEngine(DecisionEngine):
    """Least sufficient: the tightest server that can still serve now.

    Among servers with an idle slot, picks the one with the *fewest*
    idle slots (packing invocations tightly so large servers stay free
    for bursts); once everything is busy it degrades to least wait.
    ``wait > 0`` implies ``free_slots == 0``, so the composite key
    orders idle servers strictly before queued ones."""

    name = "best-fit"

    def select(self, candidates, request):
        return min(candidates,
                   key=lambda c: (c.wait, c.free_slots, c.server_id))


class DeadlineAwareEngine(DecisionEngine):
    """Minimize expected finish time; respect deadlines.

    The expected finish on a server is its queueing wait plus a service
    estimate — that server's mean observed service time when it has
    history, otherwise the pool-wide speed-normalized mean scaled by
    the server's speed multiplier, so a 4x cloud server is expected to
    finish in a quarter of the time even before its first admission.
    Candidates that meet ``request.deadline_t`` always outrank ones
    that miss it; within each group the earliest expected finish wins.
    When the request carries a deadline and *no* candidate is expected
    to meet it, the engine refuses placement (returns ``None``) — the
    request is rejected and the device falls back to local execution
    rather than queueing past its deadline.  That admission control is
    what bounds the queue-wait tail under overload
    (benchmarks/test_policy_comparison.py).  With no deadline and no
    history this degrades to ``fifo``.
    """

    name = "deadline-aware"

    @staticmethod
    def _service_estimate(candidate: Candidate,
                          candidates: Sequence[Candidate]) -> float:
        stats = candidate.stats
        if stats.admitted:
            return stats.busy_seconds / stats.admitted
        served = sum(c.stats.admitted for c in candidates)
        if served:
            # Speed-normalized pool mean: each server's observed
            # service times scaled back to speed 1.0, then rescaled to
            # this candidate's speed.
            normalized = sum(c.stats.busy_seconds * c.spec.speed
                             for c in candidates) / served
            return normalized / candidate.spec.speed
        return 0.0

    def select(self, candidates, request):
        def key(c):
            finish = (request.arrival_t + c.wait
                      + self._service_estimate(c, candidates))
            misses = (request.deadline_t is not None
                      and finish > request.deadline_t)
            return (misses, finish, c.server_id)
        chosen = min(candidates, key=key)
        if key(chosen)[0]:      # even the best candidate misses
            return None
        return chosen


#: Engine names accepted by :func:`make_engine` and the CLI's
#: ``--engine`` flag, in documentation order.  ``fifo`` is the default.
DECISION_ENGINES = ("fifo", "worst-fit", "best-fit", "deadline-aware")
DEFAULT_DECISION_ENGINE = "fifo"

_ENGINE_CLASSES = {
    "fifo": FifoEngine,
    "worst-fit": WorstFitEngine,
    "best-fit": BestFitEngine,
    "deadline-aware": DeadlineAwareEngine,
}


def make_engine(engine) -> DecisionEngine:
    """Resolve an engine name (or pass through an instance)."""
    if isinstance(engine, DecisionEngine):
        return engine
    cls = _ENGINE_CLASSES.get(engine)
    if cls is None:
        raise ValueError(
            f"unknown decision engine {engine!r}; "
            f"expected one of {DECISION_ENGINES}")
    return cls()
