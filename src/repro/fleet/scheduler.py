"""The fleet scheduler: N device sessions against one server pool,
driven by a single-threaded discrete-event core.

Execution model (docs/simulator.md has the full contract).  The
scheduler owns one :class:`~repro.fleet.clock.SimClock` and one
:class:`~repro.fleet.clock.EventQueue`; every device is an explicit
state machine (:class:`~repro.fleet.events.DeviceState`) that advances
only when one of its events fires:

1. an :data:`~repro.fleet.events.ARRIVAL` event at ``start_offset_s``
   runs the device to its first admission request (or completion);
2. an :data:`~repro.fleet.events.ADMISSION_REQUEST` event — popped in
   ``(global time, device index)`` order, the same tie-break the
   lockstep engine applied — is served against the
   :class:`~repro.fleet.pool.ServerPool`, the outcome is appended to
   the device's script, and the device is advanced by scripted replay
   (:mod:`repro.fleet.replay`); the admission's slot is released at the
   exact session-local instant the replay observed, before any other
   device runs;
3. a :data:`~repro.fleet.events.COMPLETION` event marks the device
   finished; it touches no shared state.
4. optionally, :data:`~repro.fleet.events.AUTOSCALE` ticks let an
   :class:`~repro.fleet.autoscaler.Autoscaler` resize the pool between
   device events (docs/placement.md); ticks order *after* all device
   events at the same instant and stop once every device completes.

No threads, no wall-clock: wall time per simulated invocation is pure
interpreter work, shared across behaviorally identical devices by the
:class:`~repro.fleet.replay.SegmentCache`, so fleets of 10k+ devices
are routine (benchmarks/test_sim_speed.py).  Because a device's
requests are monotone in time and its release always precedes its next
request, every ``admit`` observes fully-resolved slot times — the pool
never guesses (pool.py's hindsight-exactness).  Global time is session-
local time plus the device's start offset, so one merged trace covers
the fleet (``FleetResult.merged_events``).

The retained thread-per-device engine lives in
:mod:`repro.fleet.lockstep`; the differential test holds the two to
byte-identical output.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Tuple

from ..runtime.backend import Admission
from .autoscaler import Autoscaler
from .clock import EventQueue, SimClock
from .events import (ADMISSION_REQUEST, ARRIVAL, AUTOSCALE, COMPLETION,
                     TRANSITIONS, DeviceState)
from .lockstep import LockstepFleetScheduler
from .pool import ServerPool
from .replay import (GangProjection, OutcomeProjection, Segment,
                     SegmentCache)
from .result import DeviceOutcome, FleetResult
from .spec import DeviceSpec, arrival_offsets  # noqa: F401  (re-export)

#: Engine names accepted by :func:`make_scheduler` and the CLI's
#: ``--scheduler`` flag.  ``event`` is the default; ``lockstep`` is the
#: deprecated reference engine.
SCHEDULER_ENGINES = ("event", "lockstep")
DEFAULT_ENGINE = "event"

#: One-per-process latch for the lockstep deprecation warning
#: (tests/test_fleet_differential.py asserts exactly-once semantics).
_LOCKSTEP_WARNED = False


def _warn_lockstep_deprecated() -> None:
    global _LOCKSTEP_WARNED
    if _LOCKSTEP_WARNED:
        return
    _LOCKSTEP_WARNED = True
    warnings.warn(
        "the 'lockstep' fleet scheduler engine is deprecated and kept "
        "only as a byte-identical reference; use the default 'event' "
        "engine (docs/fleet.md, 'Lockstep vs event-driven')",
        DeprecationWarning, stacklevel=3)


class _DeviceProcess:
    """One device's live state inside the event loop."""

    __slots__ = ("index", "spec", "offset", "state", "script",
                 "pending_target", "pending_shards", "result")

    def __init__(self, index: int, spec: DeviceSpec):
        self.index = index
        self.spec = spec
        self.offset = spec.start_offset_s
        self.state = DeviceState.IDLE
        self.script: Tuple[OutcomeProjection, ...] = ()
        self.pending_target: Optional[str] = None
        self.pending_shards = 1
        self.result = None

    def transition(self, to: DeviceState) -> None:
        if (self.state, to) not in TRANSITIONS:
            raise RuntimeError(
                f"{self.spec.device_id}: illegal device state "
                f"transition {self.state.value} -> {to.value}")
        self.state = to


class FleetScheduler:
    """Run a fleet of device sessions against one server pool.

    The event-driven engine: single-threaded, deterministic, and
    byte-identical to the retained lockstep engine for the same seed
    (tests/test_fleet_differential.py).  An empty device list is a
    legal degenerate fleet — zero events, an empty result.

    ``replay`` exposes the :class:`~repro.fleet.replay.SegmentCache`
    whose ``stats()`` report how many sessions actually ran — the
    simulator-speed benchmark gates on it.  An optional ``autoscaler``
    gets periodic :data:`~repro.fleet.events.AUTOSCALE` ticks and may
    resize the pool between device events.
    """

    def __init__(self, devices: List[DeviceSpec], pool: ServerPool,
                 autoscaler: Optional[Autoscaler] = None):
        self.pool = pool
        self.clock = SimClock()
        self.replay = SegmentCache(engine=pool.engine_name)
        self.autoscaler = autoscaler
        self._procs = [_DeviceProcess(i, spec)
                       for i, spec in enumerate(devices)]

    def run(self) -> FleetResult:
        """Drain the event queue and assemble the fleet result."""
        procs = self._procs
        queue = EventQueue()
        for p in procs:
            queue.push(p.offset, p.index, ARRIVAL)
        # The autoscaler's tick index sorts after every device index,
        # so at equal times all device events resolve before a resize.
        tick_index = len(procs)
        if self.autoscaler is not None and procs:
            queue.push(self.autoscaler.options.interval_s, tick_index,
                       AUTOSCALE)

        while queue:
            t, index, kind = queue.pop()
            self.clock.advance_to(t)
            if kind == AUTOSCALE:
                self.autoscaler.evaluate(t, self.pool)
                if any(p.state is not DeviceState.COMPLETE
                       for p in procs):
                    queue.push(t + self.autoscaler.options.interval_s,
                               tick_index, AUTOSCALE)
                continue
            p = procs[index]
            if kind == ARRIVAL:
                p.transition(DeviceState.ARRIVED)
                self._advance(p, queue)
            elif kind == ADMISSION_REQUEST:
                self._serve(p, t, queue)
            elif kind == COMPLETION:
                p.transition(DeviceState.COMPLETE)
            else:  # pragma: no cover - queue only ever holds the above
                raise RuntimeError(f"unknown event kind {kind!r}")

        outcomes = []
        for p in procs:
            if p.result is None or p.state is not DeviceState.COMPLETE:
                raise RuntimeError(
                    f"{p.spec.device_id}: event queue drained but the "
                    f"device is {p.state.value}")
            outcomes.append(DeviceOutcome(device_id=p.spec.device_id,
                                          index=p.index,
                                          start_offset_s=p.offset,
                                          priority=p.spec.priority,
                                          result=p.result))
        makespan = (max(o.completion_s for o in outcomes)
                    if outcomes else 0.0)
        return FleetResult(devices=outcomes, pool=self.pool,
                           makespan_s=makespan,
                           autoscale=(self.autoscaler.summary()
                                      if self.autoscaler else None))

    # -- event handlers ------------------------------------------------
    def _serve(self, p: _DeviceProcess, t: float,
               queue: EventQueue) -> None:
        """Serve one admission request: the only point where a device
        touches shared state, in exactly the lockstep order —
        admit(k), then release(k) before anyone else's admit."""
        if p.pending_shards > 1:
            # A scatter/gather plan asks for a gang of zero-wait slots
            # (docs/parallel-offload.md); the pool may degrade it.
            outcome = self.pool.admit_gang(p.pending_target, t,
                                           p.pending_shards,
                                           priority=p.spec.priority,
                                           deadline_s=p.spec.deadline_s)
        else:
            outcome = self.pool.admit(p.pending_target, t,
                                      priority=p.spec.priority,
                                      deadline_s=p.spec.deadline_s)
        if self.autoscaler is not None:
            if isinstance(outcome, list):
                for member in outcome:
                    self.autoscaler.observe(t, member)
            else:
                self.autoscaler.observe(t, outcome)
        p.pending_target = None
        p.pending_shards = 1
        if isinstance(outcome, list) and len(outcome) > 1:
            projection = GangProjection.of(outcome)
        elif isinstance(outcome, list):
            projection = OutcomeProjection.of(outcome[0])
        else:
            projection = OutcomeProjection.of(outcome)
        p.script = p.script + (projection,)
        segment = self._advance(p, queue)
        admitted = (outcome if isinstance(outcome, list)
                    else [outcome] if isinstance(outcome, Admission)
                    else [])
        if len(admitted) == 1:
            # The replay observed the session-local instant the slot
            # was handed back; apply it to the real pool now, so the
            # next admit (any device) sees fully-resolved slot times.
            self.pool.release(admitted[0],
                              p.offset + segment.release_local_t)
        elif admitted:
            # release_local_ts is in grant order (identity-matched by
            # the ScriptedDispatcher), the same order as the real
            # pool's gang list — so member k gets member k's release
            # instant even when a zero-share member released early.
            for member, release_t in zip(admitted,
                                         segment.release_local_ts):
                self.pool.release(member, p.offset + release_t)

    def _advance(self, p: _DeviceProcess, queue: EventQueue) -> Segment:
        """Advance the device to its next admission request or to
        completion, and schedule the matching event."""
        segment = self.replay.advance(p.spec, p.script)
        if segment.done:
            p.transition(DeviceState.EXECUTING)
            p.result = segment.result
            queue.push(p.offset + segment.result.total_seconds,
                       p.index, COMPLETION)
        else:
            p.transition(DeviceState.EXECUTING)
            p.transition(DeviceState.REQUESTING)
            p.pending_target = segment.target
            p.pending_shards = segment.shards
            queue.push(p.offset + segment.local_t, p.index,
                       ADMISSION_REQUEST)
        return segment


def make_scheduler(devices: List[DeviceSpec], pool: ServerPool,
                   engine: str = DEFAULT_ENGINE,
                   autoscaler: Optional[Autoscaler] = None):
    """Build a fleet scheduler by engine name.

    ``event`` (the default) is the single-threaded discrete-event core;
    ``lockstep`` is the deprecated one-thread-per-device reference
    engine, byte-identical but unusable beyond tens of devices (its
    first selection per process emits a ``DeprecationWarning``).  Only
    the event engine supports an ``autoscaler`` — elasticity is
    control-plane work scheduled as events.
    """
    if engine == "event":
        return FleetScheduler(devices, pool, autoscaler=autoscaler)
    if engine == "lockstep":
        if autoscaler is not None:
            raise ValueError(
                "the lockstep engine does not support an autoscaler; "
                "use the event engine (docs/placement.md)")
        if any(spec.options is not None and spec.options.shards > 1
               for spec in devices):
            raise ValueError(
                "the lockstep engine does not support scatter/gather "
                "plans (shards > 1); use the event engine "
                "(docs/parallel-offload.md)")
        _warn_lockstep_deprecated()
        return LockstepFleetScheduler(devices, pool)
    raise ValueError(
        f"unknown scheduler engine {engine!r}; "
        f"expected one of {SCHEDULER_ENGINES}")
