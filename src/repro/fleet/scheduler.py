"""The fleet scheduler: N device sessions against one server pool.

Scheduling model (docs/fleet.md).  Each device runs a completely
ordinary :class:`~repro.runtime.session.OffloadSession` whose
``dispatcher`` option points back here.  The session executes on its own
thread, but the scheduler keeps the whole fleet in *lockstep*: at most
one device thread ever runs, and control passes at exactly the points
where devices interact — admission requests.  The rendezvous makes the
simulation a deterministic discrete-event system:

1. every device runs until it blocks on ``admit`` or finishes;
2. the scheduler pops the earliest pending request — ordered by
   ``(global arrival time, device index)`` through the
   :class:`~repro.fleet.clock.EventQueue` — serves it against the
   :class:`~repro.fleet.pool.ServerPool`, and resumes that one device;
3. the device charges the admission's queueing delay (or the rejection's
   local fallback) into its own timeline and energy, releases the slot
   when the invocation completes, and eventually blocks again.

Because a device's requests are monotone in time and its release always
precedes its next request, every ``admit`` observes fully-resolved slot
times — the pool never guesses (pool.py's hindsight-exactness).
Global time is session-local time plus the device's start offset, so one
merged trace covers the fleet (``FleetResult.merged_events``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..runtime.backend import Admission, OffloadDispatcher, Rejection
from ..runtime.session import OffloadSession, SessionOptions, SessionResult
from ..trace.analysis.aggregate import (invocation_counts,
                                        nearest_rank_percentile)
from ..trace.tracer import TraceEvent
from .clock import EventQueue, SimClock
from .pool import ServerPool

#: How long (wall-clock) the scheduler waits for a device thread to
#: reach its next rendezvous before declaring the lockstep broken.
RENDEZVOUS_TIMEOUT_S = 300.0


@dataclass
class DeviceSpec:
    """One device of the fleet."""

    device_id: str
    program: object                 # compiled OffloadProgram
    network: object                 # NetworkModel
    stdin: bytes = b""
    files: Optional[Dict[str, bytes]] = None
    start_offset_s: float = 0.0     # global time the device starts
    options: Optional[SessionOptions] = None
    priority: bool = False          # may use the pool's reserved queue tail


def arrival_offsets(pattern: str, devices: int, spacing_s: float,
                    rng) -> List[float]:
    """Start offsets for ``devices`` devices.

    * ``uniform`` — fixed ``spacing_s`` between consecutive starts;
    * ``poisson`` — exponential inter-arrivals with mean ``spacing_s``,
      drawn from ``rng`` (a fan-out child, never a shared global);
    * ``burst`` — everyone at t=0, the worst case for the pool.
    """
    if pattern == "uniform":
        return [i * spacing_s for i in range(devices)]
    if pattern == "poisson":
        offsets, t = [], 0.0
        for _ in range(devices):
            offsets.append(t)
            t += rng.expovariate(1.0 / spacing_s) if spacing_s > 0 else 0.0
        return offsets
    if pattern == "burst":
        return [0.0] * devices
    raise ValueError(f"unknown arrival pattern {pattern!r}")


class _PooledDispatcher(OffloadDispatcher):
    """The session-side end of the rendezvous: blocks the device thread
    until the scheduler has served its admission request."""

    def __init__(self, worker: "_DeviceWorker"):
        self.worker = worker

    def admit(self, target_name: str, now_s: float):
        return self.worker.request_admission(target_name, now_s)

    def release(self, admission: Admission, now_s: float) -> None:
        self.worker.release_slot(admission, now_s)


class _DeviceWorker:
    """One device session on its own thread, lockstepped by events."""

    def __init__(self, index: int, spec: DeviceSpec, pool: ServerPool,
                 timeout_s: float):
        self.index = index
        self.spec = spec
        self.pool = pool
        self.timeout_s = timeout_s
        self.offset = spec.start_offset_s
        # quiescent: the device is blocked on admission or finished —
        # the only states in which the scheduler may act.
        self.quiescent = threading.Event()
        self.resume = threading.Event()
        self.done = threading.Event()
        self.pending = None         # (target_name, global_arrival_t)
        self.outcome = None         # Admission | Rejection handed back
        self.result: Optional[SessionResult] = None
        self.error: Optional[BaseException] = None
        self.thread = threading.Thread(
            target=self._run, name=f"fleet-{spec.device_id}", daemon=True)

    # -- device thread -------------------------------------------------
    def _run(self) -> None:
        try:
            base = self.spec.options or SessionOptions()
            options = replace(base,
                              dispatcher=_PooledDispatcher(self),
                              session_id=self.spec.device_id)
            session = OffloadSession(self.spec.program, self.spec.network,
                                     options=options,
                                     stdin=self.spec.stdin,
                                     files=self.spec.files)
            self.result = session.run()
        except BaseException as exc:    # surfaced by the scheduler
            self.error = exc
        finally:
            self.done.set()
            self.quiescent.set()

    def request_admission(self, target_name: str, now_s: float):
        self.pending = (target_name, self.offset + now_s)
        self.quiescent.set()
        if not self.resume.wait(self.timeout_s):
            raise RuntimeError(
                f"{self.spec.device_id}: scheduler never served the "
                f"admission request (lockstep rendezvous broken)")
        self.resume.clear()
        outcome, self.outcome = self.outcome, None
        return outcome

    def release_slot(self, admission: Admission, now_s: float) -> None:
        # Lockstep means this device thread is the only one running, so
        # the pool needs no lock here.
        self.pool.release(admission, self.offset + now_s)

    # -- scheduler side ------------------------------------------------
    def serve(self, outcome) -> None:
        self.pending = None
        self.outcome = outcome
        self.quiescent.clear()
        self.resume.set()
        if not self.quiescent.wait(self.timeout_s):
            raise RuntimeError(
                f"{self.spec.device_id}: device thread never reached "
                f"its next rendezvous")


@dataclass
class DeviceOutcome:
    """One device's run, placed on the global timeline."""

    device_id: str
    index: int
    start_offset_s: float
    priority: bool
    result: SessionResult

    @property
    def completion_s(self) -> float:
        """Global time the device's whole program finished."""
        return self.start_offset_s + self.result.total_seconds


# The one nearest-rank percentile definition, shared with the report
# (repro.trace.analysis) so the two can never disagree.
_percentile = nearest_rank_percentile


@dataclass
class FleetResult:
    """Everything a fleet run produced."""

    devices: List[DeviceOutcome]
    pool: ServerPool
    makespan_s: float

    def summary(self) -> dict:
        """The JSON-safe fleet report (stable key order; two same-seed
        runs serialize byte-identically — tests/test_fleet.py)."""
        results = [d.result for d in self.devices]
        # One counting definition, shared with `repro report`
        # (repro.trace.analysis.aggregate).
        counts = invocation_counts(r for result in results
                                   for r in result.invocations)
        total_inv = counts["total"]
        offloaded = counts["offloaded"]
        declined = counts["declined"]
        rejected = counts["rejected"]
        aborted = counts["aborted"]
        fallbacks = counts["local_fallbacks"]
        queue_s = sum(r.queue_seconds for r in results)
        completions = [d.completion_s for d in self.devices]
        queued = sum(s.queued_admissions for s in self.pool.stats)
        opts = self.pool.options
        return {
            "devices": len(self.devices),
            "servers": opts.servers,
            "capacity": opts.capacity,
            "queue_limit": opts.queue_limit,
            "makespan_s": self.makespan_s,
            "throughput_invocations_per_s": (
                total_inv / self.makespan_s if self.makespan_s > 0
                else 0.0),
            "completion_s": {
                "p50": _percentile(completions, 0.50),
                "p95": _percentile(completions, 0.95),
                "max": max(completions) if completions else 0.0,
            },
            "invocations": {
                "total": total_inv,
                "offloaded": offloaded,
                "declined": declined,
                "rejected": rejected,
                "aborted": aborted,
                "local_fallbacks": fallbacks,
            },
            "decline_rate": (
                (total_inv - offloaded) / total_inv if total_inv else 0.0),
            "queue": {
                "total_delay_s": queue_s,
                "mean_delay_s": (
                    queue_s / queued if queued else 0.0),
                "queued_admissions": queued,
            },
            "servers_detail": [
                {
                    "id": s.server_id,
                    "admitted": s.admitted,
                    "rejected": s.rejected,
                    "busy_seconds": s.busy_seconds,
                    "queue_delay_s": s.queue_delay_total,
                    "max_queue_depth": s.max_queue_depth,
                    "utilization": s.utilization(self.makespan_s,
                                                 opts.capacity),
                }
                for s in self.pool.stats
            ],
            "energy_mj_total": sum(r.energy_mj for r in results),
        }

    @property
    def dropped_events(self) -> int:
        """Events lost to the devices' trace ring buffers, fleet-wide —
        the truncation signal ``write_jsonl`` headers and ``repro
        report`` surface."""
        return sum(d.result.trace.dropped for d in self.devices
                   if d.result.trace is not None)

    def merged_events(self) -> List[TraceEvent]:
        """One fleet-wide trace: every device's events shifted onto the
        global timeline, ordered by (time, device index, seq).  Events
        already carry the device's session id (``sid``)."""
        merged = []
        for device in self.devices:
            tracer = device.result.trace
            if tracer is None:
                continue
            for e in tracer.events():
                merged.append((e.t + device.start_offset_s, device.index,
                               e.seq, e))
        merged.sort(key=lambda item: item[:3])
        return [TraceEvent(t=t, seq=e.seq, category=e.category,
                           name=e.name, dur=e.dur, payload=e.payload,
                           sid=e.sid)
                for t, _, _, e in merged]


class FleetScheduler:
    """Run a fleet of device sessions against one server pool."""

    def __init__(self, devices: List[DeviceSpec], pool: ServerPool,
                 rendezvous_timeout_s: float = RENDEZVOUS_TIMEOUT_S):
        if not devices:
            raise ValueError("a fleet needs at least one device")
        self.pool = pool
        self.clock = SimClock()
        self._workers = [_DeviceWorker(i, spec, pool,
                                       rendezvous_timeout_s)
                         for i, spec in enumerate(devices)]

    def run(self) -> FleetResult:
        workers = self._workers
        # Sequential start: each device runs to its first rendezvous
        # alone, so even session construction is fully serialized.
        for w in workers:
            w.thread.start()
            if not w.quiescent.wait(w.timeout_s):
                raise RuntimeError(
                    f"{w.spec.device_id}: device never reached its "
                    f"first rendezvous")
            self._check(w)

        queue = EventQueue()
        enqueued = set()
        while True:
            for w in workers:
                self._check(w)
                if (w.pending is not None and not w.done.is_set()
                        and w.index not in enqueued):
                    queue.push(w.pending[1], w.index)
                    enqueued.add(w.index)
            if not queue:
                break
            arrival_t, index, _ = queue.pop()
            enqueued.discard(index)
            worker = workers[index]
            target_name, pending_t = worker.pending
            self.clock.advance_to(arrival_t)
            outcome = self.pool.admit(target_name, pending_t,
                                      priority=worker.spec.priority)
            worker.serve(outcome)

        for w in workers:
            w.thread.join(w.timeout_s)
            self._check(w)
            if w.result is None:
                raise RuntimeError(
                    f"{w.spec.device_id}: device finished without a "
                    f"session result")

        outcomes = [DeviceOutcome(device_id=w.spec.device_id,
                                  index=w.index,
                                  start_offset_s=w.offset,
                                  priority=w.spec.priority,
                                  result=w.result)
                    for w in workers]
        makespan = max(o.completion_s for o in outcomes)
        return FleetResult(devices=outcomes, pool=self.pool,
                           makespan_s=makespan)

    def _check(self, worker: _DeviceWorker) -> None:
        if worker.error is not None:
            raise RuntimeError(
                f"device {worker.spec.device_id} failed"
            ) from worker.error
