"""The fleet simulator's event taxonomy and device state machine.

The event-driven scheduler (docs/simulator.md) drives every device
through an explicit lifecycle::

    IDLE -> ARRIVED -> REQUESTING -> EXECUTING -> ... -> COMPLETE
                          ^                |
                          +----------------+   (one cycle per admission)

Three event kinds drive devices, and each is the *only* way a device in
the matching state makes progress:

* :data:`ARRIVAL` — fires at the device's ``start_offset_s``; the
  device runs from program start to its first admission request (or to
  completion, if it never offloads).
* :data:`ADMISSION_REQUEST` — fires at the global time the device asked
  for a server.  Processing it performs the *only* shared-state
  mutation in the simulator: ``pool.admit`` followed by the matching
  ``pool.release`` once the device's next execution segment is known.
* :data:`COMPLETION` — fires when the device's program finished; purely
  observational (no shared state is touched), so ties between a
  completion and any other event are outcome-neutral by construction.

A fourth kind belongs to the control plane, not to any device:

* :data:`AUTOSCALE` — a periodic tick at which the
  :class:`~repro.fleet.autoscaler.Autoscaler` evaluates its sliding
  SLO windows and may grow or shrink the pool (docs/placement.md).
  Ticks carry an index above every device's, so at equal times all
  device events are served before the pool is resized.

Simultaneous events order by ``(time, device index)`` through the
:class:`~repro.fleet.clock.EventQueue` — the same tie-break the lockstep
scheduler applied to admission requests, which is what makes the two
engines byte-identical (docs/fleet.md, "Lockstep vs event-driven").
"""

from __future__ import annotations

import enum

#: Event kinds, in the order a device experiences them; AUTOSCALE is
#: the control-plane tick (no device state attached).
ARRIVAL = "arrival"
ADMISSION_REQUEST = "admission_request"
COMPLETION = "completion"
AUTOSCALE = "autoscale"

EVENT_KINDS = (ARRIVAL, ADMISSION_REQUEST, COMPLETION, AUTOSCALE)


class DeviceState(enum.Enum):
    """Lifecycle states of one device inside the event-driven core.

    Transitions (enforced by :class:`~repro.fleet.scheduler.
    FleetScheduler`, asserted by tests/test_fleet_differential.py):

    * ``IDLE -> ARRIVED`` when the :data:`ARRIVAL` event fires;
    * ``ARRIVED -> REQUESTING`` when the first execution segment ends at
      an admission request, or ``ARRIVED -> EXECUTING`` directly when
      the program never offloads;
    * ``REQUESTING -> EXECUTING`` when the scheduler serves the request
      (admission *or* rejection — a rejected invocation still executes,
      locally);
    * ``EXECUTING -> REQUESTING`` at the next admission request;
    * ``EXECUTING -> COMPLETE`` when the :data:`COMPLETION` event fires.
    """

    IDLE = "idle"
    ARRIVED = "arrived"
    REQUESTING = "requesting"
    EXECUTING = "executing"
    COMPLETE = "complete"


#: Legal state-machine transitions, as (from, to) pairs.  Kept next to
#: the enum so the scheduler and the tests share one definition.
TRANSITIONS = frozenset({
    (DeviceState.IDLE, DeviceState.ARRIVED),
    (DeviceState.ARRIVED, DeviceState.REQUESTING),
    (DeviceState.ARRIVED, DeviceState.EXECUTING),
    (DeviceState.REQUESTING, DeviceState.EXECUTING),
    (DeviceState.EXECUTING, DeviceState.REQUESTING),
    (DeviceState.EXECUTING, DeviceState.COMPLETE),
})
