"""Device specifications and arrival processes for fleet runs.

A fleet is just a list of :class:`DeviceSpec`s — each one the complete
recipe for a single-device :class:`~repro.runtime.session.OffloadSession`
plus its placement on the global timeline (``start_offset_s``) and its
standing with the pool (``priority``).  The scheduler never peeks inside
the session; everything it needs to know about a device is here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..runtime.session import SessionOptions


@dataclass
class DeviceSpec:
    """One device of the fleet.

    The spec fully determines the device's behavior: ``program``,
    ``network``, ``stdin``, ``files`` and ``options`` fix the session's
    deterministic execution, ``start_offset_s`` maps its session-local
    clock onto global fleet time, and ``priority`` lets the pool's
    reserved queue tail (docs/fleet.md, "Admission control") accept it
    when ordinary devices would be refused.  The event-driven scheduler
    relies on this: two devices whose specs agree on everything but
    ``device_id`` and ``start_offset_s`` are behaviorally identical and
    can share replayed execution segments (docs/simulator.md).
    """

    device_id: str
    program: object                 # compiled OffloadProgram
    network: object                 # NetworkModel
    stdin: bytes = b""
    files: Optional[Dict[str, bytes]] = None
    start_offset_s: float = 0.0     # global time the device starts
    options: Optional[SessionOptions] = None
    priority: bool = False          # may use the pool's reserved queue tail
    # Relative per-invocation deadline (seconds from each admission
    # request) for the deadline-aware decision engine
    # (docs/placement.md); None = no deadline.
    deadline_s: Optional[float] = None


def arrival_offsets(pattern: str, devices: int, spacing_s: float,
                    rng) -> List[float]:
    """Start offsets for ``devices`` devices.

    * ``uniform`` — fixed ``spacing_s`` between consecutive starts;
    * ``poisson`` — exponential inter-arrivals with mean ``spacing_s``,
      drawn from ``rng`` (a fan-out child, never a shared global);
    * ``burst`` — everyone at t=0, the worst case for the pool.
    """
    if pattern == "uniform":
        return [i * spacing_s for i in range(devices)]
    if pattern == "poisson":
        offsets, t = [], 0.0
        for _ in range(devices):
            offsets.append(t)
            t += rng.expovariate(1.0 / spacing_s) if spacing_s > 0 else 0.0
        return offsets
    if pattern == "burst":
        return [0.0] * devices
    raise ValueError(f"unknown arrival pattern {pattern!r}")
