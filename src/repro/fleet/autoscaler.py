"""SLO-driven elasticity: grow or shrink the pool mid-simulation.

PR 5's report evaluates sliding-window SLO rules *after* a run; the
autoscaler closes that loop by evaluating the same rules (same
:class:`~repro.trace.analysis.slo.SloRule` records, same
:func:`~repro.trace.analysis.slo.window_metric` implementation) *during*
the run, on :data:`~repro.fleet.events.AUTOSCALE` ticks the event-driven
scheduler fires between device events.

At each tick the autoscaler looks at the trailing window of admission
outcomes the scheduler observed.  A violated rule — queue pressure or a
decline-rate spike, the two contention findings of docs/observability.md
— produces a structured :class:`~repro.trace.analysis.slo.Finding` and,
capacity permitting, one new server cloned from the configured template
spec (``pool.add_server``).  A healthy stretch of
``scale_down_after`` consecutive ticks retires the most recently added
server, but only once it is idle — ``pool.remove_server`` refuses
otherwise and the autoscaler simply retries later.  Actions are
surfaced in ``FleetResult.summary()["autoscale"]``.

The autoscaler only exists in the event-driven engine: it is pool
control-plane work scheduled *as an event*, which the deprecated
lockstep engine has no slot for (docs/placement.md, "Autoscaler").
Determinism is preserved — ticks fire at fixed simulated times with a
fixed tie-break index, so the same seed yields the same scaling story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..runtime.backend import Admission
from ..trace.analysis.slo import Finding, Observation, SloRule, window_metric
from .pool import ServerPool, ServerSpec

#: The contention subset of the report's DEFAULT_RULES: the two
#: findings a pool can actually act on by adding capacity.  Same
#: metrics and thresholds as repro.trace.analysis.slo.DEFAULT_RULES.
DEFAULT_AUTOSCALE_RULES: Tuple[SloRule, ...] = (
    SloRule("queue_pressure", "mean_queue_wait_s", ">", 0.005,
            window_s=0.05, min_samples=4),
    SloRule("decline_rate_spike", "decline_rate", ">", 0.6,
            window_s=0.05, min_samples=6),
)


@dataclass(frozen=True)
class AutoscalerOptions:
    """Knobs for the SLO feedback loop."""

    interval_s: float = 0.005        # tick period in simulated seconds
    rules: Tuple[SloRule, ...] = DEFAULT_AUTOSCALE_RULES
    template: ServerSpec = ServerSpec()  # what a scale-up adds
    max_servers: int = 8             # cap on *active* servers
    scale_down_after: int = 4        # healthy ticks before a shrink

    def __post_init__(self) -> None:
        if self.interval_s <= 0.0:
            raise ValueError("interval_s must be > 0")
        if self.max_servers <= 0:
            raise ValueError("max_servers must be > 0")
        if self.scale_down_after <= 0:
            raise ValueError("scale_down_after must be > 0")


class Autoscaler:
    """Consumes admission outcomes, emits pool resizes.

    ``observe`` is called by the scheduler for every served admission
    request; ``evaluate`` on every :data:`~repro.fleet.events.AUTOSCALE`
    tick.  ``findings`` collects the violated-window evidence,
    ``actions`` the resizes actually performed (both in simulated-time
    order; deterministic for a given seed).
    """

    def __init__(self, options: Optional[AutoscalerOptions] = None):
        self.options = options or AutoscalerOptions()
        self.findings: List[Finding] = []
        self.actions: List[dict] = []
        self._observations: List[Observation] = []
        self._added: List[int] = []     # ids of servers we grew, LIFO
        self._healthy_ticks = 0

    # -- data plane ----------------------------------------------------
    def observe(self, t: float, outcome) -> None:
        """Record one served admission request at global time ``t``.

        Rejections count as declines *and* carry the quoted wait —
        exactly how the post-hoc SLO evaluator scores a refused
        invocation's local fallback.
        """
        if isinstance(outcome, Admission):
            obs = Observation(t=t, offloaded=True, fallback=False,
                              queue_wait_s=outcome.queue_seconds,
                              retries=0)
        else:
            obs = Observation(t=t, offloaded=False, fallback=True,
                              queue_wait_s=outcome.estimated_wait_s,
                              retries=0)
        self._observations.append(obs)

    # -- control plane -------------------------------------------------
    def evaluate(self, t: float, pool: ServerPool) -> None:
        """One AUTOSCALE tick: check the trailing windows, maybe resize."""
        violation = self._violated_rule(t)
        if violation is None:
            self._healthy_ticks += 1
            if (self._healthy_ticks >= self.options.scale_down_after
                    and self._added):
                server_id = self._added[-1]
                if pool.remove_server(server_id, t):
                    self._added.pop()
                    self._healthy_ticks = 0
                    self.actions.append({
                        "t": t, "action": "scale_down",
                        "server": server_id,
                        "tier": self.options.template.tier,
                        "rule": None, "value": None,
                    })
            return
        rule, value, samples = violation
        self._healthy_ticks = 0
        self.findings.append(Finding(
            rule=rule.name, severity=rule.severity,
            start_s=max(0.0, t - rule.window_s), end_s=t,
            value=value, threshold=rule.threshold, samples=samples,
            detail=f"autoscaler: {rule.metric} {rule.op} "
                   f"{rule.threshold:g}"))
        if pool.active_servers < self.options.max_servers:
            server_id = pool.add_server(self.options.template)
            self._added.append(server_id)
            self.actions.append({
                "t": t, "action": "scale_up", "server": server_id,
                "tier": self.options.template.tier,
                "rule": rule.name, "value": value,
            })

    def _violated_rule(self, t: float):
        """First violated rule over its trailing window at time ``t``."""
        for rule in self.options.rules:
            window = [o for o in self._observations
                      if t - rule.window_s <= o.t <= t]
            if len(window) < rule.min_samples:
                continue
            value = window_metric(rule.metric, window)
            if rule.violated(value):
                return rule, value, len(window)
        return None

    def summary(self) -> dict:
        """Deterministic JSON-ready accounting for FleetResult.summary."""
        return {
            "actions": list(self.actions),
            "findings": [f.to_json() for f in self.findings],
            "scale_ups": sum(1 for a in self.actions
                             if a["action"] == "scale_up"),
            "scale_downs": sum(1 for a in self.actions
                               if a["action"] == "scale_down"),
        }
