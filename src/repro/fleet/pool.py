"""The contended server pool: heterogeneous tiers, slots, bounded queues.

Replaces the paper's dedicated offload server with N servers described
by per-server :class:`ServerSpec` records (speed multiplier, capacity,
queue depth, tier, network profile).  Admission is hindsight-exact
because the fleet scheduler serves requests in global-arrival order
*after* the previous occupant's release has been recorded (the
event-driven core applies each admission's replayed release before
serving the next request — docs/simulator.md), so each slot's
``busy_until`` is an actual completion time, never a guess:

* ``admit`` snapshots every eligible server into a
  :class:`~repro.fleet.engines.Candidate` and lets the pool's
  :class:`~repro.fleet.engines.DecisionEngine` pick the placement
  (``fifo`` — the default — reproduces the historical
  (wait, server-id)-least routing byte for byte), returning an
  :class:`~repro.runtime.backend.Admission` whose ``queue_seconds`` the
  device charges to its timeline and battery exactly like link time;
* a request finding every eligible queue full gets a
  :class:`~repro.runtime.backend.Rejection` quoting the wait it would
  have faced — the device degrades to local execution and the quote
  feeds the estimator's contention term (docs/fleet.md);
* ``priority`` requests may use the ``priority_reserve`` tail of each
  queue that ordinary requests must leave free.

Tiers (docs/placement.md): an ``edge`` server is cheap-near — the
device keeps its own base :class:`~repro.runtime.network.NetworkModel`;
a ``cloud`` server is fast-far — its spec usually carries a higher
``speed`` and a WAN ``network`` override that the comm layer uses for
every byte of that invocation.  The :class:`~repro.fleet.autoscaler.
Autoscaler` may grow or shrink the pool mid-run via ``add_server`` /
``remove_server``; retired servers keep their stats for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..runtime.backend import Admission, Rejection
from ..runtime.network import NetworkModel
from .engines import (Candidate, DecisionEngine, PlacementRequest,
                      make_engine)

#: Valid ``ServerSpec.tier`` names: ``edge`` is cheap-near (device keeps
#: its own link), ``cloud`` is fast-far (spec carries a WAN override).
TIERS = ("edge", "cloud")


@dataclass(frozen=True)
class ServerSpec:
    """One server's shape: how fast, how wide, how far away.

    ``speed`` divides server-side compute time (2.0 = twice the
    reference server of the paper's Table 1).  ``network`` is the
    :class:`~repro.runtime.network.NetworkModel` an admitted device
    talks through for that invocation; None keeps the device's own
    link, which is what an edge-tier server means.
    """

    speed: float = 1.0
    capacity: int = 1              # concurrent invocations
    # Max invocations *waiting* (service not yet started); None =
    # unbounded.  0 is rejected at construction: use capacity to size
    # concurrency, not a queue nobody may join.
    queue_limit: Optional[int] = None
    tier: str = "edge"
    network: Optional[NetworkModel] = None

    def __post_init__(self) -> None:
        if self.speed <= 0.0:
            raise ValueError("server speed must be > 0")
        if self.capacity <= 0:
            raise ValueError("servers need at least one slot")
        if self.queue_limit is not None and self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive (or None)")
        if self.tier not in TIERS:
            raise ValueError(
                f"unknown tier {self.tier!r}; expected one of {TIERS}")


@dataclass(frozen=True)
class PoolOptions:
    """Shape of the server pool.

    Two ways to describe it: the homogeneous knobs (``servers`` ×
    ``capacity`` identical edge servers, the historical form), or an
    explicit ``specs`` tuple of :class:`ServerSpec` for heterogeneous
    or tiered pools.  When ``specs`` is given it wins and the
    homogeneous knobs are ignored.
    """

    servers: int = 1
    capacity: int = 1              # concurrent invocations per server
    # Max invocations *waiting* (service not yet started) per server;
    # None = unbounded.
    queue_limit: Optional[int] = None
    # Queue positions only priority requests may take.  Must leave at
    # least one ordinary position unless the queue is entirely reserved.
    priority_reserve: int = 0
    specs: Optional[Tuple[ServerSpec, ...]] = None

    def __post_init__(self) -> None:
        if self.specs is not None:
            object.__setattr__(self, "specs", tuple(self.specs))
            if not self.specs:
                raise ValueError("specs must name at least one server")
        elif self.servers <= 0:
            raise ValueError("pool needs at least one server")
        if self.capacity <= 0:
            raise ValueError("servers need at least one slot")
        if self.queue_limit is not None and self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive (or None)")
        if self.priority_reserve < 0:
            raise ValueError("priority_reserve must be >= 0")
        for limit in (spec.queue_limit for spec in self.server_specs()):
            if limit is not None and self.priority_reserve > limit:
                raise ValueError("priority_reserve exceeds queue_limit")

    def server_specs(self) -> Tuple[ServerSpec, ...]:
        """The per-server specs, expanding the homogeneous knobs."""
        if self.specs is not None:
            return self.specs
        return tuple(ServerSpec(capacity=self.capacity,
                                queue_limit=self.queue_limit)
                     for _ in range(self.servers))


@dataclass
class ServerStats:
    """Per-server accounting, reported by the fleet summary."""

    server_id: int
    admitted: int = 0
    rejected: int = 0
    busy_seconds: float = 0.0       # slot-seconds actually in service
    queue_delay_total: float = 0.0  # sum of admitted waits
    queued_admissions: int = 0      # admissions that had to wait
    max_queue_depth: int = 0        # peak waiting invocations
    # Admissions that were members of a scatter/gather gang
    # (docs/parallel-offload.md) — a subset of ``admitted``, surfaced
    # in servers_detail so shard fan-out is visible per server.
    shard_admissions: int = 0

    def utilization(self, horizon_s: float, capacity: int) -> float:
        if horizon_s <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / (horizon_s * capacity))


class _Server:
    def __init__(self, server_id: int, spec: ServerSpec):
        self.id = server_id
        self.spec = spec
        self.slots = [0.0] * spec.capacity  # busy_until, actual releases
        self.pending_starts: List[float] = []
        self.stats = ServerStats(server_id=server_id)
        self.active = True              # autoscaler may retire a server

    def purge(self, arrival_t: float) -> None:
        self.pending_starts = [s for s in self.pending_starts
                               if s > arrival_t]

    def best_slot(self, arrival_t: float):
        idx = min(range(len(self.slots)), key=lambda i: (self.slots[i], i))
        return idx, max(0.0, self.slots[idx] - arrival_t)

    def free_slots(self, arrival_t: float) -> int:
        return sum(1 for busy_until in self.slots
                   if busy_until <= arrival_t)


class ServerPool:
    """Admission control for a fleet of devices sharing N servers."""

    def __init__(self, options: Optional[PoolOptions] = None,
                 engine: Union[str, DecisionEngine] = "fifo"):
        self.options = options or PoolOptions()
        self.engine = make_engine(engine)
        self._servers = [_Server(i, spec) for i, spec
                         in enumerate(self.options.server_specs())]
        self._outstanding = 0
        self.total_rejected = 0

    @property
    def engine_name(self) -> str:
        return self.engine.name

    # -- admission -----------------------------------------------------
    def admit(self, target_name: str, arrival_t: float,
              priority: bool = False,
              deadline_s: Optional[float] = None,
              ) -> Union[Admission, Rejection]:
        """Route one offload request arriving at global ``arrival_t``.

        Must be called in nondecreasing arrival order with every prior
        admission already released (both fleet engines guarantee this
        admit/release interleaving — docs/fleet.md, "Scheduling
        model"; direct users replay history the same way).
        ``deadline_s`` is the request's relative deadline; the engine
        sees it as the absolute ``arrival_t + deadline_s``.
        """
        if self._outstanding:
            raise RuntimeError(
                "admit() with an unreleased admission outstanding — "
                "requests must be served in discrete-event order "
                "(docs/fleet.md, 'Scheduling model')")
        candidates: List[Candidate] = []
        min_wait = None     # across all servers, for the rejection quote
        for server in self._servers:
            if not server.active:
                continue
            server.purge(arrival_t)
            slot_idx, wait = server.best_slot(arrival_t)
            if min_wait is None or wait < min_wait:
                min_wait = wait
            if wait > 0.0:
                limit = server.spec.queue_limit
                if limit is not None:
                    if not priority:
                        limit -= self.options.priority_reserve
                    if len(server.pending_starts) >= limit:
                        continue    # this queue is full for us
            candidates.append(Candidate(
                server_id=server.id, wait=wait,
                free_slots=server.free_slots(arrival_t),
                queue_len=len(server.pending_starts),
                spec=server.spec, stats=server.stats,
                slot_idx=slot_idx, server=server))
        if not candidates:
            self.total_rejected += 1
            # charge the refusal to the server that was closest to free
            closest = min((s for s in self._servers if s.active),
                          key=lambda s: (s.best_slot(arrival_t)[1], s.id))
            closest.stats.rejected += 1
            return Rejection(estimated_wait_s=min_wait or 0.0)
        request = PlacementRequest(
            target=target_name, arrival_t=arrival_t, priority=priority,
            deadline_t=(None if deadline_s is None
                        else arrival_t + deadline_s))
        chosen = self.engine.select(candidates, request)
        if chosen is None:
            # Engine-level admission control (e.g. deadline-aware with
            # no candidate expected to meet the deadline): same outcome
            # as a full pool — the device falls back to local.
            self.total_rejected += 1
            min(candidates,
                key=lambda c: (c.wait, c.server_id)).stats.rejected += 1
            return Rejection(estimated_wait_s=min_wait or 0.0)
        wait, server, slot_idx = chosen.wait, chosen.server, chosen.slot_idx
        start = arrival_t + wait
        server.slots[slot_idx] = start   # resolved by release()
        stats = server.stats
        stats.admitted += 1
        stats.queue_delay_total += wait
        if wait > 0.0:
            server.pending_starts.append(start)
            stats.queued_admissions += 1
            stats.max_queue_depth = max(stats.max_queue_depth,
                                        len(server.pending_starts))
        self._outstanding += 1
        return Admission(server_id=server.id, queue_seconds=wait,
                         start_s=start, token=(server.id, slot_idx, start),
                         speed=server.spec.speed,
                         network=server.spec.network,
                         tier=server.spec.tier,
                         deadline_s=deadline_s, priority=priority)

    def admit_gang(self, target_name: str, arrival_t: float,
                   shards: int, priority: bool = False,
                   deadline_s: Optional[float] = None,
                   ) -> Union[List[Admission], Rejection]:
        """Atomically place up to ``shards`` gang members for one
        scatter/gather plan (docs/parallel-offload.md).

        All-or-degrade-to-fewer: only slots free *now* are eligible —
        a queued shard would serialize the plan behind another device's
        invocation, so gang members never wait — and servers whose spec
        carries a network override are excluded (the session has one
        link; a plan cannot speak two).  Fewer free slots than shards
        means a smaller gang; none at all degrades to a classic
        ``admit`` (which may queue or reject).  Partial admission can
        never deadlock: every granted member holds a slot that was free
        at ``arrival_t``, so no member ever waits on another.
        """
        if shards <= 1:
            outcome = self.admit(target_name, arrival_t,
                                 priority=priority,
                                 deadline_s=deadline_s)
            return outcome if isinstance(outcome, Rejection) else [outcome]
        if self._outstanding:
            raise RuntimeError(
                "admit_gang() with an unreleased admission outstanding "
                "— requests must be served in discrete-event order "
                "(docs/fleet.md, 'Scheduling model')")
        free_idx: Dict[int, List[int]] = {}
        candidates: List[Candidate] = []
        for server in self._servers:
            if not server.active or server.spec.network is not None:
                continue
            server.purge(arrival_t)
            idxs = [i for i, busy_until in enumerate(server.slots)
                    if busy_until <= arrival_t]
            if not idxs:
                continue
            free_idx[server.id] = idxs
            candidates.append(Candidate(
                server_id=server.id, wait=0.0, free_slots=len(idxs),
                queue_len=len(server.pending_starts),
                spec=server.spec, stats=server.stats,
                slot_idx=idxs[0], server=server))
        request = PlacementRequest(
            target=target_name, arrival_t=arrival_t, priority=priority,
            deadline_t=(None if deadline_s is None
                        else arrival_t + deadline_s))
        members = (self.engine.select_gang(candidates, request, shards)
                   if candidates else [])
        if not members:
            # the degrade ladder's next rung: one classic admission
            outcome = self.admit(target_name, arrival_t,
                                 priority=priority,
                                 deadline_s=deadline_s)
            return outcome if isinstance(outcome, Rejection) else [outcome]
        admissions: List[Admission] = []
        for member in members:
            server = member.server
            idxs = free_idx.get(server.id)
            if not idxs:
                continue    # a custom engine over-placed; ignore it
            slot_idx = idxs.pop(0)
            server.slots[slot_idx] = arrival_t  # resolved by release()
            stats = server.stats
            stats.admitted += 1
            stats.shard_admissions += 1
            self._outstanding += 1
            admissions.append(Admission(
                server_id=server.id, queue_seconds=0.0,
                start_s=arrival_t,
                token=(server.id, slot_idx, arrival_t),
                speed=server.spec.speed, network=None,
                tier=server.spec.tier,
                deadline_s=deadline_s, priority=priority))
        if not admissions:
            outcome = self.admit(target_name, arrival_t,
                                 priority=priority,
                                 deadline_s=deadline_s)
            return outcome if isinstance(outcome, Rejection) else [outcome]
        return admissions

    def release(self, admission: Admission, end_t: float) -> None:
        """The admitted invocation finished at global ``end_t``."""
        server_id, slot_idx, start = admission.token
        server = self._servers[server_id]
        if end_t < start:
            raise RuntimeError(
                f"release at {end_t} before service start {start}")
        server.slots[slot_idx] = end_t
        server.stats.busy_seconds += end_t - start
        self._outstanding -= 1

    # -- elasticity (docs/placement.md, "Autoscaler") ------------------
    def add_server(self, spec: ServerSpec) -> int:
        """Grow the pool by one server; returns its (fresh) id.

        Server ids are never reused, so traces and stats stay
        unambiguous across scale-down/scale-up cycles.
        """
        server = _Server(len(self._servers), spec)
        self._servers.append(server)
        return server.id

    def remove_server(self, server_id: int, now_t: float) -> bool:
        """Retire a server if it is idle; returns whether it happened.

        A server still serving (a slot busy past ``now_t``) or with
        queued starts is left alone — the autoscaler retries on a later
        tick.  The last active server can never be retired.  Retired
        servers keep their stats for the fleet summary.
        """
        server = self._servers[server_id]
        if not server.active or self.active_servers <= 1:
            return False
        server.purge(now_t)
        if server.pending_starts or any(busy > now_t
                                        for busy in server.slots):
            return False
        server.active = False
        return True

    @property
    def active_servers(self) -> int:
        return sum(1 for s in self._servers if s.active)

    # -- reporting -----------------------------------------------------
    @property
    def stats(self) -> List[ServerStats]:
        return [s.stats for s in self._servers]

    @property
    def total_admitted(self) -> int:
        return sum(s.stats.admitted for s in self._servers)

    @property
    def total_queue_delay_s(self) -> float:
        return sum(s.stats.queue_delay_total for s in self._servers)

    def utilization(self, horizon_s: float) -> Dict[int, float]:
        return {s.id: s.stats.utilization(horizon_s, s.spec.capacity)
                for s in self._servers}

    def servers_detail(self, horizon_s: float) -> List[dict]:
        """Per-server summary rows (FleetResult.summary, report table)."""
        rows = []
        for server in self._servers:
            s = server.stats
            rows.append({
                "id": s.server_id,
                "tier": server.spec.tier,
                "speed": server.spec.speed,
                "capacity": server.spec.capacity,
                "active": server.active,
                "admitted": s.admitted,
                "shard_admissions": s.shard_admissions,
                "rejected": s.rejected,
                "busy_seconds": s.busy_seconds,
                "queue_delay_s": s.queue_delay_total,
                "queued_admissions": s.queued_admissions,
                "max_queue_depth": s.max_queue_depth,
                "utilization": s.utilization(horizon_s,
                                             server.spec.capacity),
            })
        return rows
