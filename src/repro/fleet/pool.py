"""The contended server pool: capacity slots and bounded queues.

Replaces the paper's dedicated offload server with N servers of
``capacity`` execution slots each.  Admission is hindsight-exact because
the fleet scheduler serves requests in global-arrival order *after* the
previous occupant's release has been recorded (the event-driven core
applies each admission's replayed release before serving the next
request — docs/simulator.md), so each slot's ``busy_until`` is an
actual completion time, never a guess:

* ``admit`` routes a request to the (wait, server-id)-least pair among
  servers whose queue still has room, returning an
  :class:`~repro.runtime.backend.Admission` whose ``queue_seconds`` the
  device charges to its timeline and battery exactly like link time;
* a request finding every eligible queue full gets a
  :class:`~repro.runtime.backend.Rejection` quoting the wait it would
  have faced — the device degrades to local execution and the quote
  feeds the estimator's contention term (docs/fleet.md);
* ``priority`` requests may use the ``priority_reserve`` tail of each
  queue that ordinary requests must leave free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..runtime.backend import Admission, Rejection


@dataclass(frozen=True)
class PoolOptions:
    """Shape of the server pool."""

    servers: int = 1
    capacity: int = 1              # concurrent invocations per server
    # Max invocations *waiting* (service not yet started) per server;
    # None = unbounded, 0 = admit only into an idle slot.
    queue_limit: Optional[int] = None
    # Queue positions only priority requests may take.  Must leave at
    # least one ordinary position unless the queue is entirely reserved.
    priority_reserve: int = 0

    def __post_init__(self) -> None:
        if self.servers <= 0:
            raise ValueError("pool needs at least one server")
        if self.capacity <= 0:
            raise ValueError("servers need at least one slot")
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if self.priority_reserve < 0:
            raise ValueError("priority_reserve must be >= 0")
        if (self.queue_limit is not None
                and self.priority_reserve > self.queue_limit):
            raise ValueError("priority_reserve exceeds queue_limit")


@dataclass
class ServerStats:
    """Per-server accounting, reported by the fleet summary."""

    server_id: int
    admitted: int = 0
    rejected: int = 0
    busy_seconds: float = 0.0       # slot-seconds actually in service
    queue_delay_total: float = 0.0  # sum of admitted waits
    queued_admissions: int = 0      # admissions that had to wait
    max_queue_depth: int = 0

    def utilization(self, horizon_s: float, capacity: int) -> float:
        if horizon_s <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / (horizon_s * capacity))


class _Server:
    def __init__(self, server_id: int, capacity: int):
        self.id = server_id
        self.slots = [0.0] * capacity   # busy_until, from actual releases
        self.pending_starts: List[float] = []
        self.stats = ServerStats(server_id=server_id)

    def purge(self, arrival_t: float) -> None:
        self.pending_starts = [s for s in self.pending_starts
                               if s > arrival_t]

    def best_slot(self, arrival_t: float):
        idx = min(range(len(self.slots)), key=lambda i: (self.slots[i], i))
        return idx, max(0.0, self.slots[idx] - arrival_t)


class ServerPool:
    """Admission control for a fleet of devices sharing N servers."""

    def __init__(self, options: Optional[PoolOptions] = None):
        self.options = options or PoolOptions()
        self._servers = [_Server(i, self.options.capacity)
                         for i in range(self.options.servers)]
        self._outstanding = 0
        self.total_rejected = 0

    # -- admission -----------------------------------------------------
    def admit(self, target_name: str, arrival_t: float,
              priority: bool = False) -> Union[Admission, Rejection]:
        """Route one offload request arriving at global ``arrival_t``.

        Must be called in nondecreasing arrival order with every prior
        admission already released (both fleet engines guarantee this
        admit/release interleaving — docs/fleet.md, "Scheduling
        model"; direct users replay history the same way).
        """
        if self._outstanding:
            raise RuntimeError(
                "admit() with an unreleased admission outstanding — "
                "requests must be served in discrete-event order "
                "(docs/fleet.md, 'Scheduling model')")
        best = None         # (wait, server, slot_idx)
        min_wait = None     # across all servers, for the rejection quote
        for server in self._servers:
            server.purge(arrival_t)
            slot_idx, wait = server.best_slot(arrival_t)
            if min_wait is None or wait < min_wait:
                min_wait = wait
            if wait > 0.0 and self.options.queue_limit is not None:
                limit = self.options.queue_limit
                if not priority:
                    limit -= self.options.priority_reserve
                if len(server.pending_starts) >= limit:
                    continue    # this queue is full for us
            if best is None or (wait, server.id) < (best[0], best[1].id):
                best = (wait, server, slot_idx)
        if best is None:
            self.total_rejected += 1
            # charge the refusal to the server that was closest to free
            closest = min(self._servers,
                          key=lambda s: (s.best_slot(arrival_t)[1], s.id))
            closest.stats.rejected += 1
            return Rejection(estimated_wait_s=min_wait or 0.0)
        wait, server, slot_idx = best
        start = arrival_t + wait
        server.slots[slot_idx] = start   # resolved by release()
        stats = server.stats
        stats.admitted += 1
        stats.queue_delay_total += wait
        if wait > 0.0:
            server.pending_starts.append(start)
            stats.queued_admissions += 1
            stats.max_queue_depth = max(stats.max_queue_depth,
                                        len(server.pending_starts))
        self._outstanding += 1
        return Admission(server_id=server.id, queue_seconds=wait,
                         start_s=start, token=(server.id, slot_idx, start))

    def release(self, admission: Admission, end_t: float) -> None:
        """The admitted invocation finished at global ``end_t``."""
        server_id, slot_idx, start = admission.token
        server = self._servers[server_id]
        if end_t < start:
            raise RuntimeError(
                f"release at {end_t} before service start {start}")
        server.slots[slot_idx] = end_t
        server.stats.busy_seconds += end_t - start
        self._outstanding -= 1

    # -- reporting -----------------------------------------------------
    @property
    def stats(self) -> List[ServerStats]:
        return [s.stats for s in self._servers]

    @property
    def total_admitted(self) -> int:
        return sum(s.stats.admitted for s in self._servers)

    @property
    def total_queue_delay_s(self) -> float:
        return sum(s.stats.queue_delay_total for s in self._servers)

    def utilization(self, horizon_s: float) -> Dict[int, float]:
        return {s.id: s.stats.utilization(horizon_s, self.options.capacity)
                for s in self._servers}
