"""The retained thread-lockstep scheduler (deprecated).

This is the fleet's original execution engine: one OS thread per device
session, with the scheduler keeping the whole fleet in *lockstep* — at
most one device thread ever runs, and control passes at exactly the
points where devices interact (admission requests).  It is superseded
by the event-driven :class:`~repro.fleet.scheduler.FleetScheduler`,
which produces byte-identical results with no threads and no
per-device thread cost; the lockstep engine is retained as the
reference implementation the differential test
(``tests/test_fleet_differential.py``) checks the event core against,
and is reachable via ``--scheduler lockstep`` on the CLI.  It caps out
at tens of devices (one OS thread each) — do not use it for scale.

The rendezvous protocol:

1. every device runs until it blocks on ``admit`` or finishes;
2. the scheduler pops the earliest pending request — ordered by
   ``(global arrival time, device index)`` through the
   :class:`~repro.fleet.clock.EventQueue` — serves it against the
   :class:`~repro.fleet.pool.ServerPool`, and resumes that one device;
3. the device charges the admission's queueing delay (or the rejection's
   local fallback) into its own timeline and energy, releases the slot
   when the invocation completes, and eventually blocks again.

Because a device's requests are monotone in time and its release always
precedes its next request, every ``admit`` observes fully-resolved slot
times — the pool never guesses (pool.py's hindsight-exactness).  The
event-driven core preserves exactly this pool call order, which is why
the two engines agree byte-for-byte (docs/fleet.md, "Lockstep vs
event-driven").
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import List, Optional

from ..runtime.backend import Admission, OffloadDispatcher
from ..runtime.session import OffloadSession, SessionOptions, SessionResult
from .clock import EventQueue, SimClock
from .pool import ServerPool
from .result import DeviceOutcome, FleetResult
from .spec import DeviceSpec

#: How long (wall-clock) the scheduler waits for a device thread to
#: reach its next rendezvous before declaring the lockstep broken.
RENDEZVOUS_TIMEOUT_S = 300.0


class _PooledDispatcher(OffloadDispatcher):
    """The session-side end of the rendezvous: blocks the device thread
    until the scheduler has served its admission request."""

    def __init__(self, worker: "_DeviceWorker"):
        self.worker = worker

    def admit(self, target_name: str, now_s: float):
        return self.worker.request_admission(target_name, now_s)

    def release(self, admission: Admission, now_s: float) -> None:
        self.worker.release_slot(admission, now_s)


class _DeviceWorker:
    """One device session on its own thread, lockstepped by events."""

    def __init__(self, index: int, spec: DeviceSpec, pool: ServerPool,
                 timeout_s: float):
        self.index = index
        self.spec = spec
        self.pool = pool
        self.timeout_s = timeout_s
        self.offset = spec.start_offset_s
        # quiescent: the device is blocked on admission or finished —
        # the only states in which the scheduler may act.
        self.quiescent = threading.Event()
        self.resume = threading.Event()
        self.done = threading.Event()
        self.pending = None         # (target_name, global_arrival_t)
        self.outcome = None         # Admission | Rejection handed back
        self.result: Optional[SessionResult] = None
        self.error: Optional[BaseException] = None
        self.thread = threading.Thread(
            target=self._run, name=f"fleet-{spec.device_id}", daemon=True)

    # -- device thread -------------------------------------------------
    def _run(self) -> None:
        try:
            base = self.spec.options or SessionOptions()
            options = replace(base,
                              dispatcher=_PooledDispatcher(self),
                              session_id=self.spec.device_id)
            session = OffloadSession(self.spec.program, self.spec.network,
                                     options=options,
                                     stdin=self.spec.stdin,
                                     files=self.spec.files)
            self.result = session.run()
        except BaseException as exc:    # surfaced by the scheduler
            self.error = exc
        finally:
            self.done.set()
            self.quiescent.set()

    def request_admission(self, target_name: str, now_s: float):
        self.pending = (target_name, self.offset + now_s)
        self.quiescent.set()
        if not self.resume.wait(self.timeout_s):
            raise RuntimeError(
                f"{self.spec.device_id}: scheduler never served the "
                f"admission request (lockstep rendezvous broken)")
        self.resume.clear()
        outcome, self.outcome = self.outcome, None
        return outcome

    def release_slot(self, admission: Admission, now_s: float) -> None:
        # Lockstep means this device thread is the only one running, so
        # the pool needs no lock here.
        self.pool.release(admission, self.offset + now_s)

    # -- scheduler side ------------------------------------------------
    def serve(self, outcome) -> None:
        self.pending = None
        self.outcome = outcome
        self.quiescent.clear()
        self.resume.set()
        if not self.quiescent.wait(self.timeout_s):
            raise RuntimeError(
                f"{self.spec.device_id}: device thread never reached "
                f"its next rendezvous")


class LockstepFleetScheduler:
    """Run a fleet on the deprecated one-thread-per-device engine.

    Same inputs, same outputs as the event-driven
    :class:`~repro.fleet.scheduler.FleetScheduler` — byte-identical
    summaries, merged traces and per-device results for the same seed —
    but wall-clock and memory scale with one OS thread per device.
    Kept as the differential-test reference; prefer the event core.
    """

    def __init__(self, devices: List[DeviceSpec], pool: ServerPool,
                 rendezvous_timeout_s: float = RENDEZVOUS_TIMEOUT_S):
        if not devices:
            raise ValueError("a fleet needs at least one device")
        self.pool = pool
        self.clock = SimClock()
        self._workers = [_DeviceWorker(i, spec, pool,
                                       rendezvous_timeout_s)
                         for i, spec in enumerate(devices)]

    def run(self) -> FleetResult:
        workers = self._workers
        # Sequential start: each device runs to its first rendezvous
        # alone, so even session construction is fully serialized.
        for w in workers:
            w.thread.start()
            if not w.quiescent.wait(w.timeout_s):
                raise RuntimeError(
                    f"{w.spec.device_id}: device never reached its "
                    f"first rendezvous")
            self._check(w)

        queue = EventQueue()
        enqueued = set()
        while True:
            for w in workers:
                self._check(w)
                if (w.pending is not None and not w.done.is_set()
                        and w.index not in enqueued):
                    queue.push(w.pending[1], w.index)
                    enqueued.add(w.index)
            if not queue:
                break
            arrival_t, index, _ = queue.pop()
            enqueued.discard(index)
            worker = workers[index]
            target_name, pending_t = worker.pending
            self.clock.advance_to(arrival_t)
            outcome = self.pool.admit(target_name, pending_t,
                                      priority=worker.spec.priority,
                                      deadline_s=worker.spec.deadline_s)
            worker.serve(outcome)

        for w in workers:
            w.thread.join(w.timeout_s)
            self._check(w)
            if w.result is None:
                raise RuntimeError(
                    f"{w.spec.device_id}: device finished without a "
                    f"session result")

        outcomes = [DeviceOutcome(device_id=w.spec.device_id,
                                  index=w.index,
                                  start_offset_s=w.offset,
                                  priority=w.spec.priority,
                                  result=w.result)
                    for w in workers]
        makespan = max(o.completion_s for o in outcomes)
        return FleetResult(devices=outcomes, pool=self.pool,
                           makespan_s=makespan)

    def _check(self, worker: _DeviceWorker) -> None:
        if worker.error is not None:
            raise RuntimeError(
                f"device {worker.spec.device_id} failed"
            ) from worker.error
