"""Fleet run results: per-device outcomes, the fleet summary, and the
merged global trace.

Both schedulers (the event-driven :class:`~repro.fleet.scheduler.
FleetScheduler` and the retained :class:`~repro.fleet.lockstep.
LockstepFleetScheduler`) produce exactly this structure — the
differential test in ``tests/test_fleet_differential.py`` holds them to
byte-identical serializations of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..runtime.session import SessionResult
from ..trace.analysis.aggregate import (invocation_counts,
                                        nearest_rank_percentile)
from ..trace.tracer import TraceEvent
from .pool import ServerPool


@dataclass
class DeviceOutcome:
    """One device's run, placed on the global timeline."""

    device_id: str
    index: int
    start_offset_s: float
    priority: bool
    result: SessionResult

    @property
    def completion_s(self) -> float:
        """Global time the device's whole program finished."""
        return self.start_offset_s + self.result.total_seconds


# The one nearest-rank percentile definition, shared with the report
# (repro.trace.analysis) so the two can never disagree.
_percentile = nearest_rank_percentile


@dataclass
class FleetResult:
    """Everything a fleet run produced.

    ``devices`` holds one :class:`DeviceOutcome` per
    :class:`~repro.fleet.spec.DeviceSpec`, in spec order; ``pool`` is
    the (now fully drained) :class:`~repro.fleet.pool.ServerPool` with
    its per-server statistics; ``makespan_s`` is the latest device
    completion on the global clock; ``autoscale`` is the
    :class:`~repro.fleet.autoscaler.Autoscaler`'s action/finding
    accounting when one ran (None otherwise).  :meth:`summary` renders
    the JSON-safe fleet report, :meth:`merged_events` the fleet-wide
    trace.
    """

    devices: List[DeviceOutcome]
    pool: ServerPool
    makespan_s: float
    autoscale: Optional[dict] = None

    def summary(self) -> dict:
        """The JSON-safe fleet report (stable key order; two same-seed
        runs serialize byte-identically — tests/test_fleet.py)."""
        results = [d.result for d in self.devices]
        # One counting definition, shared with `repro report`
        # (repro.trace.analysis.aggregate).
        counts = invocation_counts(r for result in results
                                   for r in result.invocations)
        total_inv = counts["total"]
        offloaded = counts["offloaded"]
        declined = counts["declined"]
        rejected = counts["rejected"]
        aborted = counts["aborted"]
        fallbacks = counts["local_fallbacks"]
        queue_s = sum(r.queue_seconds for r in results)
        completions = [d.completion_s for d in self.devices]
        queued = sum(s.queued_admissions for s in self.pool.stats)
        opts = self.pool.options
        return {
            "devices": len(self.devices),
            # Actual pool width (the autoscaler may have grown it past
            # the configured size; retired servers still count here and
            # carry active=False in servers_detail).
            "servers": len(self.pool.stats),
            "servers_active": self.pool.active_servers,
            "engine": self.pool.engine_name,
            "capacity": opts.capacity,
            "queue_limit": opts.queue_limit,
            "makespan_s": self.makespan_s,
            "throughput_invocations_per_s": (
                total_inv / self.makespan_s if self.makespan_s > 0
                else 0.0),
            "completion_s": {
                "p50": _percentile(completions, 0.50),
                "p95": _percentile(completions, 0.95),
                "max": max(completions) if completions else 0.0,
            },
            "invocations": {
                "total": total_inv,
                "offloaded": offloaded,
                "declined": declined,
                "rejected": rejected,
                "aborted": aborted,
                "local_fallbacks": fallbacks,
            },
            "decline_rate": (
                (total_inv - offloaded) / total_inv if total_inv else 0.0),
            "queue": {
                "total_delay_s": queue_s,
                "mean_delay_s": (
                    queue_s / queued if queued else 0.0),
                "queued_admissions": queued,
            },
            "servers_detail": self.pool.servers_detail(self.makespan_s),
            "autoscale": self.autoscale or {},
            "energy_mj_total": sum(r.energy_mj for r in results),
        }

    @property
    def dropped_events(self) -> int:
        """Events lost to the devices' trace ring buffers, fleet-wide —
        the truncation signal ``write_jsonl`` headers and ``repro
        report`` surface."""
        return sum(d.result.trace.dropped for d in self.devices
                   if d.result.trace is not None)

    def merged_events(self) -> List[TraceEvent]:
        """One fleet-wide trace: every device's events shifted onto the
        global timeline, ordered by (time, device index, seq).  Events
        already carry the device's session id (``sid``)."""
        merged = []
        for device in self.devices:
            tracer = device.result.trace
            if tracer is None:
                continue
            for e in tracer.events():
                merged.append((e.t + device.start_offset_s, device.index,
                               e.seq, e))
        merged.sort(key=lambda item: item[:3])
        return [TraceEvent(t=t, seq=e.seq, category=e.category,
                           name=e.name, dur=e.dur, payload=e.payload,
                           sid=e.sid)
                for t, _, _, e in merged]
