"""Profile data model: what the hot function/loop profiler records.

Table 3 of the paper shows the three quantities per offload candidate the
estimator consumes: execution time, invocation count and memory size.
Memory size is accounted as the set of distinct pages touched during the
candidate's (inclusive) execution — exactly the data copy-on-demand would
move, which is what Equation 1 charges for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class CandidateProfile:
    """Aggregated profile of one offload candidate (function or loop)."""

    name: str
    kind: str                      # "function" or "loop"
    function_name: str             # owning function (== name for functions)
    total_seconds: float = 0.0
    invocations: int = 0
    pages_touched: Set[int] = field(default_factory=set)
    page_size: int = 4096

    @property
    def memory_bytes(self) -> int:
        return len(self.pages_touched) * self.page_size

    @property
    def seconds_per_invocation(self) -> float:
        if self.invocations == 0:
            return 0.0
        return self.total_seconds / self.invocations

    def __repr__(self) -> str:
        return (f"<{self.kind} {self.name}: {self.total_seconds:.4f}s, "
                f"{self.invocations} invocations, "
                f"{self.memory_bytes / 1e6:.2f} MB>")


@dataclass
class ProfileData:
    """Complete result of one profiling run."""

    module_name: str
    arch_name: str
    program_seconds: float = 0.0
    instructions: int = 0
    candidates: Dict[str, CandidateProfile] = field(default_factory=dict)
    stdout: str = ""
    exit_code: int = 0

    def candidate(self, name: str) -> CandidateProfile:
        return self.candidates[name]

    def functions(self) -> List[CandidateProfile]:
        return [c for c in self.candidates.values() if c.kind == "function"]

    def loops(self) -> List[CandidateProfile]:
        return [c for c in self.candidates.values() if c.kind == "loop"]

    def hottest(self, top: int = 10) -> List[CandidateProfile]:
        ranked = sorted(self.candidates.values(),
                        key=lambda c: c.total_seconds, reverse=True)
        return ranked[:top]

    def coverage_of(self, name: str) -> float:
        """Fraction of whole-program time spent in a candidate."""
        if self.program_seconds <= 0:
            return 0.0
        return self.candidates[name].total_seconds / self.program_seconds
