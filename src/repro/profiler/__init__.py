"""Hot function/loop profiler (paper, Section 3.1)."""

from .profile_data import CandidateProfile, ProfileData
from .profiler import ProfilingObserver, profile_module

__all__ = ["CandidateProfile", "ProfileData", "ProfilingObserver",
           "profile_module"]
