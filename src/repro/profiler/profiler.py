"""Hot function/loop profiler (paper, Section 3.1).

Runs the application once on the *mobile* machine model with a profiling
input, observing every function call, loop entry and memory access.  The
resulting :class:`ProfileData` drives the static performance estimator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..analysis.loops import Loop, LoopInfo
from ..ir.module import Module
from ..ir.values import BasicBlock, Function
from ..machine.fs import IOEnvironment
from ..machine.interpreter import Interpreter, Observer
from ..machine.libc import install_libc
from ..machine.machine import Machine
from ..targets.arch import TargetArch
from ..targets.presets import ARM32
from .profile_data import CandidateProfile, ProfileData


class _LoopActivation:
    __slots__ = ("loop", "start_cycles", "profile", "accounting")

    def __init__(self, loop: Loop, start_cycles: float,
                 profile: CandidateProfile, accounting: bool):
        self.loop = loop
        self.start_cycles = start_cycles
        self.profile = profile
        # Only the outermost activation of a loop accumulates time —
        # recursive re-entry of the enclosing function must not double
        # count (same rule as for function profiles).
        self.accounting = accounting


class _FrameState:
    __slots__ = ("fn", "loop_stack", "loop_info")

    def __init__(self, fn: Function, loop_info: Optional[LoopInfo]):
        self.fn = fn
        self.loop_info = loop_info
        self.loop_stack: List[_LoopActivation] = []


class ProfilingObserver(Observer):
    """Interpreter observer that attributes time, invocations and touched
    pages to functions and natural loops."""

    def __init__(self, module: Module, arch: TargetArch, page_size: int):
        self.arch = arch
        self.page_size = page_size
        self.profiles: Dict[str, CandidateProfile] = {}
        self._loop_infos: Dict[str, LoopInfo] = {}
        for fn in module.defined_functions():
            self.profiles[fn.name] = CandidateProfile(
                fn.name, "function", fn.name, page_size=page_size)
            info = LoopInfo(fn)
            self._loop_infos[fn.name] = info
            for loop in info.loops:
                self.profiles[loop.name] = CandidateProfile(
                    loop.name, "loop", fn.name, page_size=page_size)
        self._frames: List[_FrameState] = []
        self._fn_entry_cycles: Dict[str, List[float]] = {}
        self._active_fn_depth: Dict[str, int] = {}
        self._active_loop_depth: Dict[str, int] = {}
        # Scopes currently interested in page-touch events: function
        # profiles of every active (outermost) activation + active loops.
        self._touch_scopes: List[Set[int]] = []

    # -- function events --------------------------------------------------
    def enter_function(self, fn: Function, cycles: float) -> None:
        profile = self.profiles.get(fn.name)
        if profile is None:
            return
        profile.invocations += 1
        depth = self._active_fn_depth.get(fn.name, 0)
        self._active_fn_depth[fn.name] = depth + 1
        if depth == 0:
            self._fn_entry_cycles.setdefault(fn.name, []).append(cycles)
        self._frames.append(
            _FrameState(fn, self._loop_infos.get(fn.name)))

    def exit_function(self, fn: Function, cycles: float) -> None:
        profile = self.profiles.get(fn.name)
        if profile is None:
            return
        frame = self._frames.pop()
        while frame.loop_stack:
            self._pop_loop(frame, cycles)
        depth = self._active_fn_depth.get(fn.name, 1)
        self._active_fn_depth[fn.name] = depth - 1
        if depth == 1:
            start = self._fn_entry_cycles[fn.name].pop()
            profile.total_seconds += (cycles - start) / self.arch.clock_hz

    # -- loop events ----------------------------------------------------
    def enter_block(self, block: BasicBlock, cycles: float) -> None:
        if not self._frames:
            return
        frame = self._frames[-1]
        info = frame.loop_info
        if info is None or not info.loops:
            return
        # Leave loops that do not contain this block.
        while frame.loop_stack and not frame.loop_stack[-1].loop.contains(
                block):
            self._pop_loop(frame, cycles)
        # Enter loops: the chain from the current innermost down to the
        # innermost loop containing the block.
        innermost = info.innermost_loop_of(block)
        if innermost is None:
            return
        chain: List[Loop] = []
        active = frame.loop_stack[-1].loop if frame.loop_stack else None
        node: Optional[Loop] = innermost
        while node is not None and node is not active:
            chain.append(node)
            node = node.parent
        if node is not active:
            # block jumped into a disjoint loop nest; unwind fully
            while frame.loop_stack:
                self._pop_loop(frame, cycles)
            chain = []
            node = innermost
            while node is not None:
                chain.append(node)
                node = node.parent
        for loop in reversed(chain):
            profile = self.profiles[loop.name]
            profile.invocations += 1
            depth = self._active_loop_depth.get(loop.name, 0)
            self._active_loop_depth[loop.name] = depth + 1
            activation = _LoopActivation(loop, cycles, profile,
                                         accounting=depth == 0)
            frame.loop_stack.append(activation)
            self._touch_scopes.append(profile.pages_touched)

    def _pop_loop(self, frame: _FrameState, cycles: float) -> None:
        activation = frame.loop_stack.pop()
        name = activation.loop.name
        self._active_loop_depth[name] = (
            self._active_loop_depth.get(name, 1) - 1)
        if activation.accounting:
            activation.profile.total_seconds += (
                (cycles - activation.start_cycles) / self.arch.clock_hz)
        # Remove by identity: distinct activations may reference equal (or
        # the same) sets, and list.remove compares by equality.
        scopes = self._touch_scopes
        target = activation.profile.pages_touched
        for i in range(len(scopes) - 1, -1, -1):
            if scopes[i] is target:
                del scopes[i]
                break

    # -- memory events ----------------------------------------------------
    def memory_access(self, address: int, size: int, is_write: bool) -> None:
        first = address // self.page_size
        last = (address + max(size, 1) - 1) // self.page_size
        pages = range(first, last + 1)
        for frame in self._frames:
            profile = self.profiles.get(frame.fn.name)
            if profile is not None:
                profile.pages_touched.update(pages)
        for scope in self._touch_scopes:
            scope.update(pages)


def profile_module(module: Module,
                   arch: TargetArch = ARM32,
                   stdin: bytes = b"",
                   files: Optional[Dict[str, bytes]] = None,
                   page_size: int = 4096,
                   max_instructions: int = 500_000_000) -> ProfileData:
    """Run the program once on the mobile model and collect profiles."""
    io = IOEnvironment(files=files, stdin=stdin)
    machine = Machine(arch, "mobile", io=io, page_size=page_size)
    install_libc(machine)
    machine.load(module)
    observer = ProfilingObserver(module, arch, page_size)
    interp = Interpreter(machine, observer=observer,
                         max_instructions=max_instructions)
    exit_code = interp.run_main()
    data = ProfileData(
        module_name=module.name,
        arch_name=arch.name,
        program_seconds=interp.time_seconds,
        instructions=interp.instruction_count,
        candidates=observer.profiles,
        stdout=io.stdout_text(),
        exit_code=exit_code,
    )
    return data
