"""Command-line interface.

    python -m repro list                      # available workloads
    python -m repro run 458.sjeng             # offload one workload
    python -m repro run 164.gzip --network 802.11n
    python -m repro compile 456.hmmer         # show selection + stats
    python -m repro trace chess               # traced run: event timeline
    python -m repro trace chess --jsonl t.jsonl --chrome t.json
    python -m repro fleet --devices 20 --servers 2 --seed 0
    python -m repro report --seed 0 --json r.json --html r.html
    python -m repro report --baseline old.json --current new.json
    python -m repro table 3                   # regenerate a paper table
    python -m repro figure 6a                 # regenerate a paper figure
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from .eval import (evaluate_suite, figure6a_execution_time,
                   figure6b_battery, figure7_breakdown,
                   figure8_power_traces, render_figure6, render_figure7,
                   render_figure8, render_table1, render_table2,
                   render_table3, render_table4, render_table5)
from .fleet import (DECISION_ENGINES, DEFAULT_DECISION_ENGINE,
                    DEFAULT_ENGINE, SCHEDULER_ENGINES, Autoscaler,
                    AutoscalerOptions, DeviceSpec, PoolOptions, SeedFanout,
                    ServerPool, ServerSpec, arrival_offsets,
                    make_scheduler)
from .frontend import compile_c
from .offload import CompilerOptions, NativeOffloaderCompiler
from .profiler import profile_module
from .runtime import (FaultPlan, NETWORKS, OffloadSession, SessionOptions,
                      run_local)
from .trace import (load_jsonl, phase_totals, read_jsonl_meta,
                    render_metrics, render_timeline, write_chrome_trace,
                    write_jsonl)
from .trace.analysis import (BUCKETS, aggregate_sessions, build_report,
                             diff_bench, diff_reports, invocation_counts,
                             reconstruct_sessions, render_html,
                             report_to_json)
from .workloads import ALL_WORKLOADS, workload


def cmd_list(args) -> int:
    print(f"{'name':16s} {'LoC':>4s}  description")
    for spec in ALL_WORKLOADS:
        print(f"{spec.name:16s} {spec.loc:4d}  {spec.description}")
    print(f"{FLEET_MICRO_WORKLOAD:16s} {'-':>4s}  built-in hot kernel "
          f"(fleet default; nested loops, single-server)")
    print(f"{PARALLEL_MICRO_WORKLOAD:16s} {'-':>4s}  built-in "
          f"data-parallel kernel (shardable via --shards)")
    return 0


def _compile(name):
    spec = workload(name)
    module = spec.module()
    profile = profile_module(module, stdin=spec.profile_stdin,
                             files=spec.profile_files)
    program = NativeOffloaderCompiler(CompilerOptions()).compile(
        module, profile)
    return spec, module, profile, program


def cmd_compile(args) -> int:
    spec, module, profile, program = _compile(args.workload)
    print(f"{spec.name}: {spec.description}")
    print(f"  offload targets : {', '.join(program.target_names())}")
    print(f"  outlined loops  : {program.outlined_loops or '-'}")
    print(f"  unification     : {program.unification.summary()}")
    print(f"  remote I/O sites: {program.remote_io_sites}, "
          f"fn-ptr sites: {program.fn_ptr_sites}")
    print(f"  server pruned   : "
          f"{', '.join(program.partition.removed_server_functions) or '-'}")
    return 0


def _resolve_network(name: str):
    """The NetworkModel a ``--network`` flag names (None + stderr note
    when unknown) — shared by run/trace/fleet so the lookup and its
    error message cannot drift between subcommands."""
    network = NETWORKS.get(name)
    if network is None:
        print(f"unknown network {name!r}; "
              f"available: {sorted(NETWORKS)}", file=sys.stderr)
    return network


def _fault_plan(args):
    """Build the FaultPlan the CLI flags describe (None when every fault
    knob is at its default — the bit-identical fault-free path)."""
    plan = FaultPlan(seed=args.seed,
                     drop_rate=args.drop_rate,
                     max_jitter_s=args.jitter,
                     disconnect_after_messages=args.disconnect_after,
                     disconnect_rate=args.disconnect_rate,
                     reconnect_rate=args.reconnect_rate)
    return None if plan.is_empty else plan


def _print_fault_summary(result) -> None:
    ts = result.transport_stats
    print(f"  faults  : {ts.drops} drops, {ts.disconnects} disconnects, "
          f"{ts.retries} retries, {ts.reconnects} reconnects, "
          f"{ts.failed_deliveries} failed deliveries")
    print(f"  fallback: {result.aborted_invocations} aborted invocations, "
          f"{result.local_fallbacks} replayed locally, "
          f"{result.wasted_seconds * 1e3:.2f} ms wasted on the link")


def _print_uva_summary(result) -> None:
    """The UVA data-plane line(s) of the run/trace summaries
    (docs/uva-data-plane.md).  Phase seconds are the values the
    prefetch/write_back calls charged directly; inside a batching
    window the batch flush carries the wall time, so these read 0."""
    us = result.uva_stats
    if us is None:
        return
    print(f"  uva     : prefetch {us.prefetched_pages} pages "
          f"({us.prefetch_seconds * 1e3:.2f} ms), "
          f"writeback {us.written_back_pages} pages "
          f"({us.writeback_seconds * 1e3:.2f} ms), "
          f"{us.cod_faults} CoD faults")
    attempts = us.prefetch_hits + us.prefetch_wasted
    hit_pct = 100.0 * us.prefetch_hit_ratio
    print(f"  uva+    : cache kept {us.cache_kept_pages} pages, "
          f"skipped {us.cache_skipped_prefetch_pages} prefetches "
          f"({us.cache_saved_bytes / 1024:.1f} KiB), "
          f"delta saved {us.delta_saved_bytes / 1024:.1f} KiB "
          f"on {us.delta_pages} pages, "
          f"prefetch hits {us.prefetch_hits}/{attempts} "
          f"({hit_pct:.0f}%)")


def cmd_run(args) -> int:
    network = _resolve_network(args.network)
    if network is None:
        return 2
    name, module, stdin, files, program = _workload_program(args.workload)
    local = run_local(module, stdin=stdin, files=files)
    plan = _fault_plan(args)
    session = OffloadSession(program, network,
                             options=SessionOptions(fault_plan=plan,
                                                    shards=args.shards),
                             stdin=stdin, files=files)
    result = session.run()
    match = "identical" if result.stdout == local.stdout else "DIFFERENT"
    print(f"{name} over {network.name}"
          + (f" (faulty link, seed {args.seed})" if plan else ""))
    print(f"  local   : {local.seconds * 1e3:9.2f} ms  "
          f"{local.energy_mj:9.1f} mJ")
    print(f"  offload : {result.total_seconds * 1e3:9.2f} ms  "
          f"{result.energy_mj:9.1f} mJ")
    print(f"  speedup : {local.seconds / result.total_seconds:.2f}x   "
          f"battery saving "
          f"{(1 - result.energy_mj / local.energy_mj) * 100:.1f}%")
    counts = invocation_counts(result.invocations)
    print(f"  offloaded {counts['offloaded']}/{counts['total']} "
          f"invocations, "
          f"traffic {result.traffic_per_invocation_mb:.3f} MB/invocation, "
          f"output {match}")
    _print_scatter_summary(result)
    _print_uva_summary(result)
    if plan is not None:
        _print_fault_summary(result)
    return 0 if match == "identical" else 1


def _print_scatter_summary(result) -> None:
    """The scatter/gather line of the run summary: how many invocations
    ran as multi-shard plans and what the fan-out bought
    (docs/parallel-offload.md)."""
    plans = [r for r in result.invocations if r.shards > 1]
    if not plans:
        return
    shards = sum(r.shards for r in plans)
    wall = sum(r.shard_wall_seconds for r in plans)
    serial = sum(r.server_seconds for r in plans)
    stragglers = sum(r.stragglers for r in plans)
    print(f"  scatter : {len(plans)} plan(s), {shards} shards, "
          f"parallel exec {wall * 1e3:.2f} ms "
          f"(serial {serial * 1e3:.2f} ms), "
          f"{stragglers} straggler(s) replayed locally")


def cmd_trace(args) -> int:
    """Run one workload with structured tracing and print its timeline
    (docs/observability.md walks through reading this output)."""
    network = _resolve_network(args.network)
    if network is None:
        return 2
    name, module, stdin, files, program = _workload_program(args.workload)
    plan = _fault_plan(args)
    options = SessionOptions(enable_tracing=True,
                             trace_capacity=args.capacity,
                             fault_plan=plan,
                             shards=args.shards)
    session = OffloadSession(program, network, options=options,
                             stdin=stdin, files=files)
    result = session.run()
    tracer = result.trace
    events = tracer.events()

    categories = (args.categories.split(",") if args.categories else None)
    print(f"{name} over {network.name} — "
          f"{len(events)} trace events"
          + (f" ({tracer.dropped} dropped by the ring buffer)"
             if tracer.dropped else ""))
    print(render_timeline(events, categories=categories, tail=args.tail))
    print()
    print(render_metrics(tracer.metrics))

    derived = phase_totals(events)
    reported = result.breakdown()
    print()
    print("phase totals (trace-derived vs session accounting)")
    for key in reported:
        print(f"  {key:<20s} {derived[key]:.9f} s   "
              f"{reported[key]:.9f} s")
    print()
    print("analysis (span-derived — same aggregation as `repro report`)")
    _print_analysis_summary(events)
    _print_scatter_summary(result)
    print()
    print("uva data plane")
    _print_uva_summary(result)
    print()
    print("transport / fallback")
    _print_fault_summary(result)
    if args.jsonl:
        count = write_jsonl(events, args.jsonl, dropped=tracer.dropped)
        print(f"wrote {count} events to {args.jsonl}")
    if args.chrome:
        write_chrome_trace(events, args.chrome,
                           process_name=f"{name} over {network.name}",
                           dropped=tracer.dropped)
        print(f"wrote Chrome trace to {args.chrome} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _print_analysis_summary(events) -> None:
    """The span-derived lines of the trace summary, sourced from the
    exact aggregation code behind ``repro report`` (satellite of
    docs/observability.md: the CLI and the report cannot disagree)."""
    agg = aggregate_sessions(reconstruct_sessions(events))
    inv = agg.invocations
    print(f"  spans   : {inv['total']} invocations — "
          f"{inv['offloaded']} offloaded, {inv['declined']} declined, "
          f"{inv['rejected']} rejected, {inv['aborted']} aborted")
    cp = agg.critical_path
    parts = ", ".join(f"{name} {cp[name] * 1e3:.2f} ms"
                      for name in BUCKETS if cp[name] > 0)
    print(f"  critical: {parts or 'all buckets empty'}")
    if agg.dominant:
        dominant = ", ".join(f"{name} x{count}"
                             for name, count in
                             sorted(agg.dominant.items()))
        print(f"  dominant: {dominant}")


# The default fleet workload: a hot kernel invoked a few times per
# device, small enough that a 20-device fleet finishes in seconds but
# hot enough that the selector offloads it.  Real workload names from
# `python -m repro list` are accepted too.
FLEET_MICRO_WORKLOAD = "fleet-micro"
_FLEET_MICRO_SRC = r"""
int *data;
int n;

int crunch(void) {
    int i, r, acc = 0;
    for (r = 0; r < 40; r++) {
        for (i = 0; i < n; i++) {
            acc += (data[i] * 31 + r) ^ (acc >> 3);
        }
    }
    return acc;
}

int main() {
    int i, k;
    scanf("%d", &n);
    data = (int*) malloc(n * sizeof(int));
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    for (k = 0; k < 3; k++) printf("crunched %d\n", crunch());
    return 0;
}
"""
_FLEET_MICRO_STDIN = b"600\n"

# A data-parallel built-in: one flat loop, disjoint element writes —
# exactly the shape the shard analyzer accepts, so `--shards K`
# actually scatters it (docs/parallel-offload.md).  `fleet-micro`'s
# crunch kernel is nested-loop and always stays single-server.
PARALLEL_MICRO_WORKLOAD = "parallel-micro"
_PARALLEL_MICRO_SRC = r"""
int data[8192];
int out[8192];
int n;

void smooth(void) {
    int i;
    for (i = 0; i < n; i++) {
        int v = data[i];
        v = v * 31 + (v >> 3);
        v ^= v << 7;
        v += v >> 11;
        v = v * 1103515245 + 12345;
        v ^= v >> 13;
        v = v * 69069 + 1;
        v ^= v << 3;
        v += (v >> 2) ^ (v << 9);
        v = v * 2654435761 + 40503;
        v ^= v >> 17;
        v += (v << 5) - v;
        v = v * 22695477 + 1;
        v ^= v >> 7;
        v += (v >> 4) ^ (v << 11);
        v = v * 134775813 + 1;
        v ^= v << 13;
        out[i] = (v ^ (v >> 5)) + i;
    }
}

int main() {
    int i, acc = 0;
    scanf("%d", &n);
    for (i = 0; i < n; i++) data[i] = i * 7 + 3;
    smooth();
    for (i = 0; i < n; i++) acc += out[i];
    printf("smoothed %d\n", acc);
    return 0;
}
"""
_PARALLEL_MICRO_STDIN = b"4000\n"


def _workload_program(name: str):
    """(display name, module, stdin, files, program) for any workload a
    subcommand names: the paper suite plus the built-in micro kernels."""
    if name == FLEET_MICRO_WORKLOAD:
        module = compile_c(_FLEET_MICRO_SRC, FLEET_MICRO_WORKLOAD)
        profile = profile_module(module, stdin=_FLEET_MICRO_STDIN)
        program = NativeOffloaderCompiler(
            CompilerOptions(forced_targets=["crunch"])).compile(
                module, profile)
        return name, module, _FLEET_MICRO_STDIN, None, program
    if name == PARALLEL_MICRO_WORKLOAD:
        module = compile_c(_PARALLEL_MICRO_SRC, PARALLEL_MICRO_WORKLOAD)
        profile = profile_module(module, stdin=_PARALLEL_MICRO_STDIN)
        program = NativeOffloaderCompiler(
            CompilerOptions(forced_targets=["smooth"])).compile(
                module, profile)
        return name, module, _PARALLEL_MICRO_STDIN, None, program
    spec, module, profile, program = _compile(name)
    return spec.name, module, spec.eval_stdin, spec.eval_files, program


def _fleet_program(name: str):
    """(module, stdin, files, program) for a fleet workload name."""
    _, module, stdin, files, program = _workload_program(name)
    return module, stdin, files, program


def _pool_options(args) -> PoolOptions:
    """The PoolOptions the CLI flags describe.  Without --cloud-servers
    this is the historical homogeneous form (byte-identical pools);
    with it, the pool is a two-tier edge/cloud topology where cloud
    servers are faster but sit behind the cloud-wan link."""
    cloud = getattr(args, "cloud_servers", 0) or 0
    if cloud <= 0:
        return PoolOptions(servers=args.servers, capacity=args.capacity,
                           queue_limit=args.queue_limit)
    edge = tuple(ServerSpec(capacity=args.capacity,
                            queue_limit=args.queue_limit)
                 for _ in range(args.servers))
    far = tuple(ServerSpec(speed=args.cloud_speed, capacity=args.capacity,
                           queue_limit=args.queue_limit, tier="cloud",
                           network=NETWORKS["cloud-wan"])
                for _ in range(cloud))
    return PoolOptions(servers=args.servers, capacity=args.capacity,
                       queue_limit=args.queue_limit, specs=edge + far)


def _autoscaler(args, engine: str):
    """The Autoscaler the CLI flags ask for (None without --autoscale).
    Scale-up clones the homogeneous edge spec; only the event engine
    runs the control-plane ticks."""
    if not getattr(args, "autoscale", False):
        return None
    if engine != "event":
        print("--autoscale requires the event scheduler engine",
              file=sys.stderr)
        raise SystemExit(2)
    template = ServerSpec(capacity=args.capacity,
                          queue_limit=args.queue_limit)
    return Autoscaler(AutoscalerOptions(
        interval_s=args.autoscale_interval, template=template,
        max_servers=args.autoscale_max))


def _run_fleet(args, network, enable_tracing: bool):
    """Build and run the fleet the CLI flags describe — shared by
    ``fleet`` and ``report`` so the two subcommands simulate the exact
    same system.  Returns ``(FleetResult, base_plan, module, stdin,
    files)``."""
    module, stdin, files, program = _fleet_program(args.workload)
    # Every random draw in the run — arrival process, per-device fault
    # plans — fans out from the one --seed (docs/fleet.md, "Determinism").
    fan = SeedFanout(args.seed)
    offsets = arrival_offsets(args.arrival, args.devices, args.spacing,
                              fan.rng("arrivals"))
    base_plan = _fault_plan(args)
    devices = []
    for i in range(args.devices):
        device_id = f"dev{i:02d}"
        plan = (dataclasses.replace(base_plan, seed=fan.seed("fault", i))
                if base_plan is not None else None)
        options = SessionOptions(enable_tracing=enable_tracing,
                                 fault_plan=plan,
                                 shards=getattr(args, "shards", 1))
        devices.append(DeviceSpec(device_id=device_id, program=program,
                                  network=network, stdin=stdin,
                                  files=files, start_offset_s=offsets[i],
                                  options=options,
                                  deadline_s=getattr(args, "deadline",
                                                     None)))
    pool = ServerPool(_pool_options(args),
                      engine=getattr(args, "engine",
                                     DEFAULT_DECISION_ENGINE))
    engine = getattr(args, "scheduler", DEFAULT_ENGINE)
    autoscaler = _autoscaler(args, engine)
    result = make_scheduler(devices, pool, engine=engine,
                            autoscaler=autoscaler).run()
    return result, base_plan, module, stdin, files


def cmd_fleet(args) -> int:
    """Simulate N devices offloading against a contended server pool
    (docs/fleet.md)."""
    network = _resolve_network(args.network)
    if network is None:
        return 2
    result, base_plan, module, stdin, files = _run_fleet(
        args, network, enable_tracing=bool(args.jsonl))
    local = run_local(module, stdin=stdin, files=files)

    summary = result.summary()
    outputs_ok = all(d.result.stdout == local.stdout
                     for d in result.devices)
    inv = summary["invocations"]
    queue = summary["queue"]
    cloud = getattr(args, "cloud_servers", 0) or 0
    tiers = (f"{args.servers} edge + {cloud} cloud server(s)"
             if cloud else f"{args.servers} server(s)")
    print(f"fleet: {args.devices} devices over {network.name}, "
          f"{tiers} x {args.capacity} slot(s), "
          f"queue limit {args.queue_limit}, "
          f"engine {summary['engine']}, "
          f"{args.arrival} arrivals, seed {args.seed}"
          + (f", {args.shards} shards/invocation"
             if getattr(args, "shards", 1) > 1 else "")
          + (" (faulty links)" if base_plan is not None else "")
          + (" (autoscaled)" if getattr(args, "autoscale", False)
             else ""))
    print(f"  makespan  : {summary['makespan_s'] * 1e3:9.2f} ms   "
          f"throughput "
          f"{summary['throughput_invocations_per_s']:.1f} invocations/s")
    print(f"  completion: p50 {summary['completion_s']['p50'] * 1e3:.2f} ms, "
          f"p95 {summary['completion_s']['p95'] * 1e3:.2f} ms")
    print(f"  offloading: {inv['offloaded']}/{inv['total']} offloaded, "
          f"{inv['declined']} declined, {inv['rejected']} rejected, "
          f"{inv['aborted']} aborted, "
          f"{inv['local_fallbacks']} ran locally "
          f"(decline rate {summary['decline_rate'] * 100:.1f}%)")
    print(f"  queueing  : {queue['total_delay_s'] * 1e3:.2f} ms total over "
          f"{queue['queued_admissions']} queued admissions "
          f"(mean {queue['mean_delay_s'] * 1e3:.2f} ms)")
    for server in summary["servers_detail"]:
        retired = "" if server["active"] else " (retired)"
        print(f"  server {server['id']}  : {server['tier']} "
              f"x{server['speed']:g}{retired}, utilization "
              f"{server['utilization'] * 100:5.1f}%, "
              f"{server['admitted']} admitted "
              f"({server['shard_admissions']} gang shards), "
              f"{server['rejected']} rejected, "
              f"queue delay {server['queue_delay_s'] * 1e3:.2f} ms, "
              f"max depth {server['max_queue_depth']}")
    scaling = summary.get("autoscale") or {}
    if scaling:
        print(f"  autoscale : {scaling['scale_ups']} scale-up(s), "
              f"{scaling['scale_downs']} scale-down(s), "
              f"{len(scaling['findings'])} SLO finding(s)")
    print(f"  energy    : {summary['energy_mj_total']:.1f} mJ across the "
          f"fleet, output "
          f"{'identical' if outputs_ok else 'DIFFERENT'} on all devices")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=False)
            fh.write("\n")
        print(f"wrote summary to {args.json}")
    if args.jsonl:
        count = write_jsonl(result.merged_events(), args.jsonl,
                            dropped=result.dropped_events)
        print(f"wrote {count} merged fleet events to {args.jsonl}")
    return 0 if outputs_ok else 1


def _fleet_source(args, faulty: bool) -> dict:
    """The report's ``source`` block for a live fleet run: every knob
    that shaped the simulation, nothing that varies between identical
    runs (no clocks, no paths)."""
    return {
        "kind": "fleet", "workload": args.workload,
        "network": args.network, "devices": args.devices,
        "servers": args.servers, "capacity": args.capacity,
        "queue_limit": args.queue_limit, "arrival": args.arrival,
        "spacing_s": args.spacing, "seed": args.seed, "faulty": faulty,
        "engine": args.engine, "cloud_servers": args.cloud_servers,
        "cloud_speed": args.cloud_speed, "deadline_s": args.deadline,
        "autoscale": args.autoscale, "shards": args.shards,
    }


def _gate(regressions, tolerance: float) -> int:
    """Print the baseline-gate verdict; non-zero exit on regression."""
    if not regressions:
        print(f"baseline gate: ok (tolerance {tolerance:g})")
        return 0
    print(f"baseline gate: {len(regressions)} regression(s) beyond "
          f"tolerance {tolerance:g}", file=sys.stderr)
    for r in regressions:
        rel = (f", {r['relative'] * 100:+.1f}%"
               if r.get("relative") is not None else "")
        print(f"  REGRESSION {r['metric']}: {r['baseline']:g} -> "
              f"{r['current']:g} (delta {r['delta']:+g}{rel})",
              file=sys.stderr)
    return 1


def _load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def cmd_report(args) -> int:
    """Analyze a trace — from a live seeded fleet run or a saved JSONL
    file — into the deterministic report, or diff two saved reports
    (docs/observability.md, "Report and baseline workflow")."""
    bench_pairs = args.bench or []
    # Pure diff mode: two saved reports, no simulation at all.
    if args.current:
        if not args.baseline:
            print("--current requires --baseline", file=sys.stderr)
            return 2
        regressions = diff_reports(_load_json(args.baseline),
                                   _load_json(args.current),
                                   args.tolerance)
        for old, new in bench_pairs:
            regressions += diff_bench(_load_json(old), _load_json(new),
                                      args.tolerance)
        return _gate(regressions, args.tolerance)

    if args.from_jsonl:
        events = load_jsonl(args.from_jsonl)
        meta = read_jsonl_meta(args.from_jsonl)
        report = build_report(
            events,
            source={"kind": "jsonl", "path": args.from_jsonl},
            dropped=meta.get("dropped", 0))
    else:
        network = _resolve_network(args.network)
        if network is None:
            return 2
        result, base_plan, _, _, _ = _run_fleet(args, network,
                                                enable_tracing=True)
        report = build_report(
            result.merged_events(),
            source=_fleet_source(args, base_plan is not None),
            dropped=result.dropped_events,
            servers=result.pool.servers_detail(result.makespan_s))

    for warning in report["warnings"]:
        print(f"warning: {warning}", file=sys.stderr)
    text = report_to_json(report)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote report to {args.json}")
    else:
        sys.stdout.write(text)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(report))
        print(f"wrote HTML report to {args.html}")

    regressions = []
    if args.baseline:
        regressions += diff_reports(_load_json(args.baseline), report,
                                    args.tolerance)
    for old, new in bench_pairs:
        regressions += diff_bench(_load_json(old), _load_json(new),
                                  args.tolerance)
    if args.baseline or bench_pairs:
        return _gate(regressions, args.tolerance)
    return 0


def cmd_table(args) -> int:
    renderers = {"1": render_table1, "2": render_table2,
                 "3": render_table3, "5": render_table5}
    if args.number == "4":
        print(render_table4())   # needs the full suite (several minutes)
        return 0
    renderer = renderers.get(args.number)
    if renderer is None:
        print("tables: 1, 2, 3, 4, 5", file=sys.stderr)
        return 2
    print(renderer())
    return 0


def cmd_figure(args) -> int:
    key = args.name.lower()
    if key == "6a":
        print(render_figure6(figure6a_execution_time(),
                             "Figure 6(a): normalized execution time"))
    elif key == "6b":
        print(render_figure6(figure6b_battery(),
                             "Figure 6(b): normalized battery"))
    elif key == "7":
        print(render_figure7())
    elif key == "8":
        print(render_figure8())
    else:
        print("figures: 6a, 6b, 7, 8", file=sys.stderr)
        return 2
    return 0


def _add_fault_args(p) -> None:
    """Fault-injection knobs shared by the run/trace/fleet subcommands
    (docs/fault-model.md).  All defaults keep the link perfect."""
    p.add_argument("--seed", type=int, default=0,
                   help="RNG root seed (deterministic; fleet runs fan "
                        "it out per device/component)")
    p.add_argument("--drop-rate", type=float, default=0.0,
                   metavar="P", help="per-message transient loss "
                   "probability (0..1)")
    p.add_argument("--jitter", type=float, default=0.0, metavar="SECONDS",
                   help="max uniform extra latency per delivery")
    p.add_argument("--disconnect-after", type=int, default=None,
                   metavar="N", help="hard-disconnect the link after N "
                   "delivered messages")
    p.add_argument("--disconnect-rate", type=float, default=0.0,
                   metavar="P", help="per-message hard-disconnect "
                   "probability (0..1)")
    p.add_argument("--reconnect-rate", type=float, default=0.0,
                   metavar="P", help="per-probe reconnect success "
                   "probability (0..1)")


def _positive_shards(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1, got {value}")
    return value


def _add_parallel_args(p) -> None:
    """Scatter/gather knobs shared by the run/trace/fleet/report
    subcommands (docs/parallel-offload.md).  The default keeps every
    invocation on the historical single-server path byte for byte."""
    p.add_argument("--shards", type=_positive_shards, default=1,
                   metavar="K",
                   help="split each shardable offload target across up "
                        "to K servers (default 1: classic single-server "
                        "invocations; non-shardable targets always stay "
                        "at 1)")


def _add_placement_args(p) -> None:
    """Placement-layer knobs shared by the fleet/report subcommands
    (docs/placement.md).  All defaults reproduce the historical
    homogeneous fifo pool byte for byte."""
    p.add_argument("--engine", default=DEFAULT_DECISION_ENGINE,
                   choices=list(DECISION_ENGINES),
                   help="placement decision engine (default "
                        f"{DEFAULT_DECISION_ENGINE!r}; see "
                        "docs/placement.md for the ranking each one "
                        "applies)")
    p.add_argument("--cloud-servers", type=int, default=0, metavar="N",
                   help="add N cloud-tier servers behind the cloud-wan "
                        "link (default 0: edge-only pool)")
    p.add_argument("--cloud-speed", type=float, default=2.0,
                   metavar="X", help="cloud server speed multiplier "
                   "(default 2.0: twice the edge reference server)")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="per-invocation relative deadline every device "
                        "attaches to its requests (drives the "
                        "deadline-aware engine)")
    p.add_argument("--autoscale", action="store_true",
                   help="let an SLO-driven autoscaler resize the pool "
                        "mid-run (event engine only)")
    p.add_argument("--autoscale-interval", type=float, default=0.005,
                   metavar="SECONDS",
                   help="autoscaler evaluation tick (default 5 ms)")
    p.add_argument("--autoscale-max", type=int, default=8, metavar="N",
                   help="pool size the autoscaler may grow to "
                        "(default 8)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Native Offloader (MICRO 2015) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(
        func=cmd_list)

    p = sub.add_parser("compile", help="compile one workload and show "
                                       "the offload plan")
    p.add_argument("workload")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="offload one workload end to end")
    p.add_argument("workload")
    p.add_argument("--network", default="802.11ac",
                   help=f"one of {sorted(NETWORKS)}")
    _add_parallel_args(p)
    _add_fault_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("trace", help="offload one workload with "
                                     "structured tracing and print the "
                                     "event timeline + metrics")
    p.add_argument("workload")
    p.add_argument("--network", default="802.11ac",
                   help=f"one of {sorted(NETWORKS)}")
    p.add_argument("--jsonl", metavar="PATH",
                   help="also write the trace as JSON Lines")
    p.add_argument("--chrome", metavar="PATH",
                   help="also write a chrome://tracing-compatible JSON")
    p.add_argument("--tail", type=int, default=None, metavar="N",
                   help="print only the last N timeline lines")
    p.add_argument("--categories", metavar="CAT[,CAT...]",
                   help="restrict the timeline to these event categories")
    p.add_argument("--capacity", type=int, default=262_144,
                   help="trace ring-buffer capacity (events)")
    _add_parallel_args(p)
    _add_fault_args(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("fleet", help="simulate many devices sharing a "
                                     "contended server pool")
    p.add_argument("--devices", type=int, default=20,
                   help="number of mobile devices (default 20)")
    p.add_argument("--servers", type=int, default=2,
                   help="number of offload servers (default 2)")
    p.add_argument("--capacity", type=int, default=1,
                   help="execution slots per server (default 1)")
    p.add_argument("--queue-limit", type=int, default=4, metavar="N",
                   help="max invocations waiting per server before "
                        "admission is refused (default 4)")
    p.add_argument("--arrival", default="uniform",
                   choices=["uniform", "poisson", "burst"],
                   help="device start pattern (default uniform)")
    p.add_argument("--spacing", type=float, default=0.002,
                   metavar="SECONDS",
                   help="mean gap between device starts (default 2 ms)")
    p.add_argument("--workload", default=FLEET_MICRO_WORKLOAD,
                   help=f"workload every device runs (default "
                        f"{FLEET_MICRO_WORKLOAD!r}, a built-in hot "
                        f"kernel; any `list` name works)")
    p.add_argument("--network", default="802.11ac",
                   help=f"one of {sorted(NETWORKS)}")
    p.add_argument("--scheduler", default=DEFAULT_ENGINE,
                   choices=list(SCHEDULER_ENGINES),
                   help="fleet execution engine (default "
                        f"{DEFAULT_ENGINE!r}): 'event' is the single-"
                        "threaded discrete-event core; 'lockstep' is "
                        "the deprecated one-thread-per-device "
                        "reference engine (byte-identical results, "
                        "unusable beyond tens of devices)")
    p.add_argument("--json", metavar="PATH",
                   help="write the fleet summary as JSON")
    p.add_argument("--jsonl", metavar="PATH",
                   help="write the merged fleet trace as JSON Lines")
    _add_parallel_args(p)
    _add_placement_args(p)
    _add_fault_args(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("report", help="analyze a trace (live seeded "
                                      "fleet run or saved JSONL) into a "
                                      "deterministic JSON/HTML report, "
                                      "with a baseline regression gate")
    p.add_argument("--from-jsonl", metavar="PATH",
                   help="analyze this saved JSONL trace instead of "
                        "running a fleet")
    p.add_argument("--json", metavar="PATH",
                   help="write the report JSON here (default: stdout)")
    p.add_argument("--html", metavar="PATH",
                   help="also write a self-contained HTML report")
    p.add_argument("--baseline", metavar="REPORT.json",
                   help="diff against this saved report; exit non-zero "
                        "on regression beyond --tolerance")
    p.add_argument("--current", metavar="REPORT.json",
                   help="with --baseline: diff two saved reports "
                        "without running anything")
    p.add_argument("--bench", nargs=2, action="append",
                   metavar=("OLD.json", "NEW.json"),
                   help="also gate a BENCH_*.json pair (repeatable)")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="relative regression tolerance (default 0.10)")
    p.add_argument("--devices", type=int, default=20,
                   help="fleet size for live runs (default 20)")
    p.add_argument("--servers", type=int, default=2,
                   help="servers for live runs (default 2)")
    p.add_argument("--capacity", type=int, default=1,
                   help="slots per server (default 1)")
    p.add_argument("--queue-limit", type=int, default=4, metavar="N",
                   help="per-server queue limit (default 4)")
    p.add_argument("--arrival", default="uniform",
                   choices=["uniform", "poisson", "burst"],
                   help="device start pattern (default uniform)")
    p.add_argument("--spacing", type=float, default=0.002,
                   metavar="SECONDS",
                   help="mean gap between device starts (default 2 ms)")
    p.add_argument("--workload", default=FLEET_MICRO_WORKLOAD,
                   help=f"workload for live runs (default "
                        f"{FLEET_MICRO_WORKLOAD!r})")
    p.add_argument("--network", default="802.11ac",
                   help=f"one of {sorted(NETWORKS)}")
    p.add_argument("--scheduler", default=DEFAULT_ENGINE,
                   choices=list(SCHEDULER_ENGINES),
                   help="fleet execution engine for live runs "
                        f"(default {DEFAULT_ENGINE!r}; 'lockstep' is "
                        "deprecated)")
    _add_parallel_args(p)
    _add_placement_args(p)
    _add_fault_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", help="1|2|3|4|5")
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("figure", help="regenerate a paper figure "
                                      "(runs the full suite)")
    p.add_argument("name", help="6a|6b|7|8")
    p.set_defaults(func=cmd_figure)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
