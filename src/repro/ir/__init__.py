"""Typed, LLVM-like intermediate representation.

The Native Offloader compiler operates at IR level so that one partitioning
pipeline serves any source language and any pair of target architectures
(paper, Section 2).
"""

from .types import (ArrayType, FloatType, FunctionType, IRType, IntType,
                    PointerType, StructType, VoidType, VOID, I1, I8, I16, I32,
                    I64, F32, F64, ptr, array)
from .values import (AggregateInit, Argument, BasicBlock, BytesInit, Constant,
                     Function, FunctionRefInit, GlobalRefInit, GlobalVariable,
                     Initializer, ScalarInit, UndefValue, Value, ZeroInit)
from .instructions import (Alloca, BinOp, Br, Call, Cast, Cmp, CondBr, Gep,
                           InlineAsm, Instruction, Load, Ret, Select, Store,
                           Switch, Syscall, Unreachable, BINOPS, CMP_PREDS,
                           CAST_OPS)
from .module import Module
from .builder import IRBuilder
from .verifier import VerificationError, verify_module
from .printer import print_function, print_module

__all__ = [
    "ArrayType", "FloatType", "FunctionType", "IRType", "IntType",
    "PointerType", "StructType", "VoidType", "VOID", "I1", "I8", "I16",
    "I32", "I64", "F32", "F64", "ptr", "array",
    "AggregateInit", "Argument", "BasicBlock", "BytesInit", "Constant",
    "Function", "FunctionRefInit", "GlobalRefInit", "GlobalVariable",
    "Initializer", "ScalarInit", "UndefValue", "Value", "ZeroInit",
    "Alloca", "BinOp", "Br", "Call", "Cast", "Cmp", "CondBr", "Gep",
    "InlineAsm", "Instruction", "Load", "Ret", "Select", "Store", "Switch",
    "Syscall", "Unreachable", "BINOPS", "CMP_PREDS", "CAST_OPS",
    "Module", "IRBuilder", "VerificationError", "verify_module",
    "print_function", "print_module",
]
