"""Type system for the Native Offloader intermediate representation.

The IR is a small, typed, LLVM-like representation.  Types are *abstract*:
they carry no size or alignment information by themselves.  Concrete sizes,
alignments and struct field offsets are assigned per target architecture by
the ABI layout engine in :mod:`repro.targets.abi`.  That split is the whole
point of the paper: the same IR type can have *different* memory layouts on
the mobile device (e.g. 32-bit ARM) and the server (e.g. x86-64), and the
memory-unification passes exist to reconcile them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class IRType:
    """Base class for all IR types."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_float or self.is_pointer

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def __repr__(self) -> str:
        return str(self)


class VoidType(IRType):
    def __str__(self) -> str:
        return "void"


class IntType(IRType):
    """An integer type of a given bit width.

    Signedness is a property of *operations* (sdiv/udiv, sext/zext), not of
    the type, exactly as in LLVM.  The frontend tracks C signedness and emits
    the appropriate operations.
    """

    def __init__(self, bits: int):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def _key(self):
        return (self.bits,)

    def __str__(self) -> str:
        return f"i{self.bits}"

    @property
    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1


class FloatType(IRType):
    """An IEEE-754 floating point type (32- or 64-bit)."""

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    def _key(self):
        return (self.bits,)

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(IRType):
    """A pointer to a pointee type.

    Pointer *width* is target-dependent (4 bytes on ARM32, 8 on x86-64);
    this is what the address-size conversion pass reconciles.
    """

    def __init__(self, pointee: IRType):
        self.pointee = pointee

    def _key(self):
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(IRType):
    def __init__(self, element: IRType, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def _key(self):
        return (self.element, self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructType(IRType):
    """A named struct with ordered, named fields.

    Structs are *nominal*: two structs are the same type iff they have the
    same name.  Field offsets are not stored here — they are computed by the
    per-target ABI engine, or overridden by the unified layout produced by
    the memory-layout realignment pass (Section 3.2 of the paper).
    """

    def __init__(self, name: str,
                 fields: Optional[Sequence[Tuple[str, IRType]]] = None):
        self.name = name
        self._fields: Optional[List[Tuple[str, IRType]]] = None
        if fields is not None:
            self.set_body(fields)

    def set_body(self, fields: Sequence[Tuple[str, IRType]]) -> None:
        names = [f[0] for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in struct {self.name}")
        self._fields = [(n, t) for n, t in fields]

    @property
    def is_opaque(self) -> bool:
        return self._fields is None

    @property
    def fields(self) -> List[Tuple[str, IRType]]:
        if self._fields is None:
            raise ValueError(f"struct {self.name} is opaque")
        return list(self._fields)

    @property
    def field_names(self) -> List[str]:
        return [n for n, _ in self.fields]

    @property
    def field_types(self) -> List[IRType]:
        return [t for _, t in self.fields]

    def field_index(self, name: str) -> int:
        for i, (n, _) in enumerate(self.fields):
            if n == name:
                return i
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def _key(self):
        return (self.name,)

    def __str__(self) -> str:
        return f"%{self.name}"


class FunctionType(IRType):
    def __init__(self, ret: IRType, params: Sequence[IRType],
                 variadic: bool = False):
        self.ret = ret
        self.params = list(params)
        self.variadic = variadic

    def _key(self):
        return (self.ret, tuple(self.params), self.variadic)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.ret} ({params})"


# Canonical singletons used throughout the code base.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def ptr(pointee: IRType) -> PointerType:
    """Shorthand for :class:`PointerType`."""
    return PointerType(pointee)


def array(element: IRType, count: int) -> ArrayType:
    """Shorthand for :class:`ArrayType`."""
    return ArrayType(element, count)
