"""Instruction set of the IR.

The set deliberately mirrors the LLVM subset the Native Offloader passes care
about: memory operations (the unification passes rewrite them), calls (direct
and through function pointers), address arithmetic that is layout-sensitive
(:class:`Gep`), and machine-specific markers (:class:`InlineAsm`,
:class:`Syscall`) that the function filter must detect.

Mutable local variables are modelled with ``alloca``/``load``/``store`` as in
clang -O0 output, so there is no phi instruction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .types import (ArrayType, FloatType, FunctionType, IRType, IntType,
                    PointerType, StructType, VOID, I1)
from .values import BasicBlock, Function, Value

# Integer / float binary opcodes.  Signedness is encoded in the opcode.
INT_BINOPS = {
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
}
FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv", "frem"}
BINOPS = INT_BINOPS | FLOAT_BINOPS

INT_PREDS = {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
FLOAT_PREDS = {"feq", "fne", "flt", "fle", "fgt", "fge"}
CMP_PREDS = INT_PREDS | FLOAT_PREDS

CAST_OPS = {
    "trunc", "zext", "sext",
    "fptrunc", "fpext", "fptosi", "fptoui", "sitofp", "uitofp",
    "ptrtoint", "inttoptr", "bitcast",
}


class Instruction(Value):
    """Base class.  An instruction is a value (its result)."""

    opcode = "<abstract>"
    is_terminator = False

    def __init__(self, type: IRType, operands: Sequence[Value], name: str = ""):
        super().__init__(type, name)
        self.operands: List[Value] = list(operands)
        self.parent: Optional[BasicBlock] = None

    def targets(self) -> List[BasicBlock]:
        """Successor blocks (terminators only)."""
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        self.operands = [new if op is old else op for op in self.operands]

    @property
    def function(self) -> Optional[Function]:
        return self.parent.parent if self.parent is not None else None


class Alloca(Instruction):
    """Stack allocation of one object of ``allocated_type``."""

    opcode = "alloca"

    def __init__(self, allocated_type: IRType, name: str = ""):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type


class Load(Instruction):
    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        if not pointer.type.is_pointer:
            raise TypeError(f"load from non-pointer {pointer.type}")
        super().__init__(pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer:
            raise TypeError(f"store to non-pointer {pointer.type}")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class Gep(Instruction):
    """``getelementptr``: layout-sensitive address arithmetic.

    ``base`` points at a value of ``source_type``; ``indices`` follow LLVM
    semantics (first index scales by whole objects, struct indices must be
    integer constants).  Byte offsets are *not* computed here — they depend
    on the active memory layout of the executing machine, which is exactly
    what memory-layout realignment manipulates.
    """

    opcode = "gep"

    def __init__(self, base: Value, indices: Sequence[Value], name: str = ""):
        if not base.type.is_pointer:
            raise TypeError("gep base must be a pointer")
        result = base.type.pointee
        for idx in indices[1:]:
            if isinstance(result, StructType):
                from .values import Constant
                if not isinstance(idx, Constant):
                    raise TypeError("struct gep index must be constant")
                result = result.field_types[int(idx.value)]
            elif isinstance(result, ArrayType):
                result = result.element
            else:
                raise TypeError(f"cannot index into {result}")
        super().__init__(PointerType(result), [base, *indices], name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]


class BinOp(Instruction):
    opcode = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINOPS:
            raise ValueError(f"unknown binary opcode {op}")
        if lhs.type != rhs.type:
            raise TypeError(f"binop operand type mismatch: {lhs.type} vs {rhs.type}")
        if op in FLOAT_BINOPS and not lhs.type.is_float:
            raise TypeError(f"{op} requires float operands")
        if op in INT_BINOPS and not lhs.type.is_integer:
            raise TypeError(f"{op} requires integer operands")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cmp(Instruction):
    opcode = "cmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        if pred not in CMP_PREDS:
            raise ValueError(f"unknown comparison predicate {pred}")
        if lhs.type != rhs.type:
            raise TypeError("cmp operand type mismatch")
        super().__init__(I1, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cast(Instruction):
    opcode = "cast"

    def __init__(self, op: str, value: Value, to_type: IRType, name: str = ""):
        if op not in CAST_OPS:
            raise ValueError(f"unknown cast opcode {op}")
        super().__init__(to_type, [value], name)
        self.op = op

    @property
    def value(self) -> Value:
        return self.operands[0]


class Select(Instruction):
    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value,
                 name: str = ""):
        if if_true.type != if_false.type:
            raise TypeError("select arm type mismatch")
        super().__init__(if_true.type, [cond, if_true, if_false], name)

    @property
    def cond(self) -> Value:
        return self.operands[0]


class Call(Instruction):
    """Direct (callee is a :class:`Function`) or indirect (callee is a
    function-pointer value) call.  Indirect calls are what the function
    pointer mapping optimization (Section 3.4) rewrites."""

    opcode = "call"

    def __init__(self, callee: Value, args: Sequence[Value], name: str = ""):
        ftype = callee.type.pointee if callee.type.is_pointer else callee.type
        if not isinstance(ftype, FunctionType):
            raise TypeError(f"call to non-function type {callee.type}")
        if not ftype.variadic and len(args) != len(ftype.params):
            raise TypeError(
                f"call to {callee.short()} with {len(args)} args, "
                f"expected {len(ftype.params)}")
        super().__init__(ftype.ret, [callee, *args], name)
        self.ftype = ftype

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return self.operands[1:]

    @property
    def is_indirect(self) -> bool:
        return not isinstance(self.callee, Function)

    @property
    def called_function(self) -> Optional[Function]:
        callee = self.callee
        return callee if isinstance(callee, Function) else None


class InlineAsm(Instruction):
    """Inline assembly marker — always machine specific (Section 3.1)."""

    opcode = "asm"

    def __init__(self, text: str, operands: Sequence[Value] = ()):
        super().__init__(VOID, list(operands))
        self.text = text


class Syscall(Instruction):
    """Direct system call marker — always machine specific (Section 3.1)."""

    opcode = "syscall"

    def __init__(self, number: int, operands: Sequence[Value] = ()):
        from .types import I64
        super().__init__(I64, list(operands))
        self.number = number


class Br(Instruction):
    opcode = "br"
    is_terminator = True

    def __init__(self, target: BasicBlock):
        super().__init__(VOID, [])
        self.target = target

    def targets(self) -> List[BasicBlock]:
        return [self.target]


class CondBr(Instruction):
    opcode = "condbr"
    is_terminator = True

    def __init__(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock):
        if cond.type != I1:
            raise TypeError("condbr condition must be i1")
        super().__init__(VOID, [cond])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def cond(self) -> Value:
        return self.operands[0]

    def targets(self) -> List[BasicBlock]:
        return [self.if_true, self.if_false]


class Switch(Instruction):
    """Multi-way branch; used by the server partition's dispatch loop."""

    opcode = "switch"
    is_terminator = True

    def __init__(self, value: Value, default: BasicBlock,
                 cases: Sequence[tuple] = ()):
        if not value.type.is_integer:
            raise TypeError("switch value must be an integer")
        super().__init__(VOID, [value])
        self.default = default
        self.cases: List[tuple] = list(cases)  # [(int, BasicBlock)]

    @property
    def value(self) -> Value:
        return self.operands[0]

    def add_case(self, const: int, block: BasicBlock) -> None:
        self.cases.append((const, block))

    def targets(self) -> List[BasicBlock]:
        return [self.default] + [b for _, b in self.cases]


class Ret(Instruction):
    opcode = "ret"
    is_terminator = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Unreachable(Instruction):
    opcode = "unreachable"
    is_terminator = True

    def __init__(self):
        super().__init__(VOID, [])
