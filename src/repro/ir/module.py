"""IR module: the unit the Native Offloader compiler transforms.

A module owns struct types, global variables and functions.  The offload
compiler clones a module into a mobile partition and a server partition
(Section 3.3), so modules support deep cloning.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterator, List, Optional

from .types import FunctionType, IRType, StructType
from .values import Function, GlobalVariable, Initializer


class Module:
    def __init__(self, name: str = "module"):
        self.name = name
        self.structs: Dict[str, StructType] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}
        # Free-form metadata: source LoC, profile data references, the
        # unified layout map installed by memory-layout realignment, etc.
        self.metadata: Dict[str, object] = {}

    # -- structs ------------------------------------------------------------
    def add_struct(self, struct: StructType) -> StructType:
        if struct.name in self.structs:
            raise KeyError(f"duplicate struct {struct.name}")
        self.structs[struct.name] = struct
        return struct

    def struct(self, name: str) -> StructType:
        return self.structs[name]

    # -- globals ------------------------------------------------------------
    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals:
            raise KeyError(f"duplicate global {gv.name}")
        self.globals[gv.name] = gv
        return gv

    def global_(self, name: str) -> GlobalVariable:
        return self.globals[name]

    def remove_global(self, name: str) -> None:
        del self.globals[name]

    # -- functions ----------------------------------------------------------
    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise KeyError(f"duplicate function {fn.name}")
        fn.module = self
        self.functions[fn.name] = fn
        return fn

    def function(self, name: str) -> Function:
        return self.functions[name]

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def remove_function(self, name: str) -> None:
        self.functions.pop(name).module = None

    def declare_function(self, name: str, ftype: FunctionType) -> Function:
        """Get-or-declare an external function."""
        fn = self.functions.get(name)
        if fn is None:
            fn = Function(name, ftype)
            self.add_function(fn)
        return fn

    def defined_functions(self) -> Iterator[Function]:
        return (f for f in self.functions.values() if f.is_definition)

    def external_functions(self) -> Iterator[Function]:
        return (f for f in self.functions.values() if not f.is_definition)

    def clone(self, name: Optional[str] = None) -> "Module":
        """Deep-copy the module (used by the partitioner to derive the
        mobile and server variants from the unified IR)."""
        cloned = copy.deepcopy(self)
        if name is not None:
            cloned.name = name
        return cloned

    def __repr__(self) -> str:
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals, {len(self.structs)} structs>")
