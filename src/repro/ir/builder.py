"""Convenience builder for constructing IR.

Used by the mini-C code generator, the offload compiler (to synthesize
communication stubs, the server dispatch loop, translation thunks) and by
tests that build IR by hand.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from . import instructions as inst
from .types import (FunctionType, IRType, IntType, PointerType, I1, I8, I32,
                    I64, F64)
from .values import BasicBlock, Constant, Function, Value


class IRBuilder:
    """Appends instructions to a current insertion block."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self._counter = 0

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def _name(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}{self._counter}"

    def _emit(self, instruction: inst.Instruction) -> inst.Instruction:
        if self.block is None:
            raise RuntimeError("builder has no insertion block")
        if self.block.terminator is not None:
            raise RuntimeError(
                f"block {self.block.name} already has a terminator")
        self.block.append(instruction)
        return instruction

    # -- constants ----------------------------------------------------------
    def const(self, type: IRType, value: Union[int, float]) -> Constant:
        return Constant(type, value)

    def i32(self, value: int) -> Constant:
        return Constant(I32, value)

    def i64(self, value: int) -> Constant:
        return Constant(I64, value)

    def f64(self, value: float) -> Constant:
        return Constant(F64, value)

    def true(self) -> Constant:
        return Constant(I1, 1)

    def false(self) -> Constant:
        return Constant(I1, 0)

    # -- memory ---------------------------------------------------------
    def alloca(self, type: IRType, name: str = "") -> inst.Alloca:
        return self._emit(inst.Alloca(type, name or self._name("ptr")))

    def load(self, pointer: Value, name: str = "") -> inst.Load:
        return self._emit(inst.Load(pointer, name or self._name("val")))

    def store(self, value: Value, pointer: Value) -> inst.Store:
        return self._emit(inst.Store(value, pointer))

    def gep(self, base: Value, indices: Sequence[Value],
            name: str = "") -> inst.Gep:
        return self._emit(inst.Gep(base, indices, name or self._name("addr")))

    def struct_gep(self, base: Value, field_index: int,
                   name: str = "") -> inst.Gep:
        """GEP to a struct field: gep base, [0, field_index]."""
        return self.gep(base, [self.i32(0), self.i32(field_index)], name)

    def index(self, base: Value, idx: Value, name: str = "") -> inst.Gep:
        """Pointer arithmetic: &base[idx] on a pointer-to-element."""
        return self.gep(base, [idx], name)

    # -- arithmetic -----------------------------------------------------
    def binop(self, op: str, lhs: Value, rhs: Value,
              name: str = "") -> inst.BinOp:
        return self._emit(inst.BinOp(op, lhs, rhs, name or self._name("tmp")))

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs, rhs, name=""):
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs, rhs, name=""):
        return self.binop("srem", lhs, rhs, name)

    def fadd(self, lhs, rhs, name=""):
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs, rhs, name=""):
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs, rhs, name=""):
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs, rhs, name=""):
        return self.binop("fdiv", lhs, rhs, name)

    def cmp(self, pred: str, lhs: Value, rhs: Value,
            name: str = "") -> inst.Cmp:
        return self._emit(inst.Cmp(pred, lhs, rhs, name or self._name("cond")))

    def cast(self, op: str, value: Value, to_type: IRType,
             name: str = "") -> inst.Cast:
        return self._emit(
            inst.Cast(op, value, to_type, name or self._name("cast")))

    def zext(self, value, to_type, name=""):
        return self.cast("zext", value, to_type, name)

    def sext(self, value, to_type, name=""):
        return self.cast("sext", value, to_type, name)

    def trunc(self, value, to_type, name=""):
        return self.cast("trunc", value, to_type, name)

    def bitcast(self, value, to_type, name=""):
        return self.cast("bitcast", value, to_type, name)

    def sitofp(self, value, to_type, name=""):
        return self.cast("sitofp", value, to_type, name)

    def fptosi(self, value, to_type, name=""):
        return self.cast("fptosi", value, to_type, name)

    def select(self, cond: Value, if_true: Value, if_false: Value,
               name: str = "") -> inst.Select:
        return self._emit(
            inst.Select(cond, if_true, if_false, name or self._name("sel")))

    # -- calls ----------------------------------------------------------
    def call(self, callee: Value, args: Sequence[Value] = (),
             name: str = "") -> inst.Call:
        hint = name
        if not hint:
            ftype = (callee.type.pointee
                     if callee.type.is_pointer else callee.type)
            hint = "" if ftype.ret.is_void else self._name("ret")
        return self._emit(inst.Call(callee, list(args), hint))

    def asm(self, text: str, operands: Sequence[Value] = ()) -> inst.InlineAsm:
        return self._emit(inst.InlineAsm(text, operands))

    def syscall(self, number: int,
                operands: Sequence[Value] = ()) -> inst.Syscall:
        return self._emit(inst.Syscall(number, operands))

    # -- control flow ----------------------------------------------------
    def br(self, target: BasicBlock) -> inst.Br:
        return self._emit(inst.Br(target))

    def condbr(self, cond: Value, if_true: BasicBlock,
               if_false: BasicBlock) -> inst.CondBr:
        return self._emit(inst.CondBr(cond, if_true, if_false))

    def switch(self, value: Value, default: BasicBlock) -> inst.Switch:
        return self._emit(inst.Switch(value, default))

    def ret(self, value: Optional[Value] = None) -> inst.Ret:
        return self._emit(inst.Ret(value))

    def unreachable(self) -> inst.Unreachable:
        return self._emit(inst.Unreachable())
