"""Structural and type verification for IR modules.

The offload compiler runs the verifier after every transformation pass, so a
pass that produces malformed IR fails loudly instead of miscomputing in the
simulated machines.
"""

from __future__ import annotations

from typing import List

from . import instructions as inst
from .module import Module
from .types import FunctionType, IntType, VOID
from .values import (Argument, BasicBlock, Constant, Function,
                     GlobalVariable, UndefValue, Value)


class VerificationError(Exception):
    """Raised when a module fails verification."""

    def __init__(self, errors: List[str]):
        super().__init__("; ".join(errors))
        self.errors = errors


def verify_module(module: Module) -> None:
    """Raise :class:`VerificationError` if the module is malformed."""
    errors: List[str] = []
    for fn in module.functions.values():
        if fn.is_definition:
            _verify_function(module, fn, errors)
    if errors:
        raise VerificationError(errors)


def _verify_function(module: Module, fn: Function, errors: List[str]) -> None:
    where = f"function {fn.name}"
    if not fn.blocks:
        errors.append(f"{where}: definition with no blocks")
        return

    block_set = set(id(b) for b in fn.blocks)
    defined: set = set(id(a) for a in fn.args)

    # First pass: collect every instruction result so forward references in
    # straight-line order are flagged, but cross-block use is allowed (the
    # interpreter evaluates in execution order; clang -O0 style IR only
    # reads temporaries after definition on every path).
    for block in fn.blocks:
        for instruction in block.instructions:
            defined.add(id(instruction))

    seen_names = set()
    for block in fn.blocks:
        if block.name in seen_names:
            errors.append(f"{where}: duplicate block name {block.name}")
        seen_names.add(block.name)
        if block.terminator is None:
            errors.append(f"{where}: block {block.name} has no terminator")
        for i, instruction in enumerate(block.instructions):
            if instruction.is_terminator and i != len(block.instructions) - 1:
                errors.append(
                    f"{where}: terminator mid-block in {block.name}")
            _verify_operands(module, fn, instruction, defined, errors)
            for target in instruction.targets():
                if id(target) not in block_set:
                    errors.append(
                        f"{where}: branch to foreign block {target.name}")
            if isinstance(instruction, inst.Ret):
                _verify_ret(fn, instruction, errors)


def _verify_ret(fn: Function, ret: inst.Ret, errors: List[str]) -> None:
    expected = fn.ftype.ret
    if expected.is_void:
        if ret.value is not None:
            errors.append(f"{fn.name}: ret with value in void function")
    elif ret.value is None:
        errors.append(f"{fn.name}: bare ret in non-void function")
    elif ret.value.type != expected:
        errors.append(
            f"{fn.name}: ret type {ret.value.type}, expected {expected}")


def _verify_operands(module: Module, fn: Function,
                     instruction: inst.Instruction, defined: set,
                     errors: List[str]) -> None:
    for op in instruction.operands:
        if op is None:
            errors.append(f"{fn.name}: None operand in {instruction.opcode}")
            continue
        if isinstance(op, (Constant, UndefValue)):
            continue
        if isinstance(op, GlobalVariable):
            if module.globals.get(op.name) is not op:
                errors.append(
                    f"{fn.name}: global {op.name} not owned by module")
            continue
        if isinstance(op, Function):
            if module.functions.get(op.name) is not op:
                errors.append(
                    f"{fn.name}: callee {op.name} not owned by module")
            continue
        if isinstance(op, (Argument, inst.Instruction)):
            if id(op) not in defined:
                errors.append(
                    f"{fn.name}: operand {op.short()} defined elsewhere")
            continue
        if isinstance(op, BasicBlock):
            continue
        errors.append(
            f"{fn.name}: unexpected operand kind {type(op).__name__}")
