"""Textual (LLVM-flavoured) rendering of IR modules, for debugging and for
golden tests of the compiler passes."""

from __future__ import annotations

from typing import Dict

from . import instructions as inst
from .module import Module
from .values import (BasicBlock, Constant, Function, GlobalVariable,
                     Initializer, AggregateInit, BytesInit, FunctionRefInit,
                     GlobalRefInit, ScalarInit, UndefValue, Value, ZeroInit)


def print_module(module: Module) -> str:
    lines = [f"; module {module.name}"]
    for struct in module.structs.values():
        if struct.is_opaque:
            lines.append(f"%{struct.name} = type opaque")
        else:
            body = ", ".join(f"{t} {n}" for n, t in struct.fields)
            lines.append(f"%{struct.name} = type {{ {body} }}")
    if module.structs:
        lines.append("")
    for gv in module.globals.values():
        kind = "constant" if gv.constant else "global"
        uva = " uva" if gv.uva_allocated else ""
        lines.append(f"@{gv.name} = {kind}{uva} {gv.value_type} "
                     f"{_init_str(gv.initializer)}")
    if module.globals:
        lines.append("")
    for fn in module.functions.values():
        lines.append(print_function(fn))
    return "\n".join(lines)


def _init_str(init: Initializer) -> str:
    if isinstance(init, ZeroInit):
        return "zeroinitializer"
    if isinstance(init, ScalarInit):
        return str(init.value)
    if isinstance(init, BytesInit):
        return f"c{init.data!r}"
    if isinstance(init, AggregateInit):
        return "[" + ", ".join(_init_str(e) for e in init.elements) + "]"
    if isinstance(init, FunctionRefInit):
        return f"@{init.function_name}"
    if isinstance(init, GlobalRefInit):
        return f"@{init.global_name}+{init.offset}"
    return repr(init)


def print_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    if fn.ftype.variadic:
        params = params + ", ..." if params else "..."
    header = f"{fn.ftype.ret} @{fn.name}({params})"
    if not fn.is_definition:
        return f"declare {header}"
    names = _NameAssigner(fn)
    lines = [f"define {header} {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for instruction in block.instructions:
            lines.append("  " + _inst_str(instruction, names))
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


class _NameAssigner:
    """Gives every instruction result a unique local name for printing."""

    def __init__(self, fn: Function):
        self._names: Dict[int, str] = {}
        used = set()
        for arg in fn.args:
            self._names[id(arg)] = f"%{arg.name}"
            used.add(arg.name)
        counter = 0
        for instruction in fn.instructions():
            if instruction.type.is_void:
                continue
            name = instruction.name or f"t{counter}"
            while name in used:
                counter += 1
                name = f"t{counter}"
            used.add(name)
            self._names[id(instruction)] = f"%{name}"

    def of(self, value: Value) -> str:
        if isinstance(value, (Constant, UndefValue, GlobalVariable, Function)):
            return value.short()
        if isinstance(value, BasicBlock):
            return f"label %{value.name}"
        return self._names.get(id(value), value.short())


def _inst_str(instruction: inst.Instruction, names: _NameAssigner) -> str:
    result = ""
    if not instruction.type.is_void:
        result = f"{names.of(instruction)} = "

    if isinstance(instruction, inst.Alloca):
        return f"{result}alloca {instruction.allocated_type}"
    if isinstance(instruction, inst.Load):
        return (f"{result}load {instruction.type}, "
                f"{names.of(instruction.pointer)}")
    if isinstance(instruction, inst.Store):
        return (f"store {instruction.value.type} "
                f"{names.of(instruction.value)}, "
                f"{names.of(instruction.pointer)}")
    if isinstance(instruction, inst.Gep):
        idx = ", ".join(names.of(i) for i in instruction.indices)
        return f"{result}gep {names.of(instruction.base)}, [{idx}]"
    if isinstance(instruction, inst.BinOp):
        return (f"{result}{instruction.op} {instruction.type} "
                f"{names.of(instruction.lhs)}, {names.of(instruction.rhs)}")
    if isinstance(instruction, inst.Cmp):
        return (f"{result}cmp {instruction.pred} {instruction.lhs.type} "
                f"{names.of(instruction.lhs)}, {names.of(instruction.rhs)}")
    if isinstance(instruction, inst.Cast):
        return (f"{result}{instruction.op} {instruction.value.type} "
                f"{names.of(instruction.value)} to {instruction.type}")
    if isinstance(instruction, inst.Select):
        cond, t, f = instruction.operands
        return (f"{result}select {names.of(cond)}, {names.of(t)}, "
                f"{names.of(f)}")
    if isinstance(instruction, inst.Call):
        args = ", ".join(f"{a.type} {names.of(a)}" for a in instruction.args)
        marker = "call indirect" if instruction.is_indirect else "call"
        return (f"{result}{marker} {instruction.ftype.ret} "
                f"{names.of(instruction.callee)}({args})")
    if isinstance(instruction, inst.InlineAsm):
        return f'asm "{instruction.text}"'
    if isinstance(instruction, inst.Syscall):
        return f"{result}syscall {instruction.number}"
    if isinstance(instruction, inst.Br):
        return f"br label %{instruction.target.name}"
    if isinstance(instruction, inst.CondBr):
        return (f"br {names.of(instruction.cond)}, "
                f"label %{instruction.if_true.name}, "
                f"label %{instruction.if_false.name}")
    if isinstance(instruction, inst.Switch):
        cases = ", ".join(f"{c} -> %{b.name}" for c, b in instruction.cases)
        return (f"switch {names.of(instruction.value)}, "
                f"default %{instruction.default.name} [{cases}]")
    if isinstance(instruction, inst.Ret):
        if instruction.value is None:
            return "ret void"
        return (f"ret {instruction.value.type} "
                f"{names.of(instruction.value)}")
    if isinstance(instruction, inst.Unreachable):
        return "unreachable"
    return f"{result}{instruction.opcode} <?>"
