"""Values of the IR: constants, globals, functions, blocks, arguments.

Every value has a type.  Instructions (which are also values) live in
:mod:`repro.ir.instructions`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Union

from .types import (ArrayType, FunctionType, IRType, IntType, PointerType,
                    StructType, VoidType)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .instructions import Instruction
    from .module import Module


class Value:
    """Base class for everything that can be an operand."""

    def __init__(self, type: IRType, name: str = ""):
        self.type = type
        self.name = name

    def short(self) -> str:
        """Compact operand rendering used by the printer."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()} : {self.type}>"


class Constant(Value):
    """A scalar constant (integer, float, or null pointer)."""

    def __init__(self, type: IRType, value: Union[int, float]):
        super().__init__(type)
        if isinstance(type, IntType):
            value = int(value) & type.max_unsigned
        elif type.is_float:
            value = float(value)
        elif type.is_pointer:
            value = int(value)
        else:
            raise TypeError(f"constant of non-scalar type {type}")
        self.value = value

    def short(self) -> str:
        return str(self.value)

    @staticmethod
    def null(ptr_type: PointerType) -> "Constant":
        return Constant(ptr_type, 0)

    @staticmethod
    def bool_(value: bool) -> "Constant":
        from .types import I1
        return Constant(I1, 1 if value else 0)


class UndefValue(Value):
    """An undefined value of a given type."""

    def short(self) -> str:
        return "undef"


# ---------------------------------------------------------------------------
# Global initializers
# ---------------------------------------------------------------------------

class Initializer:
    """Base class for static initializers of global variables."""


class ZeroInit(Initializer):
    """Zero-initialized storage (.bss)."""

    def __repr__(self) -> str:
        return "zeroinit"


class ScalarInit(Initializer):
    def __init__(self, value: Union[int, float]):
        self.value = value

    def __repr__(self) -> str:
        return f"scalar({self.value})"


class BytesInit(Initializer):
    """Raw bytes, used for string literals."""

    def __init__(self, data: bytes):
        self.data = bytes(data)

    def __repr__(self) -> str:
        return f"bytes({self.data!r})"


class AggregateInit(Initializer):
    """Element-wise initializer for arrays and structs."""

    def __init__(self, elements: Iterable[Initializer]):
        self.elements = list(elements)

    def __repr__(self) -> str:
        return f"agg({self.elements})"


class FunctionRefInit(Initializer):
    """Initializer holding the address of a function (function pointers in
    global tables, e.g. ``evals[7] = {Pawn, ..., King}`` in Figure 3)."""

    def __init__(self, function_name: str):
        self.function_name = function_name

    def __repr__(self) -> str:
        return f"&{self.function_name}"


class GlobalRefInit(Initializer):
    """Initializer holding the address of another global."""

    def __init__(self, global_name: str, offset: int = 0):
        self.global_name = global_name
        self.offset = offset

    def __repr__(self) -> str:
        return f"&@{self.global_name}+{self.offset}"


class GlobalVariable(Value):
    """A module-level variable.

    ``self.type`` is a *pointer* to the value type, mirroring LLVM: using a
    global as an operand yields its address.  The back end (the simulated
    machine loader) assigns each global a concrete address — a *different*
    one on each architecture, which is exactly why the referenced-global
    reallocation pass exists.
    """

    def __init__(self, name: str, value_type: IRType,
                 initializer: Optional[Initializer] = None,
                 constant: bool = False):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer if initializer is not None else ZeroInit()
        self.constant = constant
        # Set by the referenced-global reallocation pass (Section 3.2):
        # when True the loader places this global on the UVA heap.
        self.uva_allocated = False

    def short(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    def __init__(self, name: str, type: IRType, index: int):
        super().__init__(type, name)
        self.index = index


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        from .types import VOID
        super().__init__(VOID, name)
        self.parent = parent
        self.instructions: List["Instruction"] = []

    def append(self, inst: "Instruction") -> "Instruction":
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: "Instruction") -> "Instruction":
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst: "Instruction") -> None:
        self.instructions.remove(inst)
        inst.parent = None

    @property
    def terminator(self) -> Optional["Instruction"]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return list(term.targets()) if term is not None else []

    def short(self) -> str:
        return f"%{self.name}"

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


class Function(Value):
    """A function: arguments plus a list of basic blocks.

    External functions (libc, the Native Offloader runtime API) have no
    blocks; the simulated machine binds them to builtin implementations.
    """

    def __init__(self, name: str, ftype: FunctionType,
                 arg_names: Optional[List[str]] = None):
        super().__init__(PointerType(ftype), name)
        self.ftype = ftype
        arg_names = arg_names or [f"arg{i}" for i in range(len(ftype.params))]
        if len(arg_names) != len(ftype.params):
            raise ValueError("argument name count mismatch")
        self.args = [Argument(n, t, i)
                     for i, (n, t) in enumerate(zip(arg_names, ftype.params))]
        self.blocks: List[BasicBlock] = []
        self.is_external = True
        self.module: Optional["Module"] = None
        # Annotations consumed by the offload compiler.
        self.attributes: set = set()
        # Source-level line count, recorded by the frontend for Table 4.
        self.source_lines = 0

    @property
    def is_definition(self) -> bool:
        return bool(self.blocks)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no body")
        return self.blocks[0]

    def add_block(self, name: str, before: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(name, parent=self)
        if before is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(before), block)
        self.is_external = False
        return block

    def block_named(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name} in {self.name}")

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def short(self) -> str:
        return f"@{self.name}"

    def __iter__(self):
        return iter(self.blocks)
