"""AST node definitions for the mini-C frontend."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Type syntax (resolved to concrete C types by the code generator)
# ---------------------------------------------------------------------------

@dataclass
class TypeSpec:
    """A parsed type: base specifier plus declarator-derived wrapping."""

    base: str                      # 'int', 'double', 'struct Foo', typedef name, ...
    pointers: int = 0              # number of '*'
    array_dims: List[Optional[int]] = field(default_factory=list)
    func_params: Optional[List["ParamDecl"]] = None  # function (pointer) type
    func_variadic: bool = False
    func_pointers: int = 0         # pointer depth of a function declarator

    def __str__(self) -> str:
        s = self.base + "*" * self.pointers
        for dim in self.array_dims:
            s += f"[{dim if dim is not None else ''}]"
        if self.func_params is not None:
            s = f"{s} (*)(...)"
        return s


@dataclass
class ParamDecl:
    type: TypeSpec
    name: str
    line: int = 0


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int
    line: int = 0


@dataclass
class FloatLit(Expr):
    value: float
    line: int = 0


@dataclass
class CharLit(Expr):
    value: int
    line: int = 0


@dataclass
class StrLit(Expr):
    value: str
    line: int = 0


@dataclass
class Ident(Expr):
    name: str
    line: int = 0


@dataclass
class Unary(Expr):
    op: str                 # '-', '+', '!', '~', '*', '&', '++', '--'
    operand: Expr
    postfix: bool = False   # for ++/--
    line: int = 0


@dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass
class Assign(Expr):
    op: str                 # '=', '+=', ...
    target: Expr
    value: Expr
    line: int = 0


@dataclass
class Conditional(Expr):
    cond: Expr
    if_true: Expr
    if_false: Expr
    line: int = 0


@dataclass
class CallExpr(Expr):
    callee: Expr
    args: List[Expr]
    line: int = 0


@dataclass
class Index(Expr):
    base: Expr
    index: Expr
    line: int = 0


@dataclass
class Member(Expr):
    base: Expr
    name: str
    arrow: bool
    line: int = 0


@dataclass
class CastExpr(Expr):
    type: TypeSpec
    operand: Expr
    line: int = 0


@dataclass
class SizeofExpr(Expr):
    type: Optional[TypeSpec]
    operand: Optional[Expr]
    line: int = 0


@dataclass
class InitList(Expr):
    """Braced initializer list (globals and local aggregates)."""
    elements: List[Expr]
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr]
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    type: TypeSpec
    name: str
    init: Optional[Expr]
    line: int = 0


@dataclass
class Block(Stmt):
    statements: List[Stmt]
    line: int = 0


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt]
    line: int = 0


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt
    line: int = 0


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr
    line: int = 0


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt
    line: int = 0


@dataclass
class Return(Stmt):
    value: Optional[Expr]
    line: int = 0


@dataclass
class Break(Stmt):
    line: int = 0


@dataclass
class Continue(Stmt):
    line: int = 0


@dataclass
class SwitchStmt(Stmt):
    value: Expr
    cases: List[Tuple[Optional[int], List[Stmt]]]  # None = default
    line: int = 0


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------

class TopLevel:
    line: int = 0


@dataclass
class StructDef(TopLevel):
    name: str
    fields: List[ParamDecl]
    line: int = 0


@dataclass
class TypedefDecl(TopLevel):
    name: str
    type: TypeSpec
    line: int = 0


@dataclass
class EnumDef(TopLevel):
    name: Optional[str]
    members: List[Tuple[str, int]]
    line: int = 0


@dataclass
class GlobalDecl(TopLevel):
    type: TypeSpec
    name: str
    init: Optional[Expr]
    is_extern: bool = False
    line: int = 0


@dataclass
class FunctionDef(TopLevel):
    ret_type: TypeSpec
    name: str
    params: List[ParamDecl]
    variadic: bool
    body: Optional[Block]          # None for prototypes
    line: int = 0
    end_line: int = 0


@dataclass
class TranslationUnit:
    decls: List[TopLevel]
    source_lines: int = 0
