"""C-level type model for the mini-C frontend.

IR types carry no signedness, so the frontend tracks C types separately and
lowers them to IR types plus correctly-signed operations (sdiv vs udiv,
sext vs zext), mirroring how clang lowers C to LLVM IR.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir import types as irt


class CType:
    """Base class of the C type lattice."""

    ir: irt.IRType

    @property
    def is_integer(self) -> bool:
        return isinstance(self, CInt)

    @property
    def is_float(self) -> bool:
        return isinstance(self, CFloat)

    @property
    def is_arith(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, CPointer)

    @property
    def is_array(self) -> bool:
        return isinstance(self, CArray)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, CStruct)

    @property
    def is_void(self) -> bool:
        return isinstance(self, CVoid)

    @property
    def is_function(self) -> bool:
        return isinstance(self, CFunc)

    @property
    def is_scalar(self) -> bool:
        return self.is_arith or self.is_pointer

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()

    def __repr__(self):
        return str(self)


class CVoid(CType):
    def __init__(self):
        self.ir = irt.VOID

    def __str__(self):
        return "void"


class CInt(CType):
    def __init__(self, bits: int, signed: bool):
        self.bits = bits
        self.signed = signed
        self.ir = irt.IntType(bits)

    def _key(self):
        return (self.bits, self.signed)

    def __str__(self):
        return f"{'' if self.signed else 'u'}int{self.bits}"

    @property
    def rank(self) -> int:
        return self.bits


class CFloat(CType):
    def __init__(self, bits: int):
        self.bits = bits
        self.ir = irt.FloatType(bits)

    def _key(self):
        return (self.bits,)

    def __str__(self):
        return f"float{self.bits}"


class CPointer(CType):
    def __init__(self, pointee: CType):
        self.pointee = pointee
        self.ir = irt.PointerType(pointee.ir)

    def _key(self):
        return (self.pointee,)

    def __str__(self):
        return f"{self.pointee}*"


class CArray(CType):
    def __init__(self, element: CType, count: int):
        self.element = element
        self.count = count
        self.ir = irt.ArrayType(element.ir, count)

    def _key(self):
        return (self.element, self.count)

    def __str__(self):
        return f"{self.element}[{self.count}]"


class CStruct(CType):
    def __init__(self, ir_struct: irt.StructType,
                 field_ctypes: List[Tuple[str, "CType"]]):
        self.ir = ir_struct
        self.fields = field_ctypes

    def field(self, name: str) -> Tuple[int, "CType"]:
        for i, (fname, ftype) in enumerate(self.fields):
            if fname == name:
                return i, ftype
        raise KeyError(f"struct {self.ir.name} has no field {name!r}")

    def _key(self):
        return (self.ir.name,)

    def __str__(self):
        return f"struct {self.ir.name}"


class CFunc(CType):
    def __init__(self, ret: CType, params: List[CType], variadic: bool):
        self.ret = ret
        self.params = params
        self.variadic = variadic
        self.ir = irt.FunctionType(ret.ir, [p.ir for p in params], variadic)

    def _key(self):
        return (self.ret, tuple(self.params), self.variadic)

    def __str__(self):
        return f"{self.ret}(*)({', '.join(map(str, self.params))})"


# Canonical instances.  C 'long' is ILP32-flavoured 64-bit here: the IR is
# compiled once for both targets, so integer widths must be target-neutral.
VOID = CVoid()
BOOL = CInt(1, False)
CHAR = CInt(8, True)
UCHAR = CInt(8, False)
SHORT = CInt(16, True)
USHORT = CInt(16, False)
INT = CInt(32, True)
UINT = CInt(32, False)
LONG = CInt(64, True)
ULONG = CInt(64, False)
FLOAT = CFloat(32)
DOUBLE = CFloat(64)

BASE_TYPES = {
    "void": VOID,
    "char": CHAR, "uchar": UCHAR,
    "short": SHORT, "ushort": USHORT,
    "int": INT, "uint": UINT,
    "long": LONG, "ulong": ULONG,
    "llong": LONG, "ullong": ULONG,
    "float": FLOAT, "double": DOUBLE,
}


def usual_arithmetic_conversion(a: CType, b: CType) -> CType:
    """C's usual arithmetic conversions, simplified to this type set."""
    if not (a.is_arith and b.is_arith):
        raise TypeError(f"arithmetic conversion of {a} and {b}")
    if a.is_float or b.is_float:
        bits = max(a.bits if a.is_float else 0, b.bits if b.is_float else 0)
        return CFloat(max(bits, 32)) if bits < 64 else DOUBLE
    # integer promotion to at least int
    bits = max(32, a.bits, b.bits)
    if a.bits == b.bits == bits:
        signed = a.signed and b.signed
    elif a.bits == bits:
        signed = a.signed
    elif b.bits == bits:
        signed = b.signed
    else:
        signed = True
    return CInt(bits, signed)


def promote(t: CType) -> CType:
    """Integer promotion (and float -> double for varargs)."""
    if t.is_integer and t.bits < 32:
        return CInt(32, True)
    if t.is_float and t.bits < 64:
        return DOUBLE
    return t
