"""Frontend driver: C source string -> verified IR module."""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.module import Module
from ..ir.verifier import verify_module
from ..targets.arch import TargetArch
from ..targets.presets import ARM32
from .codegen import CodeGen
from .parser import parse_c

# Predefined macros available to every compilation, standing in for the
# usual stdlib headers.
STANDARD_PREDEFINES: Dict[str, str] = {
    "NULL": "0",
    "TRUE": "1",
    "FALSE": "0",
    "bool": "int",
    "true": "1",
    "false": "0",
    "size_t": "unsigned long",
    "FILE": "void",
    "EOF": "(-1)",
    "INT_MAX": "2147483647",
    "INT_MIN": "(-2147483647 - 1)",
    "RAND_MAX": "2147483647",
}


def compile_c(source: str, name: str = "module",
              target: TargetArch = ARM32,
              predefines: Optional[Dict[str, str]] = None,
              verify: bool = True) -> Module:
    """Compile a mini-C source string to an IR module.

    ``target`` fixes compile-time layout decisions (``sizeof``); per the
    paper this is the *mobile* architecture, whose layout the memory
    unification passes later impose on the server too.
    """
    defines = dict(STANDARD_PREDEFINES)
    if predefines:
        defines.update(predefines)
    unit = parse_c(source, defines)
    module = CodeGen(target).compile(unit, name)
    if verify:
        verify_module(module)
    return module
