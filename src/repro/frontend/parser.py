"""Recursive-descent parser for the mini-C subset.

Produces the AST in :mod:`repro.frontend.c_ast`.  The parser tracks typedef
and struct names so it can disambiguate declarations from expressions, the
one context-sensitivity of C grammar that matters here.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from . import c_ast as ast
from .lexer import Token, tokenize, preprocess


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (near {token.text!r})")
        self.token = token


_BASE_TYPE_KWS = {"void", "char", "short", "int", "long", "float", "double",
                  "signed", "unsigned"}
_QUALIFIERS = {"const", "volatile", "register", "inline", "auto"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

# Binary operator precedence (higher binds tighter).
_BIN_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.typedefs: Set[str] = set()
        self.structs: Set[str] = set()
        self.enum_constants: dict = {}
        # Struct definitions encountered inline in declaration specifiers
        # (e.g. ``typedef struct { ... } Move;``), drained by the
        # translation-unit loop so they precede their first use.
        self.inline_struct_defs: List[ast.StructDef] = []

    # -- token helpers ----------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.cur
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, text: str) -> Optional[Token]:
        if self.cur.text == text and self.cur.kind in ("op", "kw"):
            return self.advance()
        return None

    def expect(self, text: str) -> Token:
        if self.cur.text == text and self.cur.kind in ("op", "kw"):
            return self.advance()
        raise ParseError(f"expected {text!r}", self.cur)

    def expect_ident(self) -> Token:
        if self.cur.kind != "id":
            raise ParseError("expected identifier", self.cur)
        return self.advance()

    # -- entry point --------------------------------------------------------
    def parse_translation_unit(self) -> ast.TranslationUnit:
        decls: List[ast.TopLevel] = []
        while self.cur.kind != "eof":
            items = self.parse_top_level()
            decls.extend(self.inline_struct_defs)
            self.inline_struct_defs = []
            decls.extend(items)
        return ast.TranslationUnit(decls)

    # -- top level ------------------------------------------------------
    def parse_top_level(self) -> List[ast.TopLevel]:
        line = self.cur.line
        if self.cur.text == "typedef":
            return [self.parse_typedef()]
        if self.cur.text == "enum" and self._is_enum_definition():
            return [self.parse_enum()]

        is_extern = False
        while self.cur.text in ("extern", "static"):
            is_extern = self.advance().text == "extern"

        base = self.parse_decl_specifiers()
        out: List[ast.TopLevel] = []
        if self.accept(";"):
            return out  # bare 'struct Foo;' forward declaration
        while True:
            name, spec = self.parse_declarator(base)
            if spec.func_params is not None and spec.func_pointers == 0:
                # function prototype or definition
                fn = ast.FunctionDef(
                    ret_type=ast.TypeSpec(base=spec.base,
                                          pointers=spec.pointers),
                    name=name, params=spec.func_params,
                    variadic=spec.func_variadic, body=None, line=line)
                if self.cur.text == "{":
                    fn.body = self.parse_block()
                    fn.end_line = self.tokens[self.pos - 1].line
                    out.append(fn)
                    return out
                out.append(fn)
            else:
                init = None
                if self.accept("="):
                    init = self.parse_initializer()
                out.append(ast.GlobalDecl(type=spec, name=name, init=init,
                                          is_extern=is_extern, line=line))
            if not self.accept(","):
                break
        self.expect(";")
        return out

    def _is_enum_definition(self) -> bool:
        nxt = self.peek()
        if nxt.text == "{":
            return True
        return nxt.kind == "id" and self.peek(2).text == "{"

    def parse_typedef(self) -> ast.TypedefDecl:
        line = self.expect("typedef").line
        base = self.parse_decl_specifiers()
        name, spec = self.parse_declarator(base)
        self.expect(";")
        self.typedefs.add(name)
        return ast.TypedefDecl(name=name, type=spec, line=line)

    def _parse_struct_body(self) -> List[ast.ParamDecl]:
        self.expect("{")
        fields: List[ast.ParamDecl] = []
        while not self.accept("}"):
            base = self.parse_decl_specifiers()
            while True:
                fname, fspec = self.parse_declarator(base,
                                                     allow_abstract=True)
                fields.append(ast.ParamDecl(type=fspec, name=fname,
                                            line=self.cur.line))
                if not self.accept(","):
                    break
            self.expect(";")
        return fields

    def parse_enum(self) -> ast.EnumDef:
        line = self.expect("enum").line
        name = self.advance().text if self.cur.kind == "id" else None
        self.expect("{")
        members: List[Tuple[str, int]] = []
        next_value = 0
        while not self.accept("}"):
            mname = self.expect_ident().text
            if self.accept("="):
                next_value = self.parse_const_int_expr()
            members.append((mname, next_value))
            self.enum_constants[mname] = next_value
            next_value += 1
            if not self.accept(","):
                self.expect("}")
                break
        self.accept(";")
        return ast.EnumDef(name=name, members=members, line=line)

    # -- types ------------------------------------------------------------
    def at_type_start(self) -> bool:
        token = self.cur
        if token.kind == "kw" and (token.text in _BASE_TYPE_KWS
                                   or token.text in ("struct", "union",
                                                     "enum")
                                   or token.text in _QUALIFIERS):
            return True
        return token.kind == "id" and token.text in self.typedefs

    def parse_decl_specifiers(self) -> str:
        """Parse type specifiers into a canonical base-type string."""
        words: List[str] = []
        struct_name: Optional[str] = None
        while True:
            token = self.cur
            if token.text in _QUALIFIERS or token.text == "static":
                self.advance()
                continue
            if token.text in ("struct", "union"):
                self.advance()
                if self.cur.kind == "id":
                    struct_name = self.advance().text
                else:
                    struct_name = (f"__anon_struct_{token.line}_"
                                   f"{len(self.inline_struct_defs)}")
                self.structs.add(struct_name)
                if self.cur.text == "{":
                    fields = self._parse_struct_body()
                    self.inline_struct_defs.append(ast.StructDef(
                        name=struct_name, fields=fields, line=token.line))
                continue
            if token.text == "enum":
                self.advance()
                if self.cur.kind == "id":
                    self.advance()
                words.append("int")
                continue
            if token.kind == "kw" and token.text in _BASE_TYPE_KWS:
                words.append(self.advance().text)
                continue
            if (token.kind == "id" and token.text in self.typedefs
                    and not words and struct_name is None):
                self.advance()
                return f"typedef:{token.text}"
            break
        if struct_name is not None:
            return f"struct:{struct_name}"
        if not words:
            raise ParseError("expected type specifier", self.cur)
        return _canonical_base(words, self.cur)

    def parse_declarator(self, base: str,
                         allow_abstract: bool = False
                         ) -> Tuple[str, ast.TypeSpec]:
        """Parse ``* ... name [dims] (params)`` declarators, including
        function pointers like ``double (*f)(Piece)``."""
        pointers = 0
        while self.accept("*"):
            pointers += 1

        func_pointers = 0
        name = ""
        inner_dims: List[Optional[int]] = []
        if self.cur.text == "(" and self.peek().text == "*":
            self.expect("(")
            while self.accept("*"):
                func_pointers += 1
            if self.cur.kind == "id":
                name = self.advance().text
            while self.accept("["):
                inner_dims.append(None if self.cur.text == "]"
                                  else self.parse_const_int_expr())
                self.expect("]")
            self.expect(")")
        elif self.cur.kind == "id":
            name = self.advance().text
        elif not allow_abstract:
            raise ParseError("expected declarator name", self.cur)

        spec = ast.TypeSpec(base=base, pointers=pointers)
        spec.func_pointers = func_pointers
        spec.array_dims = inner_dims

        if self.cur.text == "(" and (func_pointers > 0 or name or
                                     allow_abstract):
            self.expect("(")
            params, variadic = self.parse_param_list()
            spec.func_params = params
            spec.func_variadic = variadic

        while self.accept("["):
            dim = None if self.cur.text == "]" else self.parse_const_int_expr()
            self.expect("]")
            spec.array_dims.append(dim)
        return name, spec

    def parse_param_list(self) -> Tuple[List[ast.ParamDecl], bool]:
        params: List[ast.ParamDecl] = []
        variadic = False
        if self.accept(")"):
            return params, variadic
        if self.cur.text == "void" and self.peek().text == ")":
            self.advance()
            self.expect(")")
            return params, variadic
        while True:
            if self.accept("..."):
                variadic = True
                break
            base = self.parse_decl_specifiers()
            pname, pspec = self.parse_declarator(base, allow_abstract=True)
            params.append(ast.ParamDecl(type=pspec, name=pname,
                                        line=self.cur.line))
            if not self.accept(","):
                break
        self.expect(")")
        return params, variadic

    def parse_type_name(self) -> ast.TypeSpec:
        """Type in a cast or sizeof: specifiers + abstract declarator."""
        base = self.parse_decl_specifiers()
        _, spec = self.parse_declarator(base, allow_abstract=True)
        return spec

    # -- constant folding for array dims / enums ---------------------------
    def parse_const_int_expr(self) -> int:
        expr = self.parse_conditional()
        return _fold_const(expr, self.enum_constants, self.cur)

    # -- statements -----------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.expect("{").line
        statements: List[ast.Stmt] = []
        while not self.accept("}"):
            statements.extend(self.parse_statement())
        return ast.Block(statements=statements, line=line)

    def parse_statement(self) -> List[ast.Stmt]:
        token = self.cur
        if token.text == "{":
            return [self.parse_block()]
        if token.text == "if":
            return [self.parse_if()]
        if token.text == "while":
            return [self.parse_while()]
        if token.text == "do":
            return [self.parse_do_while()]
        if token.text == "for":
            return [self.parse_for()]
        if token.text == "switch":
            return [self.parse_switch()]
        if token.text == "return":
            self.advance()
            value = None if self.cur.text == ";" else self.parse_expr()
            self.expect(";")
            return [ast.Return(value=value, line=token.line)]
        if token.text == "break":
            self.advance()
            self.expect(";")
            return [ast.Break(line=token.line)]
        if token.text == "continue":
            self.advance()
            self.expect(";")
            return [ast.Continue(line=token.line)]
        if self.at_type_start():
            return self.parse_decl_statement()
        if self.accept(";"):
            return [ast.ExprStmt(expr=None, line=token.line)]
        expr = self.parse_expr()
        self.expect(";")
        return [ast.ExprStmt(expr=expr, line=token.line)]

    def parse_decl_statement(self) -> List[ast.Stmt]:
        line = self.cur.line
        base = self.parse_decl_specifiers()
        out: List[ast.Stmt] = []
        while True:
            name, spec = self.parse_declarator(base)
            init = self.parse_initializer() if self.accept("=") else None
            out.append(ast.DeclStmt(type=spec, name=name, init=init,
                                    line=line))
            if not self.accept(","):
                break
        self.expect(";")
        return out

    def parse_initializer(self) -> ast.Expr:
        if self.cur.text == "{":
            line = self.advance().line
            elements: List[ast.Expr] = []
            while not self.accept("}"):
                elements.append(self.parse_initializer())
                if not self.accept(","):
                    self.expect("}")
                    break
            return ast.InitList(elements=elements, line=line)
        return self.parse_assignment()

    def parse_if(self) -> ast.If:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = _single(self.parse_statement())
        otherwise = None
        if self.accept("else"):
            otherwise = _single(self.parse_statement())
        return ast.If(cond=cond, then=then, otherwise=otherwise, line=line)

    def parse_while(self) -> ast.While:
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = _single(self.parse_statement())
        return ast.While(cond=cond, body=body, line=line)

    def parse_do_while(self) -> ast.DoWhile:
        line = self.expect("do").line
        body = _single(self.parse_statement())
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(body=body, cond=cond, line=line)

    def parse_for(self) -> ast.For:
        line = self.expect("for").line
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.accept(";"):
            if self.at_type_start():
                decls = self.parse_decl_statement()
                init = ast.Block(statements=decls, line=line)
            else:
                expr = self.parse_expr()
                self.expect(";")
                init = ast.ExprStmt(expr=expr, line=line)
        cond = None if self.cur.text == ";" else self.parse_expr()
        self.expect(";")
        step = None if self.cur.text == ")" else self.parse_expr()
        self.expect(")")
        body = _single(self.parse_statement())
        return ast.For(init=init, cond=cond, step=step, body=body, line=line)

    def parse_switch(self) -> ast.SwitchStmt:
        line = self.expect("switch").line
        self.expect("(")
        value = self.parse_expr()
        self.expect(")")
        self.expect("{")
        cases: List[Tuple[Optional[int], List[ast.Stmt]]] = []
        current: Optional[List[ast.Stmt]] = None
        while not self.accept("}"):
            if self.accept("case"):
                const = self.parse_const_int_expr()
                self.expect(":")
                current = []
                cases.append((const, current))
                continue
            if self.accept("default"):
                self.expect(":")
                current = []
                cases.append((None, current))
                continue
            if current is None:
                raise ParseError("statement before first case label",
                                 self.cur)
            current.extend(self.parse_statement())
        return ast.SwitchStmt(value=value, cases=cases, line=line)

    # -- expressions ------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept(","):
            rhs = self.parse_assignment()
            expr = ast.Binary(op=",", lhs=expr, rhs=rhs, line=rhs.line)
        return expr

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_conditional()
        if self.cur.kind == "op" and self.cur.text in _ASSIGN_OPS:
            op = self.advance().text
            rhs = self.parse_assignment()
            return ast.Assign(op=op, target=lhs, value=rhs, line=lhs.line)
        return lhs

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            if_true = self.parse_expr()
            self.expect(":")
            if_false = self.parse_conditional()
            return ast.Conditional(cond=cond, if_true=if_true,
                                   if_false=if_false, line=cond.line)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            token = self.cur
            prec = _BIN_PREC.get(token.text) if token.kind == "op" else None
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.Binary(op=token.text, lhs=lhs, rhs=rhs,
                             line=token.line)

    def parse_unary(self) -> ast.Expr:
        token = self.cur
        if token.kind == "op" and token.text in ("-", "+", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        if token.kind == "op" and token.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(op=token.text, operand=operand, postfix=False,
                             line=token.line)
        if token.text == "sizeof":
            self.advance()
            if self.cur.text == "(" and self._paren_is_type():
                self.expect("(")
                type_spec = self.parse_type_name()
                self.expect(")")
                return ast.SizeofExpr(type=type_spec, operand=None,
                                      line=token.line)
            operand = self.parse_unary()
            return ast.SizeofExpr(type=None, operand=operand,
                                  line=token.line)
        if token.text == "(" and self._paren_is_type():
            self.expect("(")
            type_spec = self.parse_type_name()
            self.expect(")")
            operand = self.parse_unary()
            return ast.CastExpr(type=type_spec, operand=operand,
                                line=token.line)
        return self.parse_postfix()

    def _paren_is_type(self) -> bool:
        if self.cur.text != "(":
            return False
        nxt = self.peek()
        if nxt.kind == "kw" and (nxt.text in _BASE_TYPE_KWS
                                 or nxt.text in ("struct", "union", "enum")
                                 or nxt.text == "const"):
            return True
        return nxt.kind == "id" and nxt.text in self.typedefs

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.cur
            if token.text == "(":
                self.advance()
                args: List[ast.Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept(","):
                            break
                    self.expect(")")
                expr = ast.CallExpr(callee=expr, args=args, line=token.line)
            elif token.text == "[":
                self.advance()
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(base=expr, index=index, line=token.line)
            elif token.text == ".":
                self.advance()
                name = self.expect_ident().text
                expr = ast.Member(base=expr, name=name, arrow=False,
                                  line=token.line)
            elif token.text == "->":
                self.advance()
                name = self.expect_ident().text
                expr = ast.Member(base=expr, name=name, arrow=True,
                                  line=token.line)
            elif token.text in ("++", "--"):
                self.advance()
                expr = ast.Unary(op=token.text, operand=expr, postfix=True,
                                 line=token.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.cur
        if token.kind == "int":
            self.advance()
            return ast.IntLit(value=int(token.value), line=token.line)
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(value=float(token.value), line=token.line)
        if token.kind == "char":
            self.advance()
            return ast.CharLit(value=int(token.value), line=token.line)
        if token.kind == "str":
            self.advance()
            return ast.StrLit(value=str(token.value), line=token.line)
        if token.kind == "id":
            self.advance()
            if token.text in self.enum_constants:
                return ast.IntLit(value=self.enum_constants[token.text],
                                  line=token.line)
            return ast.Ident(name=token.text, line=token.line)
        if token.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise ParseError("expected expression", token)


def _single(statements: List[ast.Stmt]) -> ast.Stmt:
    if len(statements) == 1:
        return statements[0]
    return ast.Block(statements=statements,
                     line=statements[0].line if statements else 0)


def _canonical_base(words: List[str], token: Token) -> str:
    unsigned = "unsigned" in words
    words = [w for w in words if w not in ("signed", "unsigned")]
    joined = " ".join(sorted(words))
    mapping = {
        "void": "void",
        "char": "char",
        "short": "short", "int short": "short",
        "int": "int", "": "int",
        "long": "long", "int long": "long",
        "long long": "llong", "int long long": "llong",
        "float": "float",
        "double": "double", "double long": "double",
    }
    base = mapping.get(joined)
    if base is None:
        raise ParseError(f"unsupported type {' '.join(words)!r}", token)
    if unsigned:
        if base in ("void", "float", "double"):
            raise ParseError("unsigned non-integer type", token)
        base = "u" + base
    return base


def _fold_const(expr: ast.Expr, enum_constants: dict, token: Token) -> int:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.CharLit):
        return expr.value
    if isinstance(expr, ast.Ident) and expr.name in enum_constants:
        return enum_constants[expr.name]
    if isinstance(expr, ast.Unary) and not expr.postfix:
        value = _fold_const(expr.operand, enum_constants, token)
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(not value)
    if isinstance(expr, ast.Binary):
        lhs = _fold_const(expr.lhs, enum_constants, token)
        rhs = _fold_const(expr.rhs, enum_constants, token)
        ops = {
            "+": lambda: lhs + rhs, "-": lambda: lhs - rhs,
            "*": lambda: lhs * rhs, "/": lambda: lhs // rhs,
            "%": lambda: lhs % rhs, "<<": lambda: lhs << rhs,
            ">>": lambda: lhs >> rhs, "&": lambda: lhs & rhs,
            "|": lambda: lhs | rhs, "^": lambda: lhs ^ rhs,
        }
        if expr.op in ops:
            return ops[expr.op]()
    raise ParseError("expected integer constant expression", token)


def parse_c(source: str, predefines=None) -> ast.TranslationUnit:
    """Preprocess + lex + parse a mini-C source string."""
    text = preprocess(source, predefines)
    unit = Parser(tokenize(text)).parse_translation_unit()
    unit.source_lines = source.count("\n") + 1
    return unit
