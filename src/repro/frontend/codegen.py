"""IR code generation from the mini-C AST.

The lowering mirrors clang -O0: every local variable is an alloca, struct
copies become memcpy calls, struct arguments are passed by caller-made copy
and struct returns via a leading sret pointer.  ``sizeof`` is baked against
the *mobile* target layout, because — exactly as in the paper — the single
IR stream is derived from the mobile build, and memory unification later
imposes the mobile layout on the server as well.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import instructions as irinst
from ..ir import types as irt
from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.values import (AggregateInit, BytesInit, Constant, Function,
                         FunctionRefInit, GlobalRefInit, GlobalVariable,
                         Initializer, ScalarInit, Value, ZeroInit)
from ..targets.abi import DataLayout
from ..targets.arch import TargetArch
from ..targets.presets import ARM32
from . import c_ast as ast
from . import ctypes as ct
from .builtins import BUILTIN_SIGNATURES


class CodegenError(Exception):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class _FuncInfo:
    """Lowered signature of a source-level function."""

    def __init__(self, ctype: ct.CFunc, ir_fn: Function, sret: bool,
                 param_ctypes: List[ct.CType]):
        self.ctype = ctype
        self.ir_fn = ir_fn
        self.sret = sret
        self.param_ctypes = param_ctypes


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.bindings: Dict[str, Tuple[str, object, ct.CType]] = {}

    def define(self, name: str, kind: str, value, ctype: ct.CType) -> None:
        self.bindings[name] = (kind, value, ctype)

    def lookup(self, name: str):
        scope = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None


class CodeGen:
    """Compiles a parsed translation unit into an IR module."""

    def __init__(self, target: TargetArch = ARM32):
        self.target = target
        self.layout = DataLayout(target)
        self.module = Module()
        self.typedefs: Dict[str, ct.CType] = {}
        self.structs: Dict[str, ct.CStruct] = {}
        self.functions: Dict[str, _FuncInfo] = {}
        self.global_scope = _Scope()
        self.scope = self.global_scope
        self._strings: Dict[str, GlobalVariable] = {}
        self._tmp = 0
        # per-function state
        self.builder: Optional[IRBuilder] = None
        self.alloca_builder: Optional[IRBuilder] = None
        self.current: Optional[_FuncInfo] = None
        self.sret_ptr: Optional[Value] = None
        self._break_stack: List = []
        self._continue_stack: List = []
        self._block_counter = 0

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def compile(self, unit: ast.TranslationUnit,
                name: str = "module") -> Module:
        self.module.name = name
        self.module.metadata["source_lines"] = unit.source_lines
        bodies: List[ast.FunctionDef] = []
        for decl in unit.decls:
            if isinstance(decl, ast.StructDef):
                self._declare_struct(decl)
            elif isinstance(decl, ast.TypedefDecl):
                ctype = self._resolve(decl.type, decl.line)
                self.typedefs[decl.name] = ctype
                # `typedef struct { ... } Name;` — adopt the typedef name
                # for the anonymous struct so diagnostics and layout dumps
                # read like the source.
                if (ctype.is_struct
                        and ctype.ir.name.startswith("__anon_struct")
                        and decl.name not in self.module.structs):
                    old = ctype.ir.name
                    ctype.ir.name = decl.name
                    self.module.structs[decl.name] = \
                        self.module.structs.pop(old)
                    self.structs[decl.name] = self.structs.pop(old)
            elif isinstance(decl, ast.EnumDef):
                pass  # parser folded enum constants into literals
            elif isinstance(decl, ast.GlobalDecl):
                self._declare_global(decl)
            elif isinstance(decl, ast.FunctionDef):
                self._declare_function(decl)
                if decl.body is not None:
                    bodies.append(decl)
            else:
                raise CodegenError(f"unhandled top-level {decl!r}")
        for decl in bodies:
            self._compile_function(decl)
        return self.module

    def _declare_struct(self, decl: ast.StructDef) -> None:
        if decl.name in self.structs:
            raise CodegenError(f"duplicate struct {decl.name}", decl.line)
        ir_struct = irt.StructType(decl.name)
        self.module.add_struct(ir_struct)
        # Allow self-referencing structs (linked lists) by registering an
        # opaque CStruct before resolving field types.
        cstruct = ct.CStruct(ir_struct, [])
        self.structs[decl.name] = cstruct
        fields = []
        for field in decl.fields:
            ftype = self._resolve(field.type, field.line)
            if ftype.is_void:
                raise CodegenError("void struct field", field.line)
            fields.append((field.name, ftype))
        cstruct.fields = fields
        ir_struct.set_body([(n, t.ir) for n, t in fields])

    def _declare_global(self, decl: ast.GlobalDecl) -> None:
        ctype = self._resolve(decl.type, decl.line)
        if ctype.is_function:
            # 'extern int foo(int);' written as a global: treat as function
            raise CodegenError(
                f"function declarator for global {decl.name}", decl.line)
        existing = self.global_scope.lookup(decl.name)
        if existing is not None:
            if decl.is_extern:
                return
            kind, value, old_ctype = existing
            if kind == "global" and old_ctype == ctype:
                if decl.init is not None:
                    value.initializer = self._make_initializer(
                        decl.init, ctype, decl.line)
                return
            raise CodegenError(f"redefinition of {decl.name}", decl.line)
        init = (self._make_initializer(decl.init, ctype, decl.line)
                if decl.init is not None else ZeroInit())
        gv = GlobalVariable(decl.name, ctype.ir, init)
        self.module.add_global(gv)
        self.global_scope.define(decl.name, "global", gv, ctype)

    def _declare_function(self, decl: ast.FunctionDef) -> None:
        if decl.name in self.functions:
            info = self.functions[decl.name]
            if decl.body is not None:
                info.ir_fn.source_lines = max(
                    1, decl.end_line - decl.line + 1)
            return
        ret = self._resolve(decl.ret_type, decl.line)
        param_ctypes = [self._resolve(p.type, p.line) for p in decl.params]
        # Decay array params to pointers; struct params pass by pointer.
        lowered: List[ct.CType] = []
        for ptype in param_ctypes:
            if ptype.is_array:
                lowered.append(ct.CPointer(ptype.element))
            elif ptype.is_struct:
                lowered.append(ct.CPointer(ptype))
            else:
                lowered.append(ptype)
        sret = ret.is_struct
        ir_params = [p.ir for p in lowered]
        arg_names = [p.name or f"arg{i}" for i, p in enumerate(decl.params)]
        if sret:
            ir_params = [irt.PointerType(ret.ir)] + ir_params
            arg_names = ["sret"] + arg_names
        ftype = irt.FunctionType(irt.VOID if sret else ret.ir, ir_params,
                                 decl.variadic)
        ir_fn = Function(decl.name, ftype, arg_names)
        if decl.body is not None:
            ir_fn.source_lines = max(1, decl.end_line - decl.line + 1)
        self.module.add_function(ir_fn)
        cfunc = ct.CFunc(ret, lowered, decl.variadic)
        info = _FuncInfo(cfunc, ir_fn, sret, lowered)
        self.functions[decl.name] = info
        self.global_scope.define(decl.name, "function", info, cfunc)

    def _compile_function(self, decl: ast.FunctionDef) -> None:
        info = self.functions[decl.name]
        fn = info.ir_fn
        self.current = info
        alloca_block = fn.add_block("entry")
        body_block = fn.add_block("body")
        self.alloca_builder = IRBuilder(alloca_block)
        self.builder = IRBuilder(body_block)
        self.scope = _Scope(self.global_scope)
        self._break_stack = []
        self._continue_stack = []
        self._block_counter = 0

        args = list(fn.args)
        if info.sret:
            self.sret_ptr = args[0]
            args = args[1:]
        else:
            self.sret_ptr = None
        for arg, param, ctype in zip(args, decl.params, info.param_ctypes):
            if ctype.is_pointer and ctype.pointee.is_struct and \
                    self._resolve(param.type, param.line).is_struct:
                # struct passed by value: the caller made a private copy,
                # bind the parameter name directly to that storage.
                self.scope.define(param.name, "local", arg, ctype.pointee)
                continue
            slot = self.alloca_builder.alloca(ctype.ir, f"{param.name}.addr")
            self.builder.store(arg, slot)
            self.scope.define(param.name, "local", slot, ctype)

        self._gen_block(decl.body)

        # Fall-off-the-end handling.
        if self.builder.block.terminator is None:
            ret = info.ctype.ret
            if info.sret or ret.is_void:
                self.builder.ret()
            else:
                self.builder.ret(Constant(ret.ir, 0))
        # Finish the alloca header block.
        self.alloca_builder.br(body_block)
        self.current = None

    # ------------------------------------------------------------------
    # Type resolution
    # ------------------------------------------------------------------
    def _resolve(self, spec: ast.TypeSpec, line: int) -> ct.CType:
        base = self._resolve_base(spec.base, line)
        if spec.func_params is not None:
            ret = base
            for _ in range(spec.pointers):
                ret = ct.CPointer(ret)
            params = []
            for p in spec.func_params:
                ptype = self._resolve(p.type, p.line)
                if ptype.is_array:
                    ptype = ct.CPointer(ptype.element)
                elif ptype.is_struct:
                    ptype = ct.CPointer(ptype)
                params.append(ptype)
            fn = ct.CFunc(ret, params, spec.func_variadic)
            result: ct.CType = fn
            for _ in range(max(spec.func_pointers, 1)):
                result = ct.CPointer(result)
            for dim in reversed(spec.array_dims):
                result = ct.CArray(result, dim or 0)
            return result
        result = base
        for _ in range(spec.pointers):
            result = ct.CPointer(result)
        for dim in reversed(spec.array_dims):
            if dim is None:
                result = ct.CPointer(result)
            else:
                result = ct.CArray(result, dim)
        return result

    def _resolve_base(self, base: str, line: int) -> ct.CType:
        if base.startswith("struct:"):
            name = base.split(":", 1)[1]
            struct = self.structs.get(name)
            if struct is None:
                raise CodegenError(f"unknown struct {name}", line)
            return struct
        if base.startswith("typedef:"):
            name = base.split(":", 1)[1]
            ctype = self.typedefs.get(name)
            if ctype is None:
                raise CodegenError(f"unknown typedef {name}", line)
            return ctype
        ctype = ct.BASE_TYPES.get(base)
        if ctype is None:
            raise CodegenError(f"unknown type {base}", line)
        return ctype

    # ------------------------------------------------------------------
    # Global initializers
    # ------------------------------------------------------------------
    def _make_initializer(self, expr: ast.Expr, ctype: ct.CType,
                          line: int) -> Initializer:
        if isinstance(expr, ast.InitList):
            if ctype.is_array:
                elements = [self._make_initializer(e, ctype.element, line)
                            for e in expr.elements]
                return AggregateInit(elements)
            if ctype.is_struct:
                elements = []
                for e, (_, ftype) in zip(expr.elements, ctype.fields):
                    elements.append(self._make_initializer(e, ftype, line))
                return AggregateInit(elements)
            if expr.elements:
                return self._make_initializer(expr.elements[0], ctype, line)
            return ZeroInit()
        if isinstance(expr, ast.StrLit):
            data = expr.value.encode("utf-8") + b"\x00"
            if ctype.is_array:
                return BytesInit(data)
            if ctype.is_pointer:
                gv = self._string_global(expr.value)
                return GlobalRefInit(gv.name)
            raise CodegenError("string initializer for non-array", line)
        if isinstance(expr, ast.Ident):
            if expr.name in self.functions:
                return FunctionRefInit(expr.name)
            binding = self.global_scope.lookup(expr.name)
            if binding is not None and binding[0] == "global" and \
                    ctype.is_pointer:
                return GlobalRefInit(binding[1].name)
            raise CodegenError(
                f"non-constant initializer {expr.name}", line)
        if isinstance(expr, ast.Unary) and expr.op == "&" and \
                isinstance(expr.operand, ast.Ident):
            binding = self.global_scope.lookup(expr.operand.name)
            if binding is not None and binding[0] == "global":
                return GlobalRefInit(binding[1].name)
            if expr.operand.name in self.functions:
                return FunctionRefInit(expr.operand.name)
            raise CodegenError("non-constant address initializer", line)
        value = self._const_value(expr, line)
        if ctype.is_integer or ctype.is_pointer:
            return ScalarInit(int(value))
        if ctype.is_float:
            return ScalarInit(float(value))
        raise CodegenError(f"scalar initializer for {ctype}", line)

    def _const_value(self, expr: ast.Expr, line: int):
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.CharLit)):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._const_value(expr.operand, line)
        if isinstance(expr, ast.Unary) and expr.op == "+":
            return self._const_value(expr.operand, line)
        if isinstance(expr, ast.Binary):
            lhs = self._const_value(expr.lhs, line)
            rhs = self._const_value(expr.rhs, line)
            import operator
            ops = {"+": operator.add, "-": operator.sub,
                   "*": operator.mul,
                   "/": (operator.truediv
                         if isinstance(lhs, float) or isinstance(rhs, float)
                         else operator.floordiv)}
            if expr.op in ops:
                return ops[expr.op](lhs, rhs)
        if isinstance(expr, ast.SizeofExpr):
            return self._sizeof_value(expr, line)
        if isinstance(expr, ast.CastExpr):
            inner = self._const_value(expr.operand, line)
            target = self._resolve(expr.type, line)
            if target.is_integer:
                return int(inner)
            if target.is_float:
                return float(inner)
            return inner
        raise CodegenError("expected constant expression", line)

    def _string_global(self, text: str) -> GlobalVariable:
        gv = self._strings.get(text)
        if gv is not None:
            return gv
        data = text.encode("utf-8") + b"\x00"
        name = f".str.{len(self._strings)}"
        gv = GlobalVariable(name, irt.ArrayType(irt.I8, len(data)),
                            BytesInit(data), constant=True)
        self.module.add_global(gv)
        self._strings[text] = gv
        return gv

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _new_block(self, hint: str):
        self._block_counter += 1
        return self.current.ir_fn.add_block(f"{hint}{self._block_counter}")

    def _ensure_open_block(self) -> None:
        if self.builder.block.terminator is not None:
            dead = self._new_block("dead")
            self.builder.position_at_end(dead)

    def _gen_statement(self, stmt: ast.Stmt) -> None:
        self._ensure_open_block()
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._rvalue(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            self._gen_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._break_stack:
                raise CodegenError("break outside loop/switch", stmt.line)
            self.builder.br(self._break_stack[-1])
        elif isinstance(stmt, ast.Continue):
            if not self._continue_stack:
                raise CodegenError("continue outside loop", stmt.line)
            self.builder.br(self._continue_stack[-1])
        elif isinstance(stmt, ast.SwitchStmt):
            self._gen_switch(stmt)
        else:
            raise CodegenError(f"unhandled statement {stmt!r}", stmt.line)

    def _gen_block(self, block: ast.Block) -> None:
        self.scope = _Scope(self.scope)
        for stmt in block.statements:
            self._gen_statement(stmt)
        self.scope = self.scope.parent

    def _gen_decl(self, stmt: ast.DeclStmt) -> None:
        ctype = self._resolve(stmt.type, stmt.line)
        if ctype.is_void:
            raise CodegenError("void variable", stmt.line)
        slot = self.alloca_builder.alloca(ctype.ir, stmt.name)
        self.scope.define(stmt.name, "local", slot, ctype)
        if stmt.init is None:
            return
        if isinstance(stmt.init, ast.InitList):
            self._gen_local_init_list(slot, ctype, stmt.init, stmt.line)
            return
        if isinstance(stmt.init, ast.StrLit) and ctype.is_array:
            data_gv = self._string_global(stmt.init.value)
            self._emit_memcpy(slot, data_gv,
                              min(self._type_size(ctype),
                                  len(stmt.init.value) + 1))
            return
        value, vtype = self._rvalue(stmt.init)
        if ctype.is_struct:
            if not (vtype.is_struct and vtype.ir.name == ctype.ir.name):
                raise CodegenError("struct init type mismatch", stmt.line)
            self._emit_memcpy(slot, value, self._type_size(ctype))
            return
        converted = self._convert(value, vtype, ctype, stmt.line)
        self.builder.store(converted, slot)

    def _gen_local_init_list(self, slot: Value, ctype: ct.CType,
                             init: ast.InitList, line: int) -> None:
        if ctype.is_array:
            for i, element in enumerate(init.elements):
                addr = self.builder.gep(
                    slot, [self.builder.i32(0), self.builder.i32(i)])
                if isinstance(element, ast.InitList):
                    self._gen_local_init_list(addr, ctype.element, element,
                                              line)
                else:
                    value, vtype = self._rvalue(element)
                    self.builder.store(
                        self._convert(value, vtype, ctype.element, line),
                        addr)
            return
        if ctype.is_struct:
            for i, element in enumerate(init.elements):
                _, ftype = ctype.fields[i][0], ctype.fields[i][1]
                addr = self.builder.struct_gep(slot, i)
                if isinstance(element, ast.InitList):
                    self._gen_local_init_list(addr, ftype, element, line)
                else:
                    value, vtype = self._rvalue(element)
                    self.builder.store(
                        self._convert(value, vtype, ftype, line), addr)
            return
        raise CodegenError("initializer list for scalar", line)

    def _gen_if(self, stmt: ast.If) -> None:
        cond = self._condition(stmt.cond)
        then_block = self._new_block("if.then")
        merge_block = self._new_block("if.end")
        else_block = (self._new_block("if.else")
                      if stmt.otherwise is not None else merge_block)
        self.builder.condbr(cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        self._gen_statement(stmt.then)
        if self.builder.block.terminator is None:
            self.builder.br(merge_block)
        if stmt.otherwise is not None:
            self.builder.position_at_end(else_block)
            self._gen_statement(stmt.otherwise)
            if self.builder.block.terminator is None:
                self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)

    def _gen_while(self, stmt: ast.While) -> None:
        cond_block = self._new_block("while.cond")
        body_block = self._new_block("while.body")
        end_block = self._new_block("while.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self._condition(stmt.cond)
        self.builder.condbr(cond, body_block, end_block)
        self.builder.position_at_end(body_block)
        self._break_stack.append(end_block)
        self._continue_stack.append(cond_block)
        self._gen_statement(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(cond_block)
        self.builder.position_at_end(end_block)

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        body_block = self._new_block("do.body")
        cond_block = self._new_block("do.cond")
        end_block = self._new_block("do.end")
        self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self._break_stack.append(end_block)
        self._continue_stack.append(cond_block)
        self._gen_statement(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self._condition(stmt.cond)
        self.builder.condbr(cond, body_block, end_block)
        self.builder.position_at_end(end_block)

    def _gen_for(self, stmt: ast.For) -> None:
        self.scope = _Scope(self.scope)
        if stmt.init is not None:
            self._gen_statement(stmt.init)
        cond_block = self._new_block("for.cond")
        body_block = self._new_block("for.body")
        step_block = self._new_block("for.step")
        end_block = self._new_block("for.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        if stmt.cond is not None:
            cond = self._condition(stmt.cond)
            self.builder.condbr(cond, body_block, end_block)
        else:
            self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self._break_stack.append(end_block)
        self._continue_stack.append(step_block)
        self._gen_statement(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(step_block)
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._rvalue(stmt.step)
        self.builder.br(cond_block)
        self.builder.position_at_end(end_block)
        self.scope = self.scope.parent

    def _gen_return(self, stmt: ast.Return) -> None:
        info = self.current
        ret = info.ctype.ret
        if ret.is_void:
            self.builder.ret()
            return
        if stmt.value is None:
            raise CodegenError("return without value", stmt.line)
        if info.sret:
            value, vtype = self._rvalue(stmt.value)
            if not vtype.is_struct:
                raise CodegenError("expected struct return value", stmt.line)
            self._emit_memcpy(self.sret_ptr, value, self._type_size(ret))
            self.builder.ret()
            return
        value, vtype = self._rvalue(stmt.value)
        self.builder.ret(self._convert(value, vtype, ret, stmt.line))

    def _gen_switch(self, stmt: ast.SwitchStmt) -> None:
        value, vtype = self._rvalue(stmt.value)
        if not vtype.is_integer:
            raise CodegenError("switch on non-integer", stmt.line)
        end_block = self._new_block("switch.end")
        case_blocks = [self._new_block(f"case") for _ in stmt.cases]
        default_block = end_block
        switch = self.builder.switch(value, default_block)
        for (const, _), block in zip(stmt.cases, case_blocks):
            if const is None:
                switch.default = block
            else:
                switch.add_case(
                    const & vtype.ir.max_unsigned, block)
        self._break_stack.append(end_block)
        for i, ((_, body), block) in enumerate(zip(stmt.cases, case_blocks)):
            self.builder.position_at_end(block)
            for inner in body:
                self._gen_statement(inner)
            if self.builder.block.terminator is None:
                # fallthrough to the next case, or exit
                target = (case_blocks[i + 1] if i + 1 < len(case_blocks)
                          else end_block)
                self.builder.br(target)
        self._break_stack.pop()
        self.builder.position_at_end(end_block)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _condition(self, expr: ast.Expr) -> Value:
        value, ctype = self._rvalue(expr)
        return self._truthiness(value, ctype, expr.line)

    def _truthiness(self, value: Value, ctype: ct.CType, line: int) -> Value:
        if ctype == ct.BOOL:
            return value
        if ctype.is_integer:
            return self.builder.cmp("ne", value, Constant(ctype.ir, 0))
        if ctype.is_float:
            return self.builder.cmp("fne", value, Constant(ctype.ir, 0.0))
        if ctype.is_pointer:
            return self.builder.cmp("ne", value, Constant(ctype.ir, 0))
        raise CodegenError(f"cannot test {ctype} for truth", line)

    def _lvalue(self, expr: ast.Expr) -> Tuple[Value, ct.CType]:
        if isinstance(expr, ast.Ident):
            binding = self.scope.lookup(expr.name)
            if binding is None:
                raise CodegenError(f"undeclared identifier {expr.name}",
                                   expr.line)
            kind, value, ctype = binding
            if kind == "local":
                return value, ctype
            if kind == "global":
                return value, ctype
            raise CodegenError(f"{expr.name} is not an lvalue", expr.line)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value, ctype = self._rvalue(expr.operand)
            if not ctype.is_pointer:
                raise CodegenError("dereference of non-pointer", expr.line)
            return value, ctype.pointee
        if isinstance(expr, ast.Index):
            base, btype = self._rvalue_or_array(expr.base)
            index, itype = self._rvalue(expr.index)
            if not itype.is_integer:
                raise CodegenError("non-integer array index", expr.line)
            index = self._convert(index, itype, ct.LONG, expr.line)
            if btype.is_pointer:
                addr = self.builder.index(base, index)
                return addr, btype.pointee
            raise CodegenError("indexing non-pointer", expr.line)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base, btype = self._rvalue(expr.base)
                if not (btype.is_pointer and btype.pointee.is_struct):
                    raise CodegenError("-> on non-struct-pointer", expr.line)
                struct = btype.pointee
            else:
                base, struct = self._lvalue(expr.base)
                if not struct.is_struct:
                    raise CodegenError(". on non-struct", expr.line)
            index, ftype = struct.field(expr.name)
            addr = self.builder.struct_gep(base, index)
            return addr, ftype
        raise CodegenError("expression is not an lvalue", expr.line)

    def _rvalue_or_array(self, expr: ast.Expr) -> Tuple[Value, ct.CType]:
        """Rvalue with array-to-pointer decay."""
        ctype = self._type_of_lvalue_or_none(expr)
        if ctype is not None and ctype.is_array:
            addr, atype = self._lvalue(expr)
            decayed = self.builder.gep(
                addr, [self.builder.i32(0), self.builder.i32(0)])
            return decayed, ct.CPointer(atype.element)
        return self._rvalue(expr)

    def _type_of_lvalue_or_none(self, expr: ast.Expr) -> Optional[ct.CType]:
        try:
            if isinstance(expr, ast.Ident):
                binding = self.scope.lookup(expr.name)
                if binding and binding[0] in ("local", "global"):
                    return binding[2]
                return None
            if isinstance(expr, ast.Member):
                base = self._type_of_lvalue_or_none(expr.base)
                if expr.arrow:
                    base = self._type_of_expr_or_none(expr.base)
                    if base is not None and base.is_pointer:
                        base = base.pointee
                if base is not None and base.is_struct:
                    return base.field(expr.name)[1]
                return None
            if isinstance(expr, ast.Index):
                base = self._type_of_lvalue_or_none(expr.base)
                if base is not None and base.is_array:
                    return base.element
                base = self._type_of_expr_or_none(expr.base)
                if base is not None and base.is_pointer:
                    return base.pointee
                return None
        except (KeyError, CodegenError):
            return None
        return None

    def _type_of_expr_or_none(self, expr: ast.Expr) -> Optional[ct.CType]:
        return self._type_of_lvalue_or_none(expr)

    def _rvalue(self, expr: ast.Expr) -> Tuple[Value, ct.CType]:
        if isinstance(expr, ast.IntLit):
            if -(1 << 31) <= expr.value < (1 << 31):
                return Constant(irt.I32, expr.value), ct.INT
            return Constant(irt.I64, expr.value), ct.LONG
        if isinstance(expr, ast.FloatLit):
            return Constant(irt.F64, expr.value), ct.DOUBLE
        if isinstance(expr, ast.CharLit):
            return Constant(irt.I32, expr.value), ct.INT
        if isinstance(expr, ast.StrLit):
            gv = self._string_global(expr.value)
            addr = self.builder.gep(
                gv, [self.builder.i32(0), self.builder.i32(0)])
            return addr, ct.CPointer(ct.CHAR)
        if isinstance(expr, ast.Ident):
            return self._rvalue_ident(expr)
        if isinstance(expr, ast.Unary):
            return self._rvalue_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._rvalue_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._rvalue_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._rvalue_conditional(expr)
        if isinstance(expr, ast.CallExpr):
            return self._rvalue_call(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            addr, ctype = self._lvalue(expr)
            return self._load_lvalue(addr, ctype)
        if isinstance(expr, ast.CastExpr):
            target = self._resolve(expr.type, expr.line)
            value, vtype = self._rvalue_or_array(expr.operand)
            if target.is_void:
                return Constant(irt.I32, 0), ct.INT
            return self._convert(value, vtype, target, expr.line,
                                 explicit=True), target
        if isinstance(expr, ast.SizeofExpr):
            return (Constant(irt.I64, self._sizeof_value(expr, expr.line)),
                    ct.ULONG)
        raise CodegenError(f"unhandled expression {expr!r}", expr.line)

    def _sizeof_value(self, expr: ast.SizeofExpr, line: int) -> int:
        if expr.type is not None:
            ctype = self._resolve(expr.type, line)
        else:
            ctype = self._type_of_lvalue_or_none(expr.operand)
            if ctype is None:
                raise CodegenError(
                    "sizeof of complex expression unsupported", line)
        return self._type_size(ctype)

    def _type_size(self, ctype: ct.CType) -> int:
        return self.layout.size_of(ctype.ir)

    def _load_lvalue(self, addr: Value, ctype: ct.CType
                     ) -> Tuple[Value, ct.CType]:
        if ctype.is_struct:
            # struct rvalue = its storage address (copied where needed)
            return addr, ctype
        if ctype.is_array:
            decayed = self.builder.gep(
                addr, [self.builder.i32(0), self.builder.i32(0)])
            return decayed, ct.CPointer(ctype.element)
        return self.builder.load(addr), ctype

    def _rvalue_ident(self, expr: ast.Ident) -> Tuple[Value, ct.CType]:
        binding = self.scope.lookup(expr.name)
        if binding is None:
            info = self._implicit_builtin(expr.name)
            if info is not None:
                return info.ir_fn, ct.CPointer(info.ctype)
            raise CodegenError(f"undeclared identifier {expr.name}",
                               expr.line)
        kind, value, ctype = binding
        if kind == "function":
            return value.ir_fn, ct.CPointer(ctype)
        return self._load_lvalue(value, ctype)

    def _implicit_builtin(self, name: str) -> Optional[_FuncInfo]:
        if name in self.functions:
            return self.functions[name]
        sig = BUILTIN_SIGNATURES.get(name)
        if sig is None:
            return None
        ir_fn = self.module.declare_function(name, sig.ir)
        info = _FuncInfo(sig, ir_fn, False, sig.params)
        self.functions[name] = info
        self.global_scope.define(name, "function", info, sig)
        return info

    def _rvalue_unary(self, expr: ast.Unary) -> Tuple[Value, ct.CType]:
        op = expr.op
        if op == "&":
            if isinstance(expr.operand, ast.Ident):
                binding = self.scope.lookup(expr.operand.name)
                if binding is None and expr.operand.name in BUILTIN_SIGNATURES:
                    info = self._implicit_builtin(expr.operand.name)
                    return info.ir_fn, ct.CPointer(info.ctype)
                if binding is not None and binding[0] == "function":
                    return binding[1].ir_fn, ct.CPointer(binding[2])
            addr, ctype = self._lvalue(expr.operand)
            return addr, ct.CPointer(ctype)
        if op == "*":
            value, ctype = self._rvalue_or_array(expr.operand)
            if not ctype.is_pointer:
                raise CodegenError("dereference of non-pointer", expr.line)
            if ctype.pointee.is_function:
                return value, ctype  # (*f)() == f()
            return self._load_lvalue(value, ctype.pointee)
        if op in ("++", "--"):
            return self._rvalue_incdec(expr)
        value, ctype = self._rvalue(expr.operand)
        if op == "-":
            if ctype.is_float:
                return (self.builder.fsub(Constant(ctype.ir, 0.0), value),
                        ctype)
            promoted = ct.promote(self._debool(ctype))
            value = self._convert(value, ctype, promoted, expr.line)
            return self.builder.sub(Constant(promoted.ir, 0), value), promoted
        if op == "+":
            return value, ctype
        if op == "!":
            truth = self._truthiness(value, ctype, expr.line)
            flipped = self.builder.cmp("eq", truth, Constant(irt.I1, 0))
            return flipped, ct.BOOL
        if op == "~":
            promoted = ct.promote(self._debool(ctype))
            value = self._convert(value, ctype, promoted, expr.line)
            return (self.builder.binop(
                "xor", value, Constant(promoted.ir, promoted.ir.max_unsigned)),
                promoted)
        raise CodegenError(f"unhandled unary {op}", expr.line)

    def _rvalue_incdec(self, expr: ast.Unary) -> Tuple[Value, ct.CType]:
        addr, ctype = self._lvalue(expr.operand)
        old = self.builder.load(addr)
        if ctype.is_pointer:
            delta = self.builder.i32(1 if expr.op == "++" else -1)
            new = self.builder.index(old, delta)
        elif ctype.is_float:
            one = Constant(ctype.ir, 1.0)
            new = (self.builder.fadd(old, one) if expr.op == "++"
                   else self.builder.fsub(old, one))
        else:
            one = Constant(ctype.ir, 1)
            new = (self.builder.add(old, one) if expr.op == "++"
                   else self.builder.sub(old, one))
        self.builder.store(new, addr)
        return (old if expr.postfix else new), ctype

    def _rvalue_binary(self, expr: ast.Binary) -> Tuple[Value, ct.CType]:
        op = expr.op
        if op == ",":
            self._rvalue(expr.lhs)
            return self._rvalue(expr.rhs)
        if op in ("&&", "||"):
            return self._rvalue_logical(expr)
        lhs, ltype = self._rvalue_or_array(expr.lhs)
        rhs, rtype = self._rvalue_or_array(expr.rhs)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._rvalue_comparison(op, lhs, ltype, rhs, rtype,
                                           expr.line)
        # pointer arithmetic
        if ltype.is_pointer or rtype.is_pointer:
            return self._rvalue_pointer_arith(op, lhs, ltype, rhs, rtype,
                                              expr.line)
        common = ct.usual_arithmetic_conversion(
            self._debool(ltype), self._debool(rtype))
        lhs = self._convert(lhs, ltype, common, expr.line)
        rhs = self._convert(rhs, rtype, common, expr.line)
        ir_op = self._select_binop(op, common, expr.line)
        result = self.builder.binop(ir_op, lhs, rhs)
        return result, common

    def _debool(self, ctype: ct.CType) -> ct.CType:
        return ct.INT if ctype == ct.BOOL else ctype

    def _select_binop(self, op: str, ctype: ct.CType, line: int) -> str:
        if ctype.is_float:
            table = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                     "%": "frem"}
        else:
            signed = ctype.signed
            table = {
                "+": "add", "-": "sub", "*": "mul",
                "/": "sdiv" if signed else "udiv",
                "%": "srem" if signed else "urem",
                "&": "and", "|": "or", "^": "xor",
                "<<": "shl", ">>": "ashr" if signed else "lshr",
            }
        ir_op = table.get(op)
        if ir_op is None:
            raise CodegenError(f"operator {op} on {ctype}", line)
        return ir_op

    def _rvalue_comparison(self, op: str, lhs: Value, ltype: ct.CType,
                           rhs: Value, rtype: ct.CType,
                           line: int) -> Tuple[Value, ct.CType]:
        if ltype.is_pointer or rtype.is_pointer:
            # normalize: allow comparing pointer against integer 0 (NULL)
            if ltype.is_pointer and rtype.is_integer:
                rhs = self._convert(rhs, rtype, ltype, line, explicit=True)
            elif rtype.is_pointer and ltype.is_integer:
                lhs = self._convert(lhs, ltype, rtype, line, explicit=True)
            elif ltype.is_pointer and rtype.is_pointer and ltype != rtype:
                rhs = self.builder.bitcast(rhs, ltype.ir)
            pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                    ">": "ugt", ">=": "uge"}[op]
            return self.builder.cmp(pred, lhs, rhs), ct.BOOL
        common = ct.usual_arithmetic_conversion(
            self._debool(ltype), self._debool(rtype))
        lhs = self._convert(lhs, ltype, common, line)
        rhs = self._convert(rhs, rtype, common, line)
        if common.is_float:
            pred = {"==": "feq", "!=": "fne", "<": "flt", "<=": "fle",
                    ">": "fgt", ">=": "fge"}[op]
        elif common.signed:
            pred = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                    ">": "sgt", ">=": "sge"}[op]
        else:
            pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                    ">": "ugt", ">=": "uge"}[op]
        return self.builder.cmp(pred, lhs, rhs), ct.BOOL

    def _rvalue_pointer_arith(self, op, lhs, ltype, rhs, rtype, line):
        if op == "+":
            if ltype.is_pointer and rtype.is_integer:
                index = self._convert(rhs, rtype, ct.LONG, line)
                return self.builder.index(lhs, index), ltype
            if rtype.is_pointer and ltype.is_integer:
                index = self._convert(lhs, ltype, ct.LONG, line)
                return self.builder.index(rhs, index), rtype
        if op == "-":
            if ltype.is_pointer and rtype.is_integer:
                index = self._convert(rhs, rtype, ct.LONG, line)
                neg = self.builder.sub(Constant(irt.I64, 0), index)
                return self.builder.index(lhs, neg), ltype
            if ltype.is_pointer and rtype.is_pointer:
                li = self.builder.cast("ptrtoint", lhs, irt.I64)
                ri = self.builder.cast("ptrtoint", rhs, irt.I64)
                diff = self.builder.sub(li, ri)
                elem = max(1, self._type_size(ltype.pointee))
                result = self.builder.binop(
                    "sdiv", diff, Constant(irt.I64, elem))
                return result, ct.LONG
        raise CodegenError(f"invalid pointer arithmetic {op}", line)

    def _rvalue_logical(self, expr: ast.Binary) -> Tuple[Value, ct.CType]:
        result = self.alloca_builder.alloca(irt.I32, "logtmp")
        rhs_block = self._new_block("log.rhs")
        end_block = self._new_block("log.end")
        lhs_cond = self._condition(expr.lhs)
        lhs_int = self.builder.zext(lhs_cond, irt.I32)
        self.builder.store(lhs_int, result)
        if expr.op == "&&":
            self.builder.condbr(lhs_cond, rhs_block, end_block)
        else:
            self.builder.condbr(lhs_cond, end_block, rhs_block)
        self.builder.position_at_end(rhs_block)
        rhs_cond = self._condition(expr.rhs)
        rhs_int = self.builder.zext(rhs_cond, irt.I32)
        self.builder.store(rhs_int, result)
        self.builder.br(end_block)
        self.builder.position_at_end(end_block)
        return self.builder.load(result), ct.INT

    def _rvalue_assign(self, expr: ast.Assign) -> Tuple[Value, ct.CType]:
        addr, ctype = self._lvalue(expr.target)
        if expr.op == "=":
            if ctype.is_struct:
                value, vtype = self._rvalue(expr.value)
                if not (vtype.is_struct and vtype.ir.name == ctype.ir.name):
                    raise CodegenError("struct assignment type mismatch",
                                       expr.line)
                self._emit_memcpy(addr, value, self._type_size(ctype))
                return addr, ctype
            value, vtype = self._rvalue_or_array(expr.value)
            converted = self._convert(value, vtype, ctype, expr.line)
            self.builder.store(converted, addr)
            return converted, ctype
        # compound assignment
        op = expr.op[:-1]
        old = self.builder.load(addr)
        rhs, rtype = self._rvalue_or_array(expr.value)
        if ctype.is_pointer:
            if op not in ("+", "-"):
                raise CodegenError(f"pointer {expr.op}", expr.line)
            index = self._convert(rhs, rtype, ct.LONG, expr.line)
            if op == "-":
                index = self.builder.sub(Constant(irt.I64, 0), index)
            new = self.builder.index(old, index)
        else:
            common = ct.usual_arithmetic_conversion(
                self._debool(ctype), self._debool(rtype))
            lhs_c = self._convert(old, ctype, common, expr.line)
            rhs_c = self._convert(rhs, rtype, common, expr.line)
            ir_op = self._select_binop(op, common, expr.line)
            result = self.builder.binop(ir_op, lhs_c, rhs_c)
            new = self._convert(result, common, ctype, expr.line,
                                explicit=True)
        self.builder.store(new, addr)
        return new, ctype

    def _rvalue_conditional(self, expr: ast.Conditional
                            ) -> Tuple[Value, ct.CType]:
        # Determine the common result type by speculatively type-checking
        # is complex; use: evaluate both arms in separate blocks into a
        # memory slot of the common type computed from a dry pass.
        cond = self._condition(expr.cond)
        true_block = self._new_block("cond.true")
        false_block = self._new_block("cond.false")
        end_block = self._new_block("cond.end")
        self.builder.condbr(cond, true_block, false_block)

        self.builder.position_at_end(true_block)
        tval, ttype = self._rvalue_or_array(expr.if_true)
        true_exit = self.builder.block

        self.builder.position_at_end(false_block)
        fval, ftype = self._rvalue_or_array(expr.if_false)
        false_exit = self.builder.block

        if ttype.is_pointer or ftype.is_pointer:
            common = ttype if ttype.is_pointer else ftype
        elif ttype.is_arith and ftype.is_arith:
            common = ct.usual_arithmetic_conversion(
                self._debool(ttype), self._debool(ftype))
        elif ttype == ftype:
            common = ttype
        else:
            raise CodegenError("incompatible conditional arms", expr.line)

        slot = self.alloca_builder.alloca(common.ir, "condtmp")
        self.builder.position_at_end(true_exit)
        self.builder.store(self._convert(tval, ttype, common, expr.line),
                           slot)
        self.builder.br(end_block)
        self.builder.position_at_end(false_exit)
        self.builder.store(self._convert(fval, ftype, common, expr.line),
                           slot)
        self.builder.br(end_block)
        self.builder.position_at_end(end_block)
        return self.builder.load(slot), common

    def _rvalue_call(self, expr: ast.CallExpr) -> Tuple[Value, ct.CType]:
        # Resolve the callee: direct function, or function-pointer value.
        callee_value: Value
        cfunc: ct.CFunc
        direct = None
        target = expr.callee
        while isinstance(target, ast.Unary) and target.op == "*":
            target = target.operand  # (*fp)(...) -> fp(...)
        if isinstance(target, ast.Ident):
            binding = self.scope.lookup(target.name)
            if binding is None:
                info = self._implicit_builtin(target.name)
                if info is None:
                    raise CodegenError(
                        f"call to undeclared function {target.name}",
                        expr.line)
                direct, cfunc = info.ir_fn, info.ctype
            elif binding[0] == "function":
                direct, cfunc = binding[1].ir_fn, binding[2]
            else:
                value, ctype = self._load_lvalue(binding[1], binding[2])
                if ctype.is_pointer and ctype.pointee.is_function:
                    callee_value, cfunc = value, ctype.pointee
                else:
                    raise CodegenError(
                        f"called object {target.name} is not a function",
                        expr.line)
        else:
            value, ctype = self._rvalue(target)
            if ctype.is_pointer and ctype.pointee.is_function:
                callee_value, cfunc = value, ctype.pointee
            elif ctype.is_function:
                callee_value, cfunc = value, ctype
            else:
                raise CodegenError("called object is not a function",
                                   expr.line)

        info = self.functions.get(direct.name) if direct is not None else None
        sret = info.sret if info is not None else cfunc.ret.is_struct

        args: List[Value] = []
        result_slot = None
        if sret:
            result_slot = self.alloca_builder.alloca(cfunc.ret.ir, "rettmp")
            args.append(result_slot)

        params = cfunc.params
        if len(expr.args) < len(params):
            raise CodegenError(
                f"too few arguments in call", expr.line)
        if len(expr.args) > len(params) and not cfunc.variadic:
            raise CodegenError("too many arguments in call", expr.line)
        for i, arg_expr in enumerate(expr.args):
            value, vtype = self._rvalue_or_array(arg_expr)
            if i < len(params):
                ptype = params[i]
                if ptype.is_pointer and ptype.pointee.is_struct and \
                        vtype.is_struct:
                    # struct by value: caller-private copy
                    copy = self.alloca_builder.alloca(vtype.ir, "bycopy")
                    self._emit_memcpy(copy, value, self._type_size(vtype))
                    args.append(copy)
                    continue
                args.append(self._convert(value, vtype, ptype, expr.line))
            else:
                # default argument promotions for varargs
                promoted = ct.promote(self._debool(vtype))
                args.append(self._convert(value, vtype, promoted,
                                          expr.line))
        if direct is not None:
            call = self.builder.call(direct, args)
        else:
            call = self.builder.call(callee_value, args)
        if sret:
            return result_slot, cfunc.ret
        return call, cfunc.ret

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def _convert(self, value: Value, from_t: ct.CType, to_t: ct.CType,
                 line: int, explicit: bool = False) -> Value:
        from_t = self._debool_value(from_t)
        if from_t == ct.BOOL and to_t != ct.BOOL:
            value = self.builder.zext(value, irt.I32)
            from_t = ct.INT
        if from_t == to_t or from_t.ir == to_t.ir and (
                from_t.is_pointer and to_t.is_pointer):
            return value
        if from_t.is_integer and to_t.is_integer:
            if from_t.bits == to_t.bits:
                return value
            if from_t.bits > to_t.bits:
                return self.builder.trunc(value, to_t.ir)
            if from_t.signed:
                return self.builder.sext(value, to_t.ir)
            return self.builder.zext(value, to_t.ir)
        if from_t.is_integer and to_t.is_float:
            op = "sitofp" if from_t.signed else "uitofp"
            return self.builder.cast(op, value, to_t.ir)
        if from_t.is_float and to_t.is_integer:
            op = "fptosi" if to_t.signed else "fptoui"
            return self.builder.cast(op, value, to_t.ir)
        if from_t.is_float and to_t.is_float:
            op = "fpext" if to_t.bits > from_t.bits else "fptrunc"
            return self.builder.cast(op, value, to_t.ir)
        if from_t.is_pointer and to_t.is_pointer:
            return self.builder.bitcast(value, to_t.ir)
        if from_t.is_pointer and to_t.is_integer:
            wide = self.builder.cast("ptrtoint", value, irt.I64)
            return self._convert(wide, ct.ULONG, to_t, line, explicit)
        if from_t.is_integer and to_t.is_pointer:
            wide = self._convert(value, from_t, ct.ULONG, line, explicit)
            return self.builder.cast("inttoptr", wide, to_t.ir)
        if from_t == ct.BOOL and to_t == ct.BOOL:
            return value
        raise CodegenError(f"cannot convert {from_t} to {to_t}", line)

    def _debool_value(self, ctype: ct.CType) -> ct.CType:
        return ctype

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _emit_memcpy(self, dst: Value, src: Value, size: int) -> None:
        info = self._implicit_builtin("memcpy")
        voidp = ct.CPointer(ct.VOID).ir
        dst_c = self.builder.bitcast(dst, voidp)
        src_c = self.builder.bitcast(src, voidp)
        self.builder.call(info.ir_fn,
                          [dst_c, src_c, Constant(irt.I64, size)])
