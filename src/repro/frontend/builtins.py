"""Known external (libc / runtime) function signatures for the frontend.

Functions in this table are implicitly declared on first use, mirroring how
real builds link against libc.  Anything *not* in this table that ends up as
an external call is an "unknown external library call", which the offload
function filter treats as machine specific (paper, Section 3.1).
"""

from __future__ import annotations

from typing import Dict

from . import ctypes as ct

VOIDP = ct.CPointer(ct.VOID)
CHARP = ct.CPointer(ct.CHAR)


def _fn(ret, params, variadic=False) -> ct.CFunc:
    return ct.CFunc(ret, list(params), variadic)


BUILTIN_SIGNATURES: Dict[str, ct.CFunc] = {
    # allocation
    "malloc": _fn(VOIDP, [ct.ULONG]),
    "free": _fn(ct.VOID, [VOIDP]),
    "calloc": _fn(VOIDP, [ct.ULONG, ct.ULONG]),
    "realloc": _fn(VOIDP, [VOIDP, ct.ULONG]),
    "u_malloc": _fn(VOIDP, [ct.ULONG]),
    "u_free": _fn(ct.VOID, [VOIDP]),
    # memory / strings
    "memcpy": _fn(VOIDP, [VOIDP, VOIDP, ct.ULONG]),
    "memmove": _fn(VOIDP, [VOIDP, VOIDP, ct.ULONG]),
    "memset": _fn(VOIDP, [VOIDP, ct.INT, ct.ULONG]),
    "strlen": _fn(ct.ULONG, [CHARP]),
    "strcpy": _fn(CHARP, [CHARP, CHARP]),
    "strncpy": _fn(CHARP, [CHARP, CHARP, ct.ULONG]),
    "strcmp": _fn(ct.INT, [CHARP, CHARP]),
    "strncmp": _fn(ct.INT, [CHARP, CHARP, ct.ULONG]),
    "strcat": _fn(CHARP, [CHARP, CHARP]),
    "atoi": _fn(ct.INT, [CHARP]),
    # stdio
    "printf": _fn(ct.INT, [CHARP], variadic=True),
    "sprintf": _fn(ct.INT, [CHARP, CHARP], variadic=True),
    "puts": _fn(ct.INT, [CHARP]),
    "putchar": _fn(ct.INT, [ct.INT]),
    "scanf": _fn(ct.INT, [CHARP], variadic=True),
    "getchar": _fn(ct.INT, []),
    "fopen": _fn(VOIDP, [CHARP, CHARP]),
    "fclose": _fn(ct.INT, [VOIDP]),
    "fread": _fn(ct.ULONG, [VOIDP, ct.ULONG, ct.ULONG, VOIDP]),
    "fwrite": _fn(ct.ULONG, [VOIDP, ct.ULONG, ct.ULONG, VOIDP]),
    "fgets": _fn(CHARP, [CHARP, ct.INT, VOIDP]),
    "fgetc": _fn(ct.INT, [VOIDP]),
    "feof": _fn(ct.INT, [VOIDP]),
    "fprintf": _fn(ct.INT, [VOIDP, CHARP], variadic=True),
    # math
    "sqrt": _fn(ct.DOUBLE, [ct.DOUBLE]),
    "fabs": _fn(ct.DOUBLE, [ct.DOUBLE]),
    "sin": _fn(ct.DOUBLE, [ct.DOUBLE]),
    "cos": _fn(ct.DOUBLE, [ct.DOUBLE]),
    "tan": _fn(ct.DOUBLE, [ct.DOUBLE]),
    "exp": _fn(ct.DOUBLE, [ct.DOUBLE]),
    "log": _fn(ct.DOUBLE, [ct.DOUBLE]),
    "floor": _fn(ct.DOUBLE, [ct.DOUBLE]),
    "ceil": _fn(ct.DOUBLE, [ct.DOUBLE]),
    "pow": _fn(ct.DOUBLE, [ct.DOUBLE, ct.DOUBLE]),
    "fmod": _fn(ct.DOUBLE, [ct.DOUBLE, ct.DOUBLE]),
    "atan2": _fn(ct.DOUBLE, [ct.DOUBLE, ct.DOUBLE]),
    "abs": _fn(ct.INT, [ct.INT]),
    "labs": _fn(ct.LONG, [ct.LONG]),
    # misc
    "rand": _fn(ct.INT, []),
    "srand": _fn(ct.VOID, [ct.UINT]),
    "exit": _fn(ct.VOID, [ct.INT]),
    "clock_ms": _fn(ct.LONG, []),
}
