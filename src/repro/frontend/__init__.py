"""Mini-C frontend: preprocess, lex, parse and lower C to the IR.

The Native Offloader design is frontend-agnostic (any language that lowers
to the IR can be offloaded); this package provides the C frontend used by
the SPEC-like workloads.
"""

from .lexer import LexError, Token, preprocess, tokenize
from .parser import ParseError, Parser, parse_c
from .codegen import CodeGen, CodegenError
from .driver import STANDARD_PREDEFINES, compile_c
from .builtins import BUILTIN_SIGNATURES

__all__ = [
    "LexError", "Token", "preprocess", "tokenize",
    "ParseError", "Parser", "parse_c",
    "CodeGen", "CodegenError",
    "STANDARD_PREDEFINES", "compile_c",
    "BUILTIN_SIGNATURES",
]
