"""Lexer for the mini-C frontend.

Supports the C89-ish subset the SPEC-like workloads are written in, plus a
minimal preprocessor (object-like ``#define`` and ``//``-``/* */`` comment
stripping) handled in :func:`preprocess`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class LexError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "struct", "union", "enum", "typedef", "extern", "static",
    "const", "if", "else", "while", "do", "for", "return", "break",
    "continue", "sizeof", "switch", "case", "default", "goto", "volatile",
    "register", "inline", "auto",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass
class Token:
    kind: str      # 'kw', 'id', 'int', 'float', 'char', 'str', 'op', 'eof'
    text: str
    line: int
    value: object = None

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)
_DEFINE_RE = re.compile(r"^[ \t]*#[ \t]*define[ \t]+(\w+)[ \t]+(.+?)[ \t]*$")
_DIRECTIVE_RE = re.compile(r"^[ \t]*#.*$")
_WORD_RE = re.compile(r"\b\w+\b")


def preprocess(source: str,
               predefines: Optional[Dict[str, str]] = None) -> str:
    """Strip comments, collect and substitute object-like #defines, and
    drop any other preprocessor directives (e.g. #include)."""

    def comment_replacer(match: re.Match) -> str:
        # Preserve line numbers by keeping newlines.
        return "\n" * match.group(0).count("\n")

    source = _COMMENT_RE.sub(comment_replacer, source)
    defines: Dict[str, str] = dict(predefines or {})
    out_lines: List[str] = []
    for line in source.split("\n"):
        m = _DEFINE_RE.match(line)
        if m:
            defines[m.group(1)] = m.group(2)
            out_lines.append("")
            continue
        if _DIRECTIVE_RE.match(line):
            out_lines.append("")
            continue
        out_lines.append(line)
    text = "\n".join(out_lines)

    if not defines:
        return text

    # Iterate substitution to support defines referencing defines, with a
    # small bound to stop runaway recursion.
    for _ in range(8):
        def word_replacer(match: re.Match) -> str:
            return defines.get(match.group(0), match.group(0))
        new_text = _WORD_RE.sub(word_replacer, text)
        if new_text == text:
            break
        text = new_text
    return text


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


def _decode_escapes(body: str, line: int) -> str:
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        i += 1
        if i >= len(body):
            raise LexError("dangling escape", line)
        esc = body[i]
        if esc == "x":
            j = i + 1
            while j < len(body) and body[j] in "0123456789abcdefABCDEF":
                j += 1
            out.append(chr(int(body[i + 1:j], 16)))
            i = j
            continue
        if esc not in _ESCAPES:
            raise LexError(f"unknown escape \\{esc}", line)
        out.append(_ESCAPES[esc])
        i += 1
    return "".join(out)


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and (source[j].isdigit() or source[j] == "."):
                    if source[j] == ".":
                        is_float = True
                    j += 1
                if j < n and source[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                text = source[i:j]
                value = float(text) if is_float else int(text)
            if j < n and source[j] in "fF" and is_float:
                j += 1
            while j < n and source[j] in "uUlL":
                j += 1
            tokens.append(Token("float" if is_float else "int",
                                source[i:j], line, value))
            i = j
            continue
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", line)
            body = _decode_escapes(source[i + 1:j], line)
            # adjacent string literal concatenation
            tokens.append(Token("str", source[i:j + 1], line, body))
            i = j + 1
            continue
        if ch == "'":
            j = i + 1
            while j < n and source[j] != "'":
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexError("unterminated char literal", line)
            body = _decode_escapes(source[i + 1:j], line)
            if len(body) != 1:
                raise LexError("char literal must hold one character", line)
            tokens.append(Token("char", source[i:j + 1], line, ord(body)))
            i = j + 1
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)

    # Merge adjacent string literals ("a" "b" -> "ab").
    merged: List[Token] = []
    for token in tokens:
        if (token.kind == "str" and merged and merged[-1].kind == "str"):
            prev = merged[-1]
            merged[-1] = Token("str", prev.text + token.text, prev.line,
                               str(prev.value) + str(token.value))
        else:
            merged.append(token)
    merged.append(Token("eof", "", line))
    return merged
