"""Dominator tree computation (Cooper–Harvey–Kennedy iterative algorithm).

Dominators feed natural-loop detection, which the hot function/loop profiler
uses to attribute execution time to loops (paper, Section 3.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.values import BasicBlock
from .cfg import CFG


class DominatorTree:
    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        rpo = self.cfg.reachable_blocks()
        index = {id(b): i for i, b in enumerate(rpo)}
        entry = self.cfg.entry
        idom: Dict[int, BasicBlock] = {id(entry): entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[id(a)] > index[id(b)]:
                    a = idom[id(a)]
                while index[id(b)] > index[id(a)]:
                    b = idom[id(b)]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo[1:]:
                preds = [p for p in self.cfg.predecessors.get(block, [])
                         if id(p) in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True

        for block in rpo:
            if block is entry:
                self.idom[block] = None
            else:
                self.idom[block] = idom.get(id(block))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def dominators_of(self, block: BasicBlock) -> List[BasicBlock]:
        chain: List[BasicBlock] = []
        node: Optional[BasicBlock] = block
        while node is not None:
            chain.append(node)
            node = self.idom.get(node)
        return chain
