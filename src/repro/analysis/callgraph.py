"""Call graph construction.

Used by the function filter (a function is machine specific if anything it
*transitively* calls is machine specific), by unused-function removal in the
server partition, and by the static partitioning baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

import networkx as nx

from ..ir import instructions as inst
from ..ir.module import Module
from ..ir.values import Function, FunctionRefInit, AggregateInit


class CallGraph:
    def __init__(self, module: Module):
        self.module = module
        self.graph = nx.DiGraph()
        self.address_taken: Set[str] = set()
        self._build()

    def _build(self) -> None:
        for fn in self.module.functions.values():
            self.graph.add_node(fn.name)
        for fn in self.module.defined_functions():
            for instruction in fn.instructions():
                if isinstance(instruction, inst.Call):
                    callee = instruction.called_function
                    if callee is not None:
                        self.graph.add_edge(fn.name, callee.name)
                # A function used as a plain operand (not a callee) has its
                # address taken — it may be called indirectly from anywhere.
                operands = (instruction.operands[1:]
                            if isinstance(instruction, inst.Call)
                            else instruction.operands)
                for op in operands:
                    if isinstance(op, Function):
                        self.address_taken.add(op.name)
        for gv in self.module.globals.values():
            self._scan_initializer(gv.initializer)
        # Address-taken functions are conservatively callable from any
        # function containing an indirect call.
        indirect_callers = [
            fn.name for fn in self.module.defined_functions()
            if any(isinstance(i, inst.Call) and i.is_indirect
                   for i in fn.instructions())
        ]
        for caller in indirect_callers:
            for target in self.address_taken:
                if target in self.module.functions:
                    self.graph.add_edge(caller, target)

    def _scan_initializer(self, init) -> None:
        if isinstance(init, FunctionRefInit):
            self.address_taken.add(init.function_name)
        elif isinstance(init, AggregateInit):
            for element in init.elements:
                self._scan_initializer(element)

    def callees(self, name: str) -> List[str]:
        return sorted(self.graph.successors(name))

    def callers(self, name: str) -> List[str]:
        return sorted(self.graph.predecessors(name))

    def transitive_callees(self, name: str) -> Set[str]:
        if name not in self.graph:
            return set()
        return set(nx.descendants(self.graph, name))

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        seen: Set[str] = set()
        for root in roots:
            if root in self.graph:
                seen.add(root)
                seen |= nx.descendants(self.graph, root)
        return seen
