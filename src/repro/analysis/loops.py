"""Natural loop detection.

The paper's target selector considers both whole functions *and* loops as
offload candidates (e.g. ``main_for.cond`` in 183.equake / 470.lbm /
482.sphinx3, ``try_place_while.cond`` in 175.vpr).  Loops are identified by
their header block; a candidate loop is offloaded by outlining its body.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.values import BasicBlock, Function
from .cfg import CFG
from .dominators import DominatorTree


class Loop:
    """A natural loop: header plus body blocks."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock],
                 function: Function):
        self.header = header
        self.blocks = blocks
        self.function = function
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def name(self) -> str:
        """Qualified name in the paper's style, e.g. ``main_for.cond``."""
        return f"{self.function.name}_{self.header.name}"

    @property
    def depth(self) -> int:
        depth, node = 0, self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are branched to from inside."""
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for succ in block.successors():
                if succ not in self.blocks and succ not in exits:
                    exits.append(succ)
        return exits

    def __repr__(self) -> str:
        return f"<Loop {self.name} ({len(self.blocks)} blocks)>"


class LoopInfo:
    """All natural loops of a function, with nesting structure."""

    def __init__(self, fn: Function):
        self.function = fn
        self.cfg = CFG(fn)
        self.domtree = DominatorTree(self.cfg)
        self.loops: List[Loop] = []
        self._block_to_innermost: Dict[int, Loop] = {}
        self._find_loops()
        self._build_nesting()

    def _find_loops(self) -> None:
        # Back edge: tail -> header where header dominates tail.
        header_bodies: Dict[int, Set[BasicBlock]] = {}
        headers: Dict[int, BasicBlock] = {}
        for block in self.cfg.reachable_blocks():
            for succ in block.successors():
                if self.domtree.dominates(succ, block):
                    body = header_bodies.setdefault(id(succ), {succ})
                    headers[id(succ)] = succ
                    self._collect_body(succ, block, body)
        for hid, body in header_bodies.items():
            self.loops.append(Loop(headers[hid], body, self.function))
        # Deterministic order: by position of header in the function.
        position = {id(b): i for i, b in enumerate(self.function.blocks)}
        self.loops.sort(key=lambda lp: position.get(id(lp.header), 1 << 30))

    def _collect_body(self, header: BasicBlock, tail: BasicBlock,
                      body: Set[BasicBlock]) -> None:
        stack = [tail]
        while stack:
            block = stack.pop()
            if block in body:
                continue
            body.add(block)
            stack.extend(self.cfg.predecessors.get(block, []))

    def _build_nesting(self) -> None:
        # Innermost loop of each block = smallest containing loop.
        by_size = sorted(self.loops, key=lambda lp: len(lp.blocks))
        for loop in by_size:
            for block in loop.blocks:
                self._block_to_innermost.setdefault(id(block), loop)
        for loop in by_size:
            candidates = [other for other in self.loops
                          if other is not loop
                          and loop.header in other.blocks
                          and loop.blocks <= other.blocks]
            if candidates:
                loop.parent = min(candidates, key=lambda lp: len(lp.blocks))
                loop.parent.children.append(loop)

    def innermost_loop_of(self, block: BasicBlock) -> Optional[Loop]:
        return self._block_to_innermost.get(id(block))

    def top_level_loops(self) -> List[Loop]:
        return [lp for lp in self.loops if lp.parent is None]
