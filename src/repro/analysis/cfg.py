"""Control-flow graph utilities over IR functions."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.values import BasicBlock, Function


class CFG:
    """Successor/predecessor maps plus reachability for one function."""

    def __init__(self, fn: Function):
        if not fn.is_definition:
            raise ValueError(f"cannot build CFG of external {fn.name}")
        self.function = fn
        self.successors: Dict[BasicBlock, List[BasicBlock]] = {}
        self.predecessors: Dict[BasicBlock, List[BasicBlock]] = {}
        for block in fn.blocks:
            self.successors[block] = block.successors()
            self.predecessors.setdefault(block, [])
        for block in fn.blocks:
            for succ in self.successors[block]:
                self.predecessors.setdefault(succ, []).append(block)

    @property
    def entry(self) -> BasicBlock:
        return self.function.entry

    def reachable_blocks(self) -> List[BasicBlock]:
        """Blocks reachable from the entry, in reverse post-order."""
        visited: Set[int] = set()
        order: List[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            if id(block) in visited:
                return
            visited.add(id(block))
            for succ in self.successors.get(block, []):
                visit(succ)
            order.append(block)

        visit(self.entry)
        order.reverse()
        return order

    def remove_unreachable_blocks(self) -> int:
        """Drop blocks not reachable from entry; returns how many."""
        reachable = set(id(b) for b in self.reachable_blocks())
        dead = [b for b in self.function.blocks if id(b) not in reachable]
        for block in dead:
            self.function.blocks.remove(block)
        return len(dead)
