"""Static analyses over the IR: CFG, dominators, natural loops, call graph."""

from .cfg import CFG
from .dominators import DominatorTree
from .loops import Loop, LoopInfo
from .callgraph import CallGraph

__all__ = ["CFG", "DominatorTree", "Loop", "LoopInfo", "CallGraph"]
