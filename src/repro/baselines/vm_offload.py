"""VM-based offloading baseline (CloneCloud / COMET class).

The paper's motivating comparison: Dalvik/CLR-based offloading systems can
only offload managed code.  A native C application either (a) cannot be
offloaded at all, or (b) must first be rewritten in Java, paying the
interpretation/JIT gap — Mehrara et al. [19] measured Java/JavaScript more
than 6x slower than the equivalent C.

This module models both options so benchmarks can compare Native Offloader
against the VM route on the same workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

# Managed-vs-native single-thread slowdown (Mehrara et al. [19]).
DEFAULT_VM_SLOWDOWN = 6.2

# Fraction of a rewritten app's time a COMET-style DSM system can offload
# (its coverage is high for compute kernels, like Native Offloader's).
DEFAULT_VM_COVERAGE = 0.95

# DSM synchronization overhead per offloaded second (COMET's field-level
# tracking is finer-grained, and costlier, than page-level CoD).
DSM_OVERHEAD_FRACTION = 0.12


@dataclass
class VMOffloadEstimate:
    """Predicted timings for the managed-rewrite route."""

    native_local_seconds: float
    vm_slowdown: float = DEFAULT_VM_SLOWDOWN
    coverage: float = DEFAULT_VM_COVERAGE
    performance_ratio: float = 5.8

    @property
    def vm_local_seconds(self) -> float:
        """The app rewritten in Java, running locally."""
        return self.native_local_seconds * self.vm_slowdown

    @property
    def vm_offload_seconds(self) -> float:
        """The rewritten app offloaded by a COMET-style system.  The
        offloaded portion runs on the server — still inside a VM."""
        local_part = self.vm_local_seconds * (1.0 - self.coverage)
        server_part = (self.vm_local_seconds * self.coverage
                       / self.performance_ratio)
        dsm = server_part * DSM_OVERHEAD_FRACTION
        return local_part + server_part + dsm

    @property
    def speedup_vs_native_local(self) -> float:
        """End-to-end speedup the VM route delivers over running the
        *native* app locally — the fair comparison point."""
        if self.vm_offload_seconds <= 0:
            return 0.0
        return self.native_local_seconds / self.vm_offload_seconds


def can_offload_native(requires_vm: bool) -> bool:
    """The categorical claim of Table 5: VM-based systems cannot offload
    native applications at all."""
    return not requires_vm
