"""Comparison baselines: conservative static partitioning and VM-based
offloading (the two related-work classes the paper argues against)."""

from .static_partition import StaticPartitioner, StaticPartitionResult
from .vm_offload import (DEFAULT_VM_COVERAGE, DEFAULT_VM_SLOWDOWN,
                         DSM_OVERHEAD_FRACTION, VMOffloadEstimate,
                         can_offload_native)

__all__ = [
    "StaticPartitioner", "StaticPartitionResult",
    "DEFAULT_VM_COVERAGE", "DEFAULT_VM_SLOWDOWN", "DSM_OVERHEAD_FRACTION",
    "VMOffloadEstimate", "can_offload_native",
]
