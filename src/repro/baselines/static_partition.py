"""Conservative static partitioning baseline (Li et al. [10], Wang & Li
[14] class).

These systems model the program as a task graph (vertices = functions,
edges = calls/data flows) and compute an optimal mobile/server partition by
min-cut.  Their weakness — the reason the paper builds a UVA + copy-on-
demand runtime instead — is *conservative static alias analysis*: for a
program with irregular data access, the partitioner must assume an
offloaded task may touch far more data than it actually does, and must pin
any function it cannot analyze (indirect calls, interactive I/O) to the
mobile device.  On regular media-style kernels the estimate is tight and
the baseline does fine; on irregular programs it grossly overpays
communication or refuses to offload at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from ..analysis.callgraph import CallGraph
from ..ir import instructions as inst
from ..ir.module import Module
from ..offload.filter import FunctionFilter
from ..profiler.profile_data import ProfileData
from ..runtime.network import NetworkModel


@dataclass
class StaticPartitionResult:
    server_functions: Set[str]
    mobile_functions: Set[str]
    predicted_seconds: float
    local_seconds: float
    conservatism: float           # data over-approximation factor
    analyzable: bool              # did anything move to the server?

    @property
    def predicted_speedup(self) -> float:
        if self.predicted_seconds <= 0:
            return 0.0
        return self.local_seconds / self.predicted_seconds


class StaticPartitioner:
    """Min-cut partitioning over the task graph with conservative
    may-touch data estimates."""

    def __init__(self, module: Module, profile: ProfileData,
                 network: NetworkModel, performance_ratio: float):
        self.module = module
        self.profile = profile
        self.network = network
        self.ratio = performance_ratio
        self.callgraph = CallGraph(module)
        self.filter = FunctionFilter(module, self.callgraph,
                                     enable_remote_io=False)

    # -- conservatism model ------------------------------------------------
    def conservatism_factor(self) -> float:
        """How much a static may-touch analysis over-approximates the data
        an offloaded task uses.  Regular programs (affine array accesses)
        analyze tightly; function pointers and input-dependent control
        flow blow the bound up."""
        factor = 1.0
        has_fn_ptr = any(
            isinstance(i, inst.Call) and i.is_indirect
            for fn in self.module.defined_functions()
            for i in fn.instructions())
        if has_fn_ptr:
            factor += 3.0
        has_file_io = any(
            isinstance(i, inst.Call) and i.called_function is not None
            and i.called_function.name in ("fread", "fgets", "fgetc")
            for fn in self.module.defined_functions()
            for i in fn.instructions())
        if has_file_io:
            factor += 2.0
        return factor

    def _pinned_to_mobile(self, name: str) -> bool:
        """Functions the static analyzer cannot move: machine specific
        (no remote I/O without a runtime), containing indirect calls, or
        the entry point."""
        if name == "main":
            return True
        verdict = self.filter.verdict(name)
        if verdict.machine_specific:
            return True
        fn = self.module.get_function(name)
        if fn is None or not fn.is_definition:
            return True
        return any(isinstance(i, inst.Call) and i.is_indirect
                   for i in fn.instructions())

    # -- the min-cut --------------------------------------------------
    def partition(self) -> StaticPartitionResult:
        conservatism = self.conservatism_factor()
        bandwidth = self.network.bandwidth_bytes_per_s
        graph = nx.DiGraph()
        source, sink = "__mobile__", "__server__"

        functions = [fn.name for fn in self.module.defined_functions()
                     if self.profile.candidates.get(fn.name) is not None]
        local_total = self.profile.program_seconds

        for name in functions:
            prof = self.profile.candidates[name]
            # Exclusive (self) time approximation: inclusive time minus
            # callees' inclusive time, floored at zero.
            callees = self.callgraph.callees(name)
            callee_time = sum(
                self.profile.candidates[c].total_seconds
                for c in callees
                if c in self.profile.candidates and c != name)
            self_time = max(prof.total_seconds - callee_time, 0.0)
            mobile_cost = self_time
            server_cost = self_time / self.ratio
            if self._pinned_to_mobile(name):
                graph.add_edge(source, name, capacity=float("inf"))
            else:
                # cut s->n  <=> n runs on the server (pays server cost)
                graph.add_edge(source, name, capacity=server_cost)
            # cut n->t  <=> n runs on the mobile device
            graph.add_edge(name, sink, capacity=mobile_cost)

        # Call edges: crossing the boundary costs a conservative transfer
        # of everything the callee may touch, once per invocation.
        for name in functions:
            prof = self.profile.candidates[name]
            for callee in self.callgraph.callees(name):
                cprof = self.profile.candidates.get(callee)
                if cprof is None or callee == name:
                    continue
                may_touch = cprof.memory_bytes * conservatism
                comm = (2.0 * may_touch / bandwidth
                        * max(cprof.invocations, 1))
                if comm > 0:
                    _add_undirected_capacity(graph, name, callee, comm)

        cut_value, (mobile_side, server_side) = nx.minimum_cut(
            graph, source, sink)
        mobile_functions = {n for n in mobile_side if not n.startswith("__")}
        server_functions = {n for n in server_side if not n.startswith("__")}
        predicted = min(cut_value, local_total)
        return StaticPartitionResult(
            server_functions=server_functions,
            mobile_functions=mobile_functions,
            predicted_seconds=predicted,
            local_seconds=local_total,
            conservatism=conservatism,
            analyzable=bool(server_functions))


def _add_undirected_capacity(graph: nx.DiGraph, a: str, b: str,
                             capacity: float) -> None:
    for u, v in ((a, b), (b, a)):
        if graph.has_edge(u, v):
            graph[u][v]["capacity"] += capacity
        else:
            graph.add_edge(u, v, capacity=capacity)
