"""Target architecture descriptions and the ABI layout engine."""

from .arch import (BIG, CYCLE_TIME_SCALE, INST_CLASSES, LITTLE, TargetArch,
                   performance_ratio)
from .abi import DataLayout, StructLayout, layouts_differ
from .presets import ARM32, ARM64, MIPS32BE, PRESETS, X86, X86_64, target_named

__all__ = [
    "BIG", "CYCLE_TIME_SCALE", "LITTLE", "INST_CLASSES", "TargetArch",
    "performance_ratio",
    "DataLayout", "StructLayout", "layouts_differ",
    "ARM32", "ARM64", "MIPS32BE", "PRESETS", "X86", "X86_64", "target_named",
]
