"""ABI layout engine: sizes, alignments and struct field offsets per target.

This is the machinery behind Figure 4 of the paper: the *same* IR struct
type gets different offsets/sizes on different architectures, so a unified
virtual address space alone is not enough — the memory-layout realignment
pass must impose one layout (the mobile one) on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ir.types import (ArrayType, FloatType, IRType, IntType, PointerType,
                        StructType)
from .arch import TargetArch


@dataclass(frozen=True)
class StructLayout:
    """Concrete layout of a struct on some target: per-field byte offsets,
    total size and alignment."""

    struct_name: str
    offsets: Tuple[int, ...]
    size: int
    align: int

    def offset_of(self, field_index: int) -> int:
        return self.offsets[field_index]


class DataLayout:
    """Sizes/alignments/offsets for every IR type on one target.

    ``pointer_bytes`` may be overridden (without changing the compute
    architecture) — that is how memory unification forces the server to use
    the mobile pointer width in memory, paying an address-size conversion on
    every pointer access.  Likewise struct layouts may be overridden with a
    unified layout map.
    """

    def __init__(self, arch: TargetArch,
                 pointer_bytes: int = 0,
                 struct_overrides: Dict[str, StructLayout] = None,
                 byte_order: str = ""):
        self.arch = arch
        self.pointer_bytes = pointer_bytes or arch.pointer_bytes
        self.byte_order = byte_order or arch.endianness
        self._struct_cache: Dict[str, StructLayout] = {}
        self.struct_overrides = dict(struct_overrides or {})

    # -- scalar sizes ---------------------------------------------------
    def size_of(self, type: IRType) -> int:
        if isinstance(type, IntType):
            return max(1, type.bits // 8)
        if isinstance(type, FloatType):
            return type.bits // 8
        if isinstance(type, PointerType):
            return self.pointer_bytes
        if isinstance(type, ArrayType):
            return self.size_of(type.element) * type.count
        if isinstance(type, StructType):
            return self.struct_layout(type).size
        raise TypeError(f"type {type} has no size")

    def align_of(self, type: IRType) -> int:
        if isinstance(type, (IntType, FloatType, PointerType)):
            natural = self.size_of(type)
            return min(natural, self.arch.max_field_align)
        if isinstance(type, ArrayType):
            return self.align_of(type.element)
        if isinstance(type, StructType):
            return self.struct_layout(type).align
        raise TypeError(f"type {type} has no alignment")

    # -- struct layout ----------------------------------------------------
    def struct_layout(self, struct: StructType) -> StructLayout:
        override = self.struct_overrides.get(struct.name)
        if override is not None:
            return override
        cached = self._struct_cache.get(struct.name)
        if cached is not None:
            return cached
        layout = self._compute_layout(struct)
        self._struct_cache[struct.name] = layout
        return layout

    def _compute_layout(self, struct: StructType) -> StructLayout:
        offsets: List[int] = []
        offset = 0
        max_align = 1
        for _, ftype in struct.fields:
            align = self.align_of(ftype)
            max_align = max(max_align, align)
            offset = _round_up(offset, align)
            offsets.append(offset)
            offset += self.size_of(ftype)
        size = _round_up(offset, max_align)
        return StructLayout(struct.name, tuple(offsets), size, max_align)

    # -- GEP offset computation ---------------------------------------
    def element_offset(self, aggregate: IRType, index: int) -> int:
        """Byte offset of element ``index`` within an aggregate."""
        if isinstance(aggregate, StructType):
            return self.struct_layout(aggregate).offset_of(index)
        if isinstance(aggregate, ArrayType):
            return self.size_of(aggregate.element) * index
        raise TypeError(f"cannot index into {aggregate}")

    def clone_with(self, pointer_bytes: int = 0,
                   struct_overrides: Dict[str, StructLayout] = None,
                   byte_order: str = "") -> "DataLayout":
        return DataLayout(
            self.arch,
            pointer_bytes=pointer_bytes or self.pointer_bytes,
            struct_overrides=(struct_overrides
                              if struct_overrides is not None
                              else self.struct_overrides),
            byte_order=byte_order or self.byte_order,
        )


def _round_up(value: int, align: int) -> int:
    if align <= 1:
        return value
    return (value + align - 1) // align * align


def layouts_differ(a: DataLayout, b: DataLayout,
                   structs: List[StructType]) -> List[str]:
    """Names of structs whose layouts differ between two data layouts.

    The memory-layout realignment pass uses this to decide which structs
    need a unified layout at all (no-op when mobile and server agree)."""
    differing = []
    for struct in structs:
        if struct.is_opaque:
            continue
        if a.struct_layout(struct) != b.struct_layout(struct):
            differing.append(struct.name)
    return differing
