"""Predefined target architectures.

The evaluation platform of the paper is a Samsung Galaxy S5 (2.5 GHz
quad-core Krait 400, ARMv7, 32-bit little-endian) against a Dell XPS 8700
(Intel i7-4790, 3.6 GHz, x86-64 little-endian).  Table 1 of the paper
measures the resulting single-thread gap at roughly 5.4-5.9x; the timing
models below are tuned so :func:`repro.targets.arch.performance_ratio`
lands in that band.

The IA32 and big-endian targets exist to exercise memory-layout realignment
(Figure 4 is an IA32-vs-ARM example) and endianness translation, which are
no-ops on the default ARM/x86-64 pair.
"""

from __future__ import annotations

from .arch import BIG, LITTLE, TargetArch

# Mobile side: in-order-ish core, lower effective clock, expensive division.
ARM32 = TargetArch(
    name="arm32",
    pointer_bytes=4,
    endianness=LITTLE,
    clock_hz=2.5e9,
    cycles={
        "alu": 1.2,
        "fpu": 3.2,
        "mem": 2.9,
        "branch": 2.0,
        "call": 5.0,
        "div": 20.0,
    },
    max_field_align=8,
)

ARM64 = TargetArch(
    name="arm64",
    pointer_bytes=8,
    endianness=LITTLE,
    clock_hz=2.8e9,
    cycles={
        "alu": 1.2,
        "fpu": 2.8,
        "mem": 2.6,
        "branch": 1.8,
        "call": 4.5,
        "div": 14.0,
    },
    max_field_align=8,
)

# Server side: wide OoO core at 3.6 GHz.
X86_64 = TargetArch(
    name="x86_64",
    pointer_bytes=8,
    endianness=LITTLE,
    clock_hz=3.6e9,
    cycles={
        "alu": 0.3,
        "fpu": 0.8,
        "mem": 0.7,
        "branch": 0.5,
        "call": 1.2,
        "div": 5.0,
    },
    max_field_align=8,
)

# IA32: same core model as x86_64 but 32-bit pointers and the System V
# i386 rule that caps double/long-long alignment inside structs at 4.
X86 = TargetArch(
    name="x86",
    pointer_bytes=4,
    endianness=LITTLE,
    clock_hz=3.6e9,
    cycles=dict(X86_64.cycles),
    max_field_align=4,
)

# A big-endian 32-bit target (MIPS-like) used to exercise the endianness
# translation pass; no mainstream phone/server pair differs in endianness,
# which is why the paper reports zero endianness overhead.
MIPS32BE = TargetArch(
    name="mips32be",
    pointer_bytes=4,
    endianness=BIG,
    clock_hz=1.2e9,
    cycles=dict(ARM32.cycles),
    max_field_align=8,
)

PRESETS = {t.name: t for t in (ARM32, ARM64, X86_64, X86, MIPS32BE)}


def target_named(name: str) -> TargetArch:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; available: {sorted(PRESETS)}")
