"""Target architecture descriptions.

A :class:`TargetArch` plays the role of an LLVM back end's target
description: pointer width, endianness, ABI alignment rules and a simple
timing model (clock rate + per-instruction-class cycle counts).  The Native
Offloader compiler "achieves information about target architectures from
back-end compilers" (paper, Section 2); in this reproduction the passes
query :class:`TargetArch` objects directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


LITTLE = "little"
BIG = "big"

# Calibration of simulated time: one interpreted IR operation stands for a
# bundle of native instructions (the interpreter executes whole C
# statements' worth of address arithmetic, checks and libc work per IR op).
# Scaling every charged cycle by this constant puts scaled-down workloads
# into the same compute-vs-network operating regime as the paper's
# full-size SPEC runs, while leaving the mobile/server performance ratio
# untouched.
CYCLE_TIME_SCALE = 100.0

# Instruction classes used by the timing model.  The interpreter classifies
# every executed IR instruction into one of these.
INST_CLASSES = (
    "alu",        # integer arithmetic / logic / compares / casts
    "fpu",        # floating point arithmetic
    "mem",        # loads and stores
    "branch",     # control transfers
    "call",       # call / return overhead
    "div",        # integer or FP division
)


@dataclass(frozen=True)
class TargetArch:
    """Immutable description of one architecture."""

    name: str
    pointer_bytes: int              # 4 (32-bit) or 8 (64-bit)
    endianness: str                 # "little" or "big"
    clock_hz: float                 # effective core clock
    cycles: Dict[str, float] = field(default_factory=dict)
    # Maximum alignment the ABI enforces inside aggregates.  x86-32 System V
    # caps double/long-long alignment at 4, which is what makes the Figure 4
    # layouts differ between IA32 and ARM.
    max_field_align: int = 8

    def __post_init__(self):
        if self.pointer_bytes not in (4, 8):
            raise ValueError("pointer_bytes must be 4 or 8")
        if self.endianness not in (LITTLE, BIG):
            raise ValueError("endianness must be 'little' or 'big'")
        missing = [c for c in INST_CLASSES if c not in self.cycles]
        if missing:
            raise ValueError(f"timing model missing classes: {missing}")

    @property
    def pointer_bits(self) -> int:
        return self.pointer_bytes * 8

    def seconds_for_cycles(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def cycles_for(self, inst_class: str) -> float:
        return self.cycles[inst_class]

    def __str__(self) -> str:
        return self.name


def performance_ratio(fast: TargetArch, slow: TargetArch) -> float:
    """Average single-thread performance ratio between two targets.

    This is the paper's ``R`` (they assume R = 5 between the Galaxy S5 and
    the XPS 8700; Table 1 measures 5.4-5.9x).  We estimate it from the
    timing models as the ratio of mean per-class instruction latency.
    """
    def mean_latency(arch: TargetArch) -> float:
        total = sum(arch.cycles[c] for c in INST_CLASSES)
        return total / len(INST_CLASSES) / arch.clock_hz

    return mean_latency(slow) / mean_latency(fast)
