"""Power-state model and energy accounting for the mobile device.

Replaces the Monsoon power monitor of the paper's testbed.  Section 5.2
reports the Galaxy S5 drawing roughly 300 mW idle, 1350 mW while waiting
for signals, 2000 mW receiving, and 2000-5000 mW transmitting; local
computation on the Krait cores sits near the top of that range.  Battery
consumption is the integral of state power over (simulated) time, and the
power trace over time is Figure 8's series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# Default state powers in milliwatts (paper, Section 5.2).
DEFAULT_POWER_MW: Dict[str, float] = {
    "idle": 300.0,
    "compute": 3100.0,       # local CPU-bound execution
    "wait": 1350.0,          # waiting for the server during offload
    "queue": 1350.0,         # waiting for a pooled server slot (fleet)
    "receive": 2000.0,
    "transmit_fast": 2000.0,  # 802.11ac transmission draw floor
    "transmit_slow": 1700.0,  # 802.11n draws less per unit time (Fig. 8c)
    "remote_io": 2000.0,      # servicing remote I/O requests (Fig. 8b)
}
# Transmission power rises with offered load, up to ~5000 mW.
TRANSMIT_MAX_MW = 5000.0


@dataclass
class PowerInterval:
    """One homogeneous power interval of the trace."""

    start: float      # seconds
    end: float
    state: str
    power_mw: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def energy_mj(self) -> float:
        return self.power_mw * self.duration


@dataclass
class PowerTrace:
    """A timeline of power intervals; Figure 8 is a plot of this."""

    intervals: List[PowerInterval] = field(default_factory=list)

    def record(self, start: float, end: float, state: str,
               power_mw: float) -> None:
        if end < start:
            raise ValueError("interval ends before it starts")
        if end > start:
            self.intervals.append(PowerInterval(start, end, state, power_mw))

    @property
    def total_energy_mj(self) -> float:
        return sum(iv.energy_mj for iv in self.intervals)

    @property
    def duration(self) -> float:
        if not self.intervals:
            return 0.0
        return max(iv.end for iv in self.intervals)

    def sample(self, resolution: float) -> List[Tuple[float, float]]:
        """(time, power_mw) samples at a fixed resolution — the plottable
        series for Figure 8."""
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        samples: List[Tuple[float, float]] = []
        t = 0.0
        end = self.duration
        intervals = sorted(self.intervals, key=lambda iv: iv.start)
        while t <= end:
            power = 0.0
            for iv in intervals:
                if iv.start <= t < iv.end:
                    power = max(power, iv.power_mw)
            samples.append((t, power))
            t += resolution
        return samples

    def energy_by_state(self) -> Dict[str, float]:
        by_state: Dict[str, float] = {}
        for iv in self.intervals:
            by_state[iv.state] = by_state.get(iv.state, 0.0) + iv.energy_mj
        return by_state


class EnergyMeter:
    """Accumulates mobile-side energy as the offload session advances its
    simulated clock."""

    def __init__(self, power_mw: Dict[str, float] = None):
        self.power_mw = dict(DEFAULT_POWER_MW)
        if power_mw:
            self.power_mw.update(power_mw)
        self.trace = PowerTrace()

    def power_of(self, state: str) -> float:
        try:
            return self.power_mw[state]
        except KeyError:
            raise KeyError(f"unknown power state {state!r}") from None

    def transmit_power(self, utilization: float, slow_network: bool) -> float:
        """Transmission draw scales with link utilization (Section 5.2:
        2000 mW to 5000 mW)."""
        utilization = min(max(utilization, 0.0), 1.0)
        floor = self.power_of(
            "transmit_slow" if slow_network else "transmit_fast")
        return floor + (TRANSMIT_MAX_MW - floor) * utilization

    def charge(self, start: float, end: float, state: str,
               power_mw: float = None) -> float:
        """Record an interval; returns the energy in mJ."""
        power = power_mw if power_mw is not None else self.power_of(state)
        self.trace.record(start, end, state, power)
        return power * (end - start)

    @property
    def total_energy_mj(self) -> float:
        return self.trace.total_energy_mj
