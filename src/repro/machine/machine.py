"""The simulated machine: one architecture + one address space + one loaded
program image.

Two of these — a mobile device and a server — are what the Native Offloader
runtime coordinates.  Each machine loads the (partitioned) module with its
own back end conventions: its own function addresses, its own native global
addresses, its own data layout.  Those per-machine differences are precisely
what the memory-unification passes must neutralize for shared data.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..ir.module import Module
from ..ir.values import (AggregateInit, BytesInit, Function, FunctionRefInit,
                         GlobalRefInit, GlobalVariable, Initializer,
                         ScalarInit, ZeroInit)
from ..ir.types import ArrayType, IRType, PointerType, StructType
from ..targets.abi import DataLayout
from ..targets.arch import TargetArch
from .allocator import Allocator
from .fs import IOEnvironment
from .memory import AddressSpace
from .values import encode_scalar

# Address-space map.  Everything below 4 GiB so every address fits a 32-bit
# mobile pointer — the precondition for unified 32/64-bit pointer storage.
CODE_BASES = {"mobile": 0x0001_0000, "server": 0x0002_0000}
GLOBAL_BASES = {"mobile": 0x0010_0000, "server": 0x0018_0000}
# Both libc heaps occupy the same virtual range, as two native processes'
# heaps would: without UVA heap replacement, server-side allocations
# collide with mobile-allocated objects.
NATIVE_HEAP_BASES = {"mobile": 0x0100_0000, "server": 0x0100_0000}
NATIVE_HEAP_SIZE = 0x0100_0000
UVA_HEAP_BASE = 0x4000_0000
UVA_HEAP_SIZE = 0x1000_0000
MOBILE_STACK_TOP = 0x7FF0_0000
SERVER_STACK_TOP = 0xBFF0_0000  # "stack reallocation": far from the mobile stack
STACK_SIZE = 0x0080_0000
FUNCTION_STRIDE = 64  # spacing between synthetic function addresses


class Machine:
    """One simulated device (role: "mobile" or "server")."""

    def __init__(self, arch: TargetArch, role: str = "mobile",
                 io: Optional[IOEnvironment] = None,
                 page_size: int = 4096):
        if role not in ("mobile", "server"):
            raise ValueError("role must be 'mobile' or 'server'")
        self.arch = arch
        self.role = role
        self.layout = DataLayout(arch)
        self.memory = AddressSpace(page_size=page_size)
        self.io = io if io is not None else IOEnvironment()
        self.native_heap = Allocator(NATIVE_HEAP_BASES[role],
                                     NATIVE_HEAP_SIZE)
        # The UVA allocator is installed by the offload runtime; programs
        # that never offload still get one so u_malloc works stand-alone.
        self.uva_heap = Allocator(UVA_HEAP_BASE, UVA_HEAP_SIZE)
        self.stack_top = (MOBILE_STACK_TOP if role == "mobile"
                          else SERVER_STACK_TOP)
        self.module: Optional[Module] = None
        self.function_addresses: Dict[str, int] = {}
        self.address_to_function: Dict[int, Function] = {}
        self.global_addresses: Dict[str, int] = {}
        self.builtins: Dict[str, Callable] = {}
        # Translation-overhead counters (address-size conversion and
        # endianness translation), charged by the interpreter.
        self.pointer_conversions = 0
        self.endian_swaps = 0

    # -- configuration ------------------------------------------------------
    def set_layout(self, layout: DataLayout) -> None:
        """Install a (possibly unified) data layout."""
        self.layout = layout

    def register_builtin(self, name: str, fn: Callable) -> None:
        self.builtins[name] = fn

    @property
    def heap_for_malloc(self) -> Allocator:
        return self.native_heap

    # -- program loading --------------------------------------------------
    def load(self, module: Module) -> None:
        """Back-end + loader: assign code/data addresses and initialize
        global memory."""
        self.module = module
        self._assign_function_addresses(module)
        self._assign_global_addresses(module)
        self._initialize_globals(module)

    def _assign_function_addresses(self, module: Module) -> None:
        addr = CODE_BASES[self.role]
        for name in module.functions:
            fn = module.functions[name]
            self.function_addresses[name] = addr
            self.address_to_function[addr] = fn
            addr += FUNCTION_STRIDE

    def _assign_global_addresses(self, module: Module) -> None:
        addr = GLOBAL_BASES[self.role]
        for name, gv in module.globals.items():
            size = max(1, self.layout.size_of(gv.value_type))
            align = max(self.layout.align_of(gv.value_type), 1)
            if gv.uva_allocated:
                # Referenced-global reallocation (Section 3.2): place the
                # variable on the UVA heap.  Allocation order is the module
                # order, so mobile and server compute identical addresses.
                self.global_addresses[name] = self.uva_heap.alloc(size)
            else:
                addr = _round_up(addr, align)
                self.global_addresses[name] = addr
                addr += size

    def _initialize_globals(self, module: Module) -> None:
        for name, gv in module.globals.items():
            base = self.global_addresses[name]
            data = self.encode_initializer(gv.initializer, gv.value_type)
            self.map_range(base, len(data))
            self.memory.write(base, data)
        self.memory.clear_dirty()

    def map_range(self, address: int, size: int) -> None:
        """Ensure pages backing [address, address+size) exist.

        If a fault handler is installed (the UVA manager's copy-on-demand
        hook), an unmapped page is first offered to it: an allocation that
        lands on a partially-shared page must *fetch* that page, not
        shadow it with zeroes."""
        first = self.memory.page_index(address)
        last = self.memory.page_index(address + max(size, 1) - 1)
        handler = self.memory.fault_handler
        for pidx in range(first, last + 1):
            if pidx in self.memory.pages:
                continue
            if handler is not None and handler(pidx):
                continue
            self.memory.map_page(pidx)

    # -- initializer encoding ----------------------------------------------
    def encode_initializer(self, init: Initializer, type: IRType) -> bytes:
        size = max(1, self.layout.size_of(type))
        if isinstance(init, ZeroInit):
            return b"\x00" * size
        if isinstance(init, ScalarInit):
            return encode_scalar(init.value, type, self.layout).ljust(
                size, b"\x00")
        if isinstance(init, BytesInit):
            if len(init.data) > size:
                raise ValueError(
                    f"initializer too large for {type} ({len(init.data)} "
                    f"> {size})")
            return init.data.ljust(size, b"\x00")
        if isinstance(init, FunctionRefInit):
            addr = self.function_addresses[init.function_name]
            return addr.to_bytes(self.layout.pointer_bytes,
                                 self.layout.byte_order)
        if isinstance(init, GlobalRefInit):
            addr = self.global_addresses[init.global_name] + init.offset
            return addr.to_bytes(self.layout.pointer_bytes,
                                 self.layout.byte_order)
        if isinstance(init, AggregateInit):
            return self._encode_aggregate(init, type, size)
        raise TypeError(f"unknown initializer {init!r}")

    def _encode_aggregate(self, init: AggregateInit, type: IRType,
                          size: int) -> bytes:
        buf = bytearray(size)
        if isinstance(type, ArrayType):
            stride = self.layout.size_of(type.element)
            for i, element in enumerate(init.elements):
                data = self.encode_initializer(element, type.element)
                buf[i * stride:i * stride + len(data)] = data
            return bytes(buf)
        if isinstance(type, StructType):
            layout = self.layout.struct_layout(type)
            for i, element in enumerate(init.elements):
                ftype = type.field_types[i]
                data = self.encode_initializer(element, ftype)
                off = layout.offset_of(i)
                buf[off:off + len(data)] = data
            return bytes(buf)
        raise TypeError(f"aggregate initializer for non-aggregate {type}")

    # -- function address helpers -----------------------------------------
    def address_of_function(self, name: str) -> int:
        return self.function_addresses[name]

    def function_at(self, address: int) -> Optional[Function]:
        return self.address_to_function.get(address)

    def address_of_global(self, name: str) -> int:
        return self.global_addresses[name]

    def __repr__(self) -> str:
        return f"<Machine {self.role}:{self.arch.name}>"


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align
