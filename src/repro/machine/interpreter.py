"""IR interpreter with per-architecture cycle accounting.

This is the "CPU" of a simulated machine.  Execution is functionally exact
(byte-accurate memory, real control flow) while *time* is modelled: every
executed instruction charges cycles from the target's timing model, so the
same program takes ~5-6x longer on the ARM mobile profile than on the x86
server profile — the gap the paper's Table 1 measures.

The interpreter also charges and counts the two memory-unification
overheads the paper discusses: address-size conversion (negligible) and
endianness translation (zero on the default little/little pair).
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence

from ..ir import instructions as inst
from ..ir.types import ArrayType, FloatType, IntType, PointerType, StructType
from ..ir.values import (Argument, BasicBlock, Constant, Function,
                         GlobalVariable, UndefValue, Value)
from .machine import Machine, STACK_SIZE
from .values import decode_scalar, encode_scalar, scalar_size, to_signed, to_unsigned


class InterpreterError(Exception):
    pass


class BadFunctionPointer(InterpreterError):
    """Indirect call through an address that is not a function entry point
    on this machine — e.g. a *mobile* code address dereferenced on the
    server without function-pointer mapping."""

    def __init__(self, address: int):
        super().__init__(f"indirect call to non-function address {address:#x}")
        self.address = address


class StackOverflow(InterpreterError):
    pass


class ExecutionLimitExceeded(InterpreterError):
    pass


class ExitProgram(Exception):
    """Raised by the exit() builtin to unwind the interpreter."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class Observer:
    """Hook interface for profilers and the offload runtime.  All methods
    are optional no-ops.  ``wants_memory`` / ``wants_blocks`` let cheap
    observers (e.g. the runtime's target timer) opt out of the hot
    per-access and per-block callbacks."""

    wants_memory = True
    wants_blocks = True

    def enter_function(self, fn: Function, cycles: float) -> None:
        pass

    def exit_function(self, fn: Function, cycles: float) -> None:
        pass

    def enter_block(self, block: BasicBlock, cycles: float) -> None:
        pass

    def memory_access(self, address: int, size: int, is_write: bool) -> None:
        pass

    def heap_alloc(self, size: int) -> None:
        pass


_DIV_OPS = {"sdiv", "udiv", "srem", "urem", "fdiv", "frem"}


class Interpreter:
    """Executes IR on a :class:`Machine`."""

    def __init__(self, machine: Machine,
                 observer: Optional[Observer] = None,
                 max_instructions: int = 500_000_000):
        self.machine = machine
        self.observer = observer
        self._mem_observer = (observer if observer is not None
                              and observer.wants_memory else None)
        self._block_observer = (observer if observer is not None
                                and observer.wants_blocks else None)
        self.max_instructions = max_instructions
        self.sp = machine.stack_top
        self.instruction_count = 0
        self.cycles = 0.0
        self.cycles_by_class: Dict[str, float] = {}
        self.call_depth = 0
        # Deep guest recursion needs several Python frames per guest
        # frame; lift the interpreter limit so the *simulated* stack (or
        # the call-depth guard) is what overflows, deterministically.
        if sys.getrecursionlimit() < 30000:
            sys.setrecursionlimit(30000)
        from ..targets.arch import CYCLE_TIME_SCALE
        self._scale = CYCLE_TIME_SCALE
        self._cycle_table = {k: v * self._scale
                             for k, v in machine.arch.cycles.items()}
        # Per-instruction execution plans (layout-dependent constants are
        # resolved once; the data layout is fixed for an interpreter's
        # lifetime).
        self._access_plans: Dict[int, tuple] = {}
        self._gep_plans: Dict[int, list] = {}
        # Precomputed opcode dispatch for every straight-line opcode:
        # one dict lookup + bound-method call per instruction instead of
        # walking an if/elif chain.  Control flow (br/condbr/switch/ret)
        # stays inline in _run_blocks because it owes the loop a
        # next-block / return-value answer.
        self._dispatch: Dict[str, Callable] = {
            "binop": self._do_binop,
            "cmp": self._do_cmp,
            "load": self._do_load,
            "store": self._exec_store,
            "gep": self._do_gep,
            "cast": self._do_cast,
            "call": self._do_call,
            "alloca": self._do_alloca,
            "select": self._do_select,
            "asm": self._do_asm,
            "syscall": self._do_syscall,
        }

    # -- accounting -----------------------------------------------------
    def charge(self, inst_class: str, count: float = 1.0) -> None:
        amount = self._cycle_table[inst_class] * count
        self.cycles += amount
        self.cycles_by_class[inst_class] = (
            self.cycles_by_class.get(inst_class, 0.0) + amount)

    def charge_cycles(self, cycles: float, inst_class: str = "alu") -> None:
        scaled = cycles * self._scale
        self.cycles += scaled
        self.cycles_by_class[inst_class] = (
            self.cycles_by_class.get(inst_class, 0.0) + scaled)

    def charge_raw_cycles(self, cycles: float,
                          inst_class: str = "alu") -> None:
        """Charge unscaled cycles — for runtime services whose cost is a
        real machine-cycle figure (e.g. a hash-table lookup), not an
        IR-operation bundle."""
        self.cycles += cycles
        self.cycles_by_class[inst_class] = (
            self.cycles_by_class.get(inst_class, 0.0) + cycles)

    @property
    def time_seconds(self) -> float:
        return self.cycles / self.machine.arch.clock_hz

    # -- entry points ---------------------------------------------------
    def call_by_name(self, name: str, args: Sequence = ()):
        fn = self.machine.module.function(name)
        return self.call_function(fn, list(args))

    def run_main(self, argv: Sequence[str] = ()) -> int:
        """Execute ``main`` like a C runtime would; returns the exit code."""
        main = self.machine.module.get_function("main")
        if main is None:
            raise InterpreterError("module has no main function")
        args: List = []
        if len(main.ftype.params) >= 1:
            args.append(to_unsigned(len(argv) + 1, 32))
        if len(main.ftype.params) >= 2:
            args.append(0)  # argv pointer: not modelled
        try:
            result = self.call_function(main, args)
        except ExitProgram as exit_:
            return exit_.code
        return to_signed(result, 32) if result is not None else 0

    # -- call machinery --------------------------------------------------
    def call_function(self, fn: Function, args: List):
        if not fn.is_definition:
            return self._call_external(fn, args)
        if self.call_depth > 4000:
            raise StackOverflow(f"call depth exceeded in {fn.name}")
        self.charge("call")
        if self.observer is not None:
            self.observer.enter_function(fn, self.cycles)
        saved_sp = self.sp
        self.call_depth += 1
        frame: Dict[int, object] = {}
        for arg, value in zip(fn.args, args):
            frame[id(arg)] = value
        try:
            result = self._run_blocks(fn, frame)
        finally:
            self.call_depth -= 1
            self.sp = saved_sp
            if self.observer is not None:
                self.observer.exit_function(fn, self.cycles)
        return result

    def _call_external(self, fn: Function, args: List):
        builtin = self.machine.builtins.get(fn.name)
        if builtin is None:
            raise InterpreterError(
                f"call to unknown external function {fn.name}")
        self.charge("call")
        return builtin(self, args)

    # -- the dispatch loop ------------------------------------------------
    def _do_binop(self, instruction, frame) -> None:
        frame[id(instruction)] = self._exec_binop(instruction, frame)

    def _do_cmp(self, instruction, frame) -> None:
        frame[id(instruction)] = self._exec_cmp(instruction, frame)

    def _do_load(self, instruction, frame) -> None:
        frame[id(instruction)] = self._exec_load(instruction, frame)

    def _do_gep(self, instruction, frame) -> None:
        frame[id(instruction)] = self._exec_gep(instruction, frame)

    def _do_cast(self, instruction, frame) -> None:
        frame[id(instruction)] = self._exec_cast(instruction, frame)

    def _do_call(self, instruction, frame) -> None:
        result = self._exec_call(instruction, frame)
        if not instruction.type.is_void:
            frame[id(instruction)] = result

    def _do_alloca(self, instruction, frame) -> None:
        frame[id(instruction)] = self._exec_alloca(instruction)

    def _do_select(self, instruction, frame) -> None:
        self.charge("alu")
        cond = self._value(instruction.operands[0], frame)
        picked = (instruction.operands[1] if cond
                  else instruction.operands[2])
        frame[id(instruction)] = self._value(picked, frame)

    def _do_asm(self, instruction, frame) -> None:
        # Inline assembly executes natively on its home machine;
        # charge a token cost.
        self.charge("alu")

    def _do_syscall(self, instruction, frame) -> None:
        self.charge("call")
        frame[id(instruction)] = 0

    def _run_blocks(self, fn: Function, frame: Dict[int, object]):
        dispatch_get = self._dispatch.get
        max_instructions = self.max_instructions
        block = fn.entry
        while True:
            if self._block_observer is not None:
                self._block_observer.enter_block(block, self.cycles)
            next_block = None
            for instruction in block.instructions:
                self.instruction_count += 1
                if self.instruction_count > max_instructions:
                    raise ExecutionLimitExceeded(
                        f"exceeded {self.max_instructions} instructions")
                op = instruction.opcode
                handler = dispatch_get(op)
                if handler is not None:
                    handler(instruction, frame)
                    continue
                if op == "br":
                    self.charge("branch")
                    next_block = instruction.target
                    break
                elif op == "condbr":
                    self.charge("branch")
                    cond = self._value(instruction.cond, frame)
                    next_block = (instruction.if_true if cond
                                  else instruction.if_false)
                    break
                elif op == "switch":
                    self.charge("branch")
                    value = self._value(instruction.value, frame)
                    next_block = instruction.default
                    for const, target in instruction.cases:
                        if to_unsigned(const, 64) == to_unsigned(value, 64):
                            next_block = target
                            break
                    break
                elif op == "ret":
                    self.charge("branch")
                    if instruction.value is None:
                        return None
                    return self._value(instruction.value, frame)
                elif op == "unreachable":
                    raise InterpreterError(
                        f"reached unreachable in {fn.name}")
                else:
                    raise InterpreterError(f"unknown opcode {op}")
            if next_block is None:
                raise InterpreterError(
                    f"block {block.name} in {fn.name} fell through")
            block = next_block

    # -- operand evaluation ------------------------------------------------
    def _value(self, value: Value, frame: Dict[int, object]):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, (inst.Instruction, Argument)):
            try:
                return frame[id(value)]
            except KeyError:
                raise InterpreterError(
                    f"use of undefined value {value.short()}") from None
        if isinstance(value, GlobalVariable):
            return self.machine.global_addresses[value.name]
        if isinstance(value, Function):
            return self.machine.function_addresses[value.name]
        if isinstance(value, UndefValue):
            return 0
        raise InterpreterError(f"cannot evaluate {value!r}")

    # -- instruction execution ----------------------------------------
    def _exec_binop(self, instruction: inst.BinOp, frame):
        op = instruction.op
        self.charge("div" if op in _DIV_OPS
                    else "fpu" if op.startswith("f") else "alu")
        lhs = self._value(instruction.lhs, frame)
        rhs = self._value(instruction.rhs, frame)
        type_ = instruction.type
        if isinstance(type_, FloatType):
            return _float_binop(op, lhs, rhs)
        bits = type_.bits
        return _int_binop(op, lhs, rhs, bits)

    def _exec_cmp(self, instruction: inst.Cmp, frame):
        pred = instruction.pred
        self.charge("fpu" if pred.startswith("f") else "alu")
        lhs = self._value(instruction.lhs, frame)
        rhs = self._value(instruction.rhs, frame)
        type_ = instruction.lhs.type
        if pred.startswith("f"):
            return 1 if _float_cmp(pred, lhs, rhs) else 0
        if pred in ("eq", "ne", "ult", "ule", "ugt", "uge") and not isinstance(
                type_, IntType):
            # pointer comparison: unsigned
            bits = self.machine.layout.pointer_bytes * 8
        else:
            bits = type_.bits if isinstance(type_, IntType) else (
                self.machine.layout.pointer_bytes * 8)
        return 1 if _int_cmp(pred, lhs, rhs, bits) else 0

    def _access_overheads(self, type_, size: int) -> None:
        machine = self.machine
        layout = machine.layout
        if isinstance(type_, PointerType) and (
                layout.pointer_bytes != machine.arch.pointer_bytes):
            # Address-size conversion (Section 3.2): zero/trunc-extend on
            # every pointer-sized memory access.  Negligible cost, counted.
            machine.pointer_conversions += 1
            self.charge("alu", 0.5)
        if size > 1 and layout.byte_order != machine.arch.endianness:
            # Endianness translation (Section 3.2): byte swap per access.
            machine.endian_swaps += 1
            self.charge("alu", 1.0)

    def _access_plan(self, instruction, type_) -> tuple:
        """(size, kind, extra_overhead) for a load/store; kind is 'i'
        (int/pointer) or a struct.Struct for floats."""
        plan = self._access_plans.get(id(instruction))
        if plan is not None:
            return plan
        if not type_.is_scalar:
            raise InterpreterError(
                f"aggregate access of {type_}; the frontend must lower "
                "struct copies to memcpy")
        machine = self.machine
        layout = machine.layout
        size = scalar_size(type_, layout)
        if type_.is_float:
            import struct as _struct
            fmt = ("<" if layout.byte_order == "little" else ">") + (
                "f" if type_.bits == 32 else "d")
            kind = _struct.Struct(fmt)
        else:
            kind = "i"
        is_ptr_conv = (isinstance(type_, PointerType)
                       and layout.pointer_bytes != machine.arch.pointer_bytes)
        is_swap = (size > 1
                   and layout.byte_order != machine.arch.endianness)
        plan = (size, kind, is_ptr_conv, is_swap, layout.byte_order)
        self._access_plans[id(instruction)] = plan
        return plan

    def _exec_load(self, instruction: inst.Load, frame):
        self.charge("mem")
        address = self._value(instruction.pointer, frame)
        size, kind, ptr_conv, swap, order = self._access_plan(
            instruction, instruction.type)
        if self._mem_observer is not None:
            self._mem_observer.memory_access(address, size, False)
        data = self.machine.memory.read(address, size)
        if ptr_conv:
            self.machine.pointer_conversions += 1
            self.charge("alu", 0.5)
        if swap:
            self.machine.endian_swaps += 1
            self.charge("alu", 1.0)
        if kind == "i":
            return int.from_bytes(data, order)
        return kind.unpack(data)[0]

    def _exec_store(self, instruction: inst.Store, frame):
        self.charge("mem")
        address = self._value(instruction.pointer, frame)
        value = self._value(instruction.value, frame)
        size, kind, ptr_conv, swap, order = self._access_plan(
            instruction, instruction.value.type)
        if self._mem_observer is not None:
            self._mem_observer.memory_access(address, size, True)
        if ptr_conv:
            self.machine.pointer_conversions += 1
            self.charge("alu", 0.5)
        if swap:
            self.machine.endian_swaps += 1
            self.charge("alu", 1.0)
        if kind == "i":
            if value >= (1 << (size * 8)):
                raise OverflowError(
                    f"pointer {value:#x} does not fit in {size} bytes; "
                    "UVA addresses must stay below the unified pointer "
                    "range")
            data = value.to_bytes(size, order)
        else:
            data = kind.pack(value)
        self.machine.memory.write(address, data)

    def _gep_plan(self, instruction: inst.Gep) -> list:
        plan = self._gep_plans.get(id(instruction))
        if plan is not None:
            return plan
        layout = self.machine.layout
        pointee = instruction.base.type.pointee
        indices = instruction.indices
        bits0 = (indices[0].type.bits
                 if isinstance(indices[0].type, IntType) else 64)
        plan = [("first", layout.size_of(pointee), bits0, indices[0])]
        current = pointee
        for index in indices[1:]:
            if isinstance(current, StructType):
                field = int(index.value)  # verified constant
                plan.append(
                    ("const",
                     layout.struct_layout(current).offset_of(field)))
                current = current.field_types[field]
            elif isinstance(current, ArrayType):
                ibits = (index.type.bits
                         if isinstance(index.type, IntType) else 64)
                plan.append(
                    ("index", layout.size_of(current.element), ibits,
                     index))
                current = current.element
            else:
                raise InterpreterError(f"gep into non-aggregate {current}")
        self._gep_plans[id(instruction)] = plan
        return plan

    def _exec_gep(self, instruction: inst.Gep, frame):
        self.charge("alu")
        base = self._value(instruction.base, frame)
        offset = 0
        for step in self._gep_plan(instruction):
            tag = step[0]
            if tag == "const":
                offset += step[1]
            else:
                _, scale, bits, index = step
                offset += to_signed(self._value(index, frame),
                                    bits) * scale
        return (base + offset) & 0xFFFFFFFFFFFFFFFF

    def _exec_cast(self, instruction: inst.Cast, frame):
        self.charge("alu")
        value = self._value(instruction.value, frame)
        op = instruction.op
        src = instruction.value.type
        dst = instruction.type
        if op == "trunc":
            return to_unsigned(value, dst.bits)
        if op == "zext":
            return to_unsigned(value, dst.bits)
        if op == "sext":
            return to_unsigned(to_signed(value, src.bits), dst.bits)
        if op == "fptrunc" or op == "fpext":
            return float(value)
        if op == "fptosi":
            return to_unsigned(int(value), dst.bits)
        if op == "fptoui":
            return to_unsigned(int(abs(value)), dst.bits)
        if op == "sitofp":
            return float(to_signed(value, src.bits))
        if op == "uitofp":
            return float(value)
        if op == "ptrtoint":
            return to_unsigned(value, dst.bits)
        if op == "inttoptr":
            return to_unsigned(value, 64)
        if op == "bitcast":
            return value
        raise InterpreterError(f"unknown cast {op}")

    def _exec_alloca(self, instruction: inst.Alloca) -> int:
        self.charge("alu")
        size = max(1, self.machine.layout.size_of(instruction.allocated_type))
        size = (size + 15) // 16 * 16
        self.sp -= size
        if self.sp < self.machine.stack_top - STACK_SIZE:
            raise StackOverflow("simulated stack exhausted")
        self.machine.map_range(self.sp, size)
        return self.sp

    def _exec_call(self, instruction: inst.Call, frame):
        args = [self._value(a, frame) for a in instruction.args]
        callee = instruction.callee
        if isinstance(callee, Function):
            return self.call_function(callee, args)
        # Indirect call: resolve the runtime address to a function on
        # *this* machine.  Untranslated foreign addresses fault here.
        address = self._value(callee, frame)
        fn = self.machine.function_at(address)
        if fn is None:
            raise BadFunctionPointer(address)
        return self.call_function(fn, args)


# -- pure helpers ---------------------------------------------------------

def _int_binop(op: str, lhs: int, rhs: int, bits: int) -> int:
    if op == "add":
        return to_unsigned(lhs + rhs, bits)
    if op == "sub":
        return to_unsigned(lhs - rhs, bits)
    if op == "mul":
        return to_unsigned(lhs * rhs, bits)
    if op == "sdiv":
        a, b = to_signed(lhs, bits), to_signed(rhs, bits)
        if b == 0:
            raise InterpreterError("integer division by zero")
        return to_unsigned(int(a / b), bits)
    if op == "udiv":
        if rhs == 0:
            raise InterpreterError("integer division by zero")
        return to_unsigned(lhs // rhs, bits)
    if op == "srem":
        a, b = to_signed(lhs, bits), to_signed(rhs, bits)
        if b == 0:
            raise InterpreterError("integer remainder by zero")
        return to_unsigned(a - int(a / b) * b, bits)
    if op == "urem":
        if rhs == 0:
            raise InterpreterError("integer remainder by zero")
        return to_unsigned(lhs % rhs, bits)
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "shl":
        return to_unsigned(lhs << (rhs % bits), bits)
    if op == "lshr":
        return lhs >> (rhs % bits)
    if op == "ashr":
        return to_unsigned(to_signed(lhs, bits) >> (rhs % bits), bits)
    raise InterpreterError(f"unknown int binop {op}")


def _float_binop(op: str, lhs: float, rhs: float) -> float:
    if op == "fadd":
        return lhs + rhs
    if op == "fsub":
        return lhs - rhs
    if op == "fmul":
        return lhs * rhs
    if op == "fdiv":
        if rhs == 0.0:
            return float("inf") if lhs > 0 else (
                float("-inf") if lhs < 0 else float("nan"))
        return lhs / rhs
    if op == "frem":
        import math
        return math.fmod(lhs, rhs)
    raise InterpreterError(f"unknown float binop {op}")


def _int_cmp(pred: str, lhs: int, rhs: int, bits: int) -> bool:
    if pred == "eq":
        return lhs == rhs
    if pred == "ne":
        return lhs != rhs
    if pred in ("slt", "sle", "sgt", "sge"):
        a, b = to_signed(lhs, bits), to_signed(rhs, bits)
    else:
        a, b = lhs, rhs
    if pred in ("slt", "ult"):
        return a < b
    if pred in ("sle", "ule"):
        return a <= b
    if pred in ("sgt", "ugt"):
        return a > b
    if pred in ("sge", "uge"):
        return a >= b
    raise InterpreterError(f"unknown int predicate {pred}")


def _float_cmp(pred: str, lhs: float, rhs: float) -> bool:
    if pred == "feq":
        return lhs == rhs
    if pred == "fne":
        return lhs != rhs
    if pred == "flt":
        return lhs < rhs
    if pred == "fle":
        return lhs <= rhs
    if pred == "fgt":
        return lhs > rhs
    if pred == "fge":
        return lhs >= rhs
    raise InterpreterError(f"unknown float predicate {pred}")
