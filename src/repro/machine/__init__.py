"""Simulated machines: paged memory, IR interpreter, libc, I/O, energy."""

from .memory import AddressSpace, SegmentationFault, DEFAULT_PAGE_SIZE
from .allocator import Allocator, OutOfMemoryError
from .fs import IOEnvironment, SimFile
from .machine import (Machine, CODE_BASES, GLOBAL_BASES, MOBILE_STACK_TOP,
                      NATIVE_HEAP_BASES, SERVER_STACK_TOP, UVA_HEAP_BASE,
                      UVA_HEAP_SIZE)
from .interpreter import (BadFunctionPointer, ExecutionLimitExceeded,
                          ExitProgram, Interpreter, InterpreterError,
                          Observer, StackOverflow)
from .libc import install_libc, map_range
from .energy import (EnergyMeter, PowerInterval, PowerTrace,
                     DEFAULT_POWER_MW, TRANSMIT_MAX_MW)
from .values import decode_scalar, encode_scalar, scalar_size, to_signed, to_unsigned

__all__ = [
    "AddressSpace", "SegmentationFault", "DEFAULT_PAGE_SIZE",
    "Allocator", "OutOfMemoryError",
    "IOEnvironment", "SimFile",
    "Machine", "CODE_BASES", "GLOBAL_BASES", "MOBILE_STACK_TOP",
    "NATIVE_HEAP_BASES", "SERVER_STACK_TOP", "UVA_HEAP_BASE", "UVA_HEAP_SIZE",
    "BadFunctionPointer", "ExecutionLimitExceeded", "ExitProgram",
    "Interpreter", "InterpreterError", "Observer", "StackOverflow",
    "install_libc", "map_range",
    "EnergyMeter", "PowerInterval", "PowerTrace", "DEFAULT_POWER_MW",
    "TRANSMIT_MAX_MW",
    "decode_scalar", "encode_scalar", "scalar_size", "to_signed",
    "to_unsigned",
]
