"""Simulated I/O environment of a machine: file system, stdin script,
captured stdout/stderr.

The mobile device owns the real environment; the server sees I/O only
through the remote I/O manager (paper, Section 3.4).  Keeping the
environment an explicit object makes "remote" I/O a matter of routing calls
to the *mobile* environment and charging network cost.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional


class SimFile:
    """An open file: a byte buffer plus a cursor."""

    def __init__(self, path: str, data: bytearray, writable: bool,
                 append: bool = False):
        self.path = path
        self.data = data
        self.writable = writable
        self.pos = len(data) if append else 0
        self.closed = False

    def read(self, size: int) -> bytes:
        chunk = bytes(self.data[self.pos:self.pos + size])
        self.pos += len(chunk)
        return chunk

    def read_line(self, limit: int) -> bytes:
        end = self.data.find(b"\n", self.pos, self.pos + limit - 1)
        if end < 0:
            return self.read(limit - 1)
        return self.read(end - self.pos + 1)

    def write(self, data: bytes) -> int:
        if not self.writable:
            return 0
        end = self.pos + len(data)
        if end > len(self.data):
            self.data.extend(b"\x00" * (end - len(self.data)))
        self.data[self.pos:end] = data
        self.pos = end
        return len(data)

    @property
    def at_eof(self) -> bool:
        return self.pos >= len(self.data)


class IOEnvironment:
    """File system + standard streams for one machine."""

    def __init__(self, files: Optional[Dict[str, bytes]] = None,
                 stdin: bytes = b""):
        self.files: Dict[str, bytearray] = {
            path: bytearray(data) for path, data in (files or {}).items()}
        self.stdin = io.BytesIO(stdin)
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.open_files: Dict[int, SimFile] = {}
        self._next_handle = 16  # 0-2 reserved for stdio, keep a gap
        # Counters for the evaluation harness.
        self.stdout_ops = 0
        self.file_ops = 0

    # -- files ----------------------------------------------------------
    def add_file(self, path: str, data: bytes) -> None:
        self.files[path] = bytearray(data)

    def open(self, path: str, mode: str) -> int:
        """Returns a handle (>0) or 0 on failure, like fopen's NULL."""
        self.file_ops += 1
        reading = "r" in mode
        writable = any(m in mode for m in ("w", "a", "+"))
        if reading and path not in self.files and "+" not in mode:
            return 0
        if "w" in mode:
            self.files[path] = bytearray()
        elif path not in self.files:
            self.files[path] = bytearray()
        handle = self._next_handle
        self._next_handle += 1
        self.open_files[handle] = SimFile(
            path, self.files[path], writable or "a" in mode,
            append="a" in mode)
        return handle

    def file(self, handle: int) -> Optional[SimFile]:
        return self.open_files.get(handle)

    def close(self, handle: int) -> int:
        f = self.open_files.pop(handle, None)
        if f is None:
            return -1
        f.closed = True
        return 0

    # -- transactional snapshots ---------------------------------------
    def snapshot(self) -> dict:
        """Capture everything a remote-I/O burst can mutate: file
        contents, open-handle cursors, stream buffers and counters.

        The offload runtime snapshots the mobile environment before a
        risky (fault-injected) invocation so a mid-invocation abort can
        roll every observable effect back before the local replay
        (docs/fault-model.md, "Fallback semantics").
        """
        files = {path: bytes(data) for path, data in self.files.items()}
        handles = {}
        for handle, f in self.open_files.items():
            shared = f.data is self.files.get(f.path)
            handles[handle] = (f.path, f.pos, f.writable, f.closed,
                               shared, None if shared else bytes(f.data))
        return {
            "files": files,
            "handles": handles,
            "stdout_len": len(self.stdout),
            "stderr_len": len(self.stderr),
            "stdin_pos": self.stdin.tell(),
            "next_handle": self._next_handle,
            "stdout_ops": self.stdout_ops,
            "file_ops": self.file_ops,
        }

    def restore(self, snap: dict) -> None:
        """Roll back to a :meth:`snapshot` state."""
        self.files = {path: bytearray(data)
                      for path, data in snap["files"].items()}
        self.open_files = {}
        for handle, (path, pos, writable, closed, shared,
                     detached) in snap["handles"].items():
            if shared and path in self.files:
                buffer = self.files[path]
            else:
                buffer = bytearray(detached or b"")
            f = SimFile(path, buffer, writable)
            f.pos = pos
            f.closed = closed
            self.open_files[handle] = f
        del self.stdout[snap["stdout_len"]:]
        del self.stderr[snap["stderr_len"]:]
        self.stdin.seek(snap["stdin_pos"])
        self._next_handle = snap["next_handle"]
        self.stdout_ops = snap["stdout_ops"]
        self.file_ops = snap["file_ops"]

    # -- standard streams ---------------------------------------------------
    def write_stdout(self, data: bytes) -> None:
        self.stdout_ops += 1
        self.stdout.extend(data)

    def write_stderr(self, data: bytes) -> None:
        self.stderr.extend(data)

    def read_stdin(self, size: int) -> bytes:
        return self.stdin.read(size)

    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")

    def stderr_text(self) -> str:
        return self.stderr.decode("utf-8", errors="replace")
