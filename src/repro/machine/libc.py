"""Builtin C library for the simulated machines.

External functions in the IR are bound to these Python implementations by
name.  The offload function filter classifies them (I/O, allocation, pure
math, ...) via the tables in :mod:`repro.offload.filter`; the remote I/O
manager wraps the output functions with network-forwarding variants on the
server (paper, Section 3.4).
"""

from __future__ import annotations

import math
from typing import List

from .interpreter import ExitProgram, Interpreter, InterpreterError
from .machine import Machine
from .values import to_signed, to_unsigned


def install_libc(machine: Machine) -> None:
    """Register every builtin on a machine."""
    for name, fn in _BUILTINS.items():
        machine.register_builtin(name, fn)


def map_range(machine: Machine, address: int, size: int) -> None:
    """Ensure pages backing [address, address+size) exist (zero-filled)."""
    machine.map_range(address, size)


# ---------------------------------------------------------------------------
# Allocation
# ---------------------------------------------------------------------------

def _malloc(interp: Interpreter, args: List) -> int:
    size = int(args[0])
    addr = interp.machine.heap_for_malloc.alloc(size)
    map_range(interp.machine, addr, size)
    interp.charge("alu", 20)
    if interp.observer is not None:
        interp.observer.heap_alloc(size)
    return addr


def _free(interp: Interpreter, args: List) -> None:
    addr = int(args[0])
    if addr:
        interp.machine.heap_for_malloc.free(addr)
    interp.charge("alu", 10)


def _calloc(interp: Interpreter, args: List) -> int:
    count, size = int(args[0]), int(args[1])
    total = count * size
    addr = interp.machine.heap_for_malloc.alloc(total)
    map_range(interp.machine, addr, total)
    interp.machine.memory.write(addr, b"\x00" * total)
    interp.charge("mem", total / 8 + 20)
    if interp.observer is not None:
        interp.observer.heap_alloc(total)
    return addr


def _realloc(interp: Interpreter, args: List) -> int:
    addr, size = int(args[0]), int(args[1])
    heap = interp.machine.heap_for_malloc
    new_addr = heap.alloc(size)
    map_range(interp.machine, new_addr, size)
    if addr:
        old_size = heap.size_of(addr) or 0
        data = interp.machine.memory.read(addr, min(old_size, size))
        interp.machine.memory.write(new_addr, data)
        heap.free(addr)
        interp.charge("mem", min(old_size, size) / 8)
    interp.charge("alu", 30)
    return new_addr


def _u_malloc(interp: Interpreter, args: List) -> int:
    """UVA allocation (Section 3.2's heap allocation replacement target)."""
    size = int(args[0])
    addr = interp.machine.uva_heap.alloc(size)
    map_range(interp.machine, addr, size)
    interp.charge("alu", 22)
    if interp.observer is not None:
        interp.observer.heap_alloc(size)
    return addr


def _u_free(interp: Interpreter, args: List) -> None:
    addr = int(args[0])
    if addr:
        interp.machine.uva_heap.free(addr)
    interp.charge("alu", 10)


def _u_calloc(interp: Interpreter, args: List) -> int:
    count, size = int(args[0]), int(args[1])
    total = count * size
    addr = interp.machine.uva_heap.alloc(total)
    map_range(interp.machine, addr, total)
    interp.machine.memory.write(addr, b"\x00" * total)
    interp.charge("mem", total / 8 + 22)
    if interp.observer is not None:
        interp.observer.heap_alloc(total)
    return addr


def _u_realloc(interp: Interpreter, args: List) -> int:
    addr, size = int(args[0]), int(args[1])
    heap = interp.machine.uva_heap
    new_addr = heap.alloc(size)
    map_range(interp.machine, new_addr, size)
    if addr:
        old_size = heap.size_of(addr) or 0
        data = interp.machine.memory.read(addr, min(old_size, size))
        interp.machine.memory.write(new_addr, data)
        heap.free(addr)
        interp.charge("mem", min(old_size, size) / 8)
    interp.charge("alu", 30)
    return new_addr


# ---------------------------------------------------------------------------
# Memory / string operations
# ---------------------------------------------------------------------------

def _memcpy(interp: Interpreter, args: List) -> int:
    dst, src, n = int(args[0]), int(args[1]), int(args[2])
    if n:
        data = interp.machine.memory.read(src, n)
        interp.machine.memory.write(dst, data)
        if interp._mem_observer is not None:
            interp._mem_observer.memory_access(src, n, False)
            interp._mem_observer.memory_access(dst, n, True)
    interp.charge("mem", n / 8 + 2)
    return dst


def _memmove(interp: Interpreter, args: List) -> int:
    return _memcpy(interp, args)  # reads fully before writing


def _memset(interp: Interpreter, args: List) -> int:
    dst, byte, n = int(args[0]), int(args[1]) & 0xFF, int(args[2])
    if n:
        interp.machine.memory.write(dst, bytes([byte]) * n)
        if interp._mem_observer is not None:
            interp._mem_observer.memory_access(dst, n, True)
    interp.charge("mem", n / 8 + 2)
    return dst


def _strlen(interp: Interpreter, args: List) -> int:
    s = interp.machine.memory.read_cstring(int(args[0]))
    interp.charge("mem", len(s) / 4 + 1)
    return len(s)


def _strcpy(interp: Interpreter, args: List) -> int:
    dst, src = int(args[0]), int(args[1])
    s = interp.machine.memory.read_cstring(src)
    interp.machine.memory.write(dst, s + b"\x00")
    interp.charge("mem", len(s) / 4 + 2)
    return dst


def _strncpy(interp: Interpreter, args: List) -> int:
    dst, src, n = int(args[0]), int(args[1]), int(args[2])
    s = interp.machine.memory.read_cstring(src)[:n]
    interp.machine.memory.write(dst, s.ljust(n, b"\x00"))
    interp.charge("mem", n / 4 + 2)
    return dst


def _strcmp(interp: Interpreter, args: List) -> int:
    a = interp.machine.memory.read_cstring(int(args[0]))
    b = interp.machine.memory.read_cstring(int(args[1]))
    interp.charge("mem", (min(len(a), len(b)) + 1) / 4)
    return to_unsigned((a > b) - (a < b), 32)


def _strncmp(interp: Interpreter, args: List) -> int:
    n = int(args[2])
    a = interp.machine.memory.read_cstring(int(args[0]))[:n]
    b = interp.machine.memory.read_cstring(int(args[1]))[:n]
    interp.charge("mem", (min(len(a), len(b)) + 1) / 4)
    return to_unsigned((a > b) - (a < b), 32)


def _strcat(interp: Interpreter, args: List) -> int:
    dst, src = int(args[0]), int(args[1])
    d = interp.machine.memory.read_cstring(dst)
    s = interp.machine.memory.read_cstring(src)
    interp.machine.memory.write(dst + len(d), s + b"\x00")
    interp.charge("mem", (len(d) + len(s)) / 4)
    return dst


def _atoi(interp: Interpreter, args: List) -> int:
    s = interp.machine.memory.read_cstring(int(args[0])).strip()
    interp.charge("alu", len(s) / 2 + 2)
    i = 0
    sign = 1
    if i < len(s) and s[i:i + 1] in b"+-":
        sign = -1 if s[i:i + 1] == b"-" else 1
        i += 1
    value = 0
    while i < len(s) and s[i:i + 1].isdigit():
        value = value * 10 + (s[i] - ord("0"))
        i += 1
    return to_unsigned(sign * value, 32)


# ---------------------------------------------------------------------------
# printf / scanf machinery
# ---------------------------------------------------------------------------

def format_printf(interp: Interpreter, fmt: bytes, args: List) -> bytes:
    """A C printf formatter over default-promoted varargs."""
    out = bytearray()
    arg_iter = iter(args)
    i = 0
    n = len(fmt)
    while i < n:
        ch = fmt[i:i + 1]
        if ch != b"%":
            out += ch
            i += 1
            continue
        # parse %[flags][width][.prec][length]conv
        j = i + 1
        spec = bytearray(b"%")
        length = b""
        while j < n and fmt[j:j + 1] in b"-+ 0#123456789.*":
            spec += fmt[j:j + 1]
            j += 1
        while j < n and fmt[j:j + 1] in b"lhzq":
            length += fmt[j:j + 1]
            j += 1
        if j >= n:
            out += spec
            break
        conv = fmt[j:j + 1]
        i = j + 1
        text = _format_one(interp, spec.decode(), length.decode(),
                           conv.decode(), arg_iter)
        out += text.encode("utf-8", errors="replace")
    interp.charge("alu", len(out) / 2 + 4)
    return bytes(out)


def _format_one(interp, spec: str, length: str, conv: str, arg_iter) -> str:
    if conv == "%":
        return "%"
    value = next(arg_iter, 0)
    pyspec = spec.replace("%", "", 1)
    if conv in "di":
        bits = 64 if "l" in length else 32
        return f"%{pyspec}d" % to_signed(int(value), bits)
    if conv == "u":
        return f"%{pyspec}d" % int(value)
    if conv in "xX":
        return f"%{pyspec}{conv}" % int(value)
    if conv == "o":
        return f"%{pyspec}o" % int(value)
    if conv in "feEgG":
        return f"%{pyspec}{conv}" % float(value)
    if conv == "c":
        return chr(int(value) & 0xFF)
    if conv == "s":
        data = interp.machine.memory.read_cstring(int(value))
        return f"%{pyspec}s" % data.decode("utf-8", errors="replace")
    if conv == "p":
        return f"0x{int(value):x}"
    raise InterpreterError(f"unsupported printf conversion %{conv}")


def _printf(interp: Interpreter, args: List) -> int:
    fmt = interp.machine.memory.read_cstring(int(args[0]))
    text = format_printf(interp, fmt, args[1:])
    interp.machine.io.write_stdout(text)
    return len(text)


def _sprintf(interp: Interpreter, args: List) -> int:
    buf = int(args[0])
    fmt = interp.machine.memory.read_cstring(int(args[1]))
    text = format_printf(interp, fmt, args[2:])
    interp.machine.memory.write(buf, text + b"\x00")
    return len(text)


def _puts(interp: Interpreter, args: List) -> int:
    s = interp.machine.memory.read_cstring(int(args[0]))
    interp.machine.io.write_stdout(s + b"\n")
    interp.charge("mem", len(s) / 8 + 1)
    return len(s) + 1


def _putchar(interp: Interpreter, args: List) -> int:
    interp.machine.io.write_stdout(bytes([int(args[0]) & 0xFF]))
    interp.charge("alu", 1)
    return int(args[0])


def _skip_space(stdin) -> bytes:
    while True:
        ch = stdin.read(1)
        if not ch:
            return b""
        if not ch.isspace():
            return ch


def _read_token(stdin) -> bytes:
    first = _skip_space(stdin)
    if not first:
        return b""
    token = bytearray(first)
    while True:
        ch = stdin.read(1)
        if not ch:
            break
        if ch.isspace():
            stdin.seek(-1, 1)
            break
        token += ch
    return bytes(token)


def _scanf(interp: Interpreter, args: List) -> int:
    """Interactive stdin scanf — a *machine specific* function that pins
    its callers to the mobile device (Section 3.1)."""
    fmt = interp.machine.memory.read_cstring(int(args[0]))
    stdin = interp.machine.io.stdin
    memory = interp.machine.memory
    assigned = 0
    arg_index = 1
    i = 0
    while i < len(fmt):
        ch = fmt[i:i + 1]
        if ch != b"%":
            i += 1
            continue
        length = b""
        j = i + 1
        while fmt[j:j + 1] in b"lh":
            length += fmt[j:j + 1]
            j += 1
        conv = fmt[j:j + 1]
        i = j + 1
        token = _read_token(stdin)
        if not token:
            break
        ptr = int(args[arg_index])
        arg_index += 1
        try:
            if conv in (b"d", b"u", b"i"):
                value = int(token)
                size = 8 if length in (b"l", b"ll") else 4
                if length == b"hh":
                    size = 1
                elif length == b"h":
                    size = 2
                memory.write(ptr, to_unsigned(value, size * 8)
                             .to_bytes(size, memory_order(interp)))
            elif conv in (b"f", b"e", b"g"):
                import struct as _s
                value = float(token)
                if length == b"l":
                    memory.write(ptr, _s.pack(
                        ("<" if memory_order(interp) == "little" else ">") + "d",
                        value))
                else:
                    memory.write(ptr, _s.pack(
                        ("<" if memory_order(interp) == "little" else ">") + "f",
                        value))
            elif conv == b"s":
                memory.write(ptr, token + b"\x00")
            elif conv == b"c":
                memory.write(ptr, token[:1])
            else:
                raise InterpreterError(
                    f"unsupported scanf conversion %{conv.decode()}")
        except ValueError:
            break
        assigned += 1
    interp.charge("alu", 20)
    return to_unsigned(assigned, 32)


def memory_order(interp: Interpreter) -> str:
    return interp.machine.layout.byte_order


def _getchar(interp: Interpreter, args: List) -> int:
    ch = interp.machine.io.read_stdin(1)
    interp.charge("alu", 2)
    return to_unsigned(ch[0] if ch else -1, 32)


# ---------------------------------------------------------------------------
# File I/O
# ---------------------------------------------------------------------------

def _fopen(interp: Interpreter, args: List) -> int:
    path = interp.machine.memory.read_cstring(int(args[0])).decode()
    mode = interp.machine.memory.read_cstring(int(args[1])).decode()
    interp.charge("alu", 50)
    return interp.machine.io.open(path, mode)


def _fclose(interp: Interpreter, args: List) -> int:
    interp.charge("alu", 20)
    return to_unsigned(interp.machine.io.close(int(args[0])), 32)


def _fread(interp: Interpreter, args: List) -> int:
    ptr, size, count, handle = (int(args[0]), int(args[1]), int(args[2]),
                                int(args[3]))
    f = interp.machine.io.file(handle)
    if f is None:
        return 0
    data = f.read(size * count)
    if data:
        interp.machine.memory.write(ptr, data)
    interp.charge("mem", len(data) / 8 + 10)
    interp.machine.io.file_ops += 1
    return len(data) // size if size else 0


def _fwrite(interp: Interpreter, args: List) -> int:
    ptr, size, count, handle = (int(args[0]), int(args[1]), int(args[2]),
                                int(args[3]))
    f = interp.machine.io.file(handle)
    if f is None:
        return 0
    data = interp.machine.memory.read(ptr, size * count)
    written = f.write(data)
    interp.charge("mem", written / 8 + 10)
    interp.machine.io.file_ops += 1
    return written // size if size else 0


def _fgets(interp: Interpreter, args: List) -> int:
    ptr, limit, handle = int(args[0]), int(args[1]), int(args[2])
    f = interp.machine.io.file(handle)
    if f is None or f.at_eof:
        return 0
    line = f.read_line(limit)
    interp.machine.memory.write(ptr, line + b"\x00")
    interp.charge("mem", len(line) / 8 + 6)
    interp.machine.io.file_ops += 1
    return ptr


def _fgetc(interp: Interpreter, args: List) -> int:
    f = interp.machine.io.file(int(args[0]))
    interp.charge("alu", 3)
    if f is None:
        return to_unsigned(-1, 32)
    ch = f.read(1)
    return to_unsigned(ch[0] if ch else -1, 32)


def _feof(interp: Interpreter, args: List) -> int:
    f = interp.machine.io.file(int(args[0]))
    interp.charge("alu", 2)
    return 1 if (f is None or f.at_eof) else 0


def _fprintf(interp: Interpreter, args: List) -> int:
    handle = int(args[0])
    fmt = interp.machine.memory.read_cstring(int(args[1]))
    text = format_printf(interp, fmt, args[2:])
    f = interp.machine.io.file(handle)
    if f is None:
        # handles 1/2 behave as stdout/stderr
        if handle == 2:
            interp.machine.io.write_stderr(text)
        else:
            interp.machine.io.write_stdout(text)
        return len(text)
    interp.machine.io.file_ops += 1
    return f.write(text)


# ---------------------------------------------------------------------------
# Math and misc
# ---------------------------------------------------------------------------

def _math1(py_fn):
    def builtin(interp: Interpreter, args: List) -> float:
        interp.charge("fpu", 4)
        try:
            return float(py_fn(float(args[0])))
        except ValueError:
            return float("nan")
    return builtin


def _math2(py_fn):
    def builtin(interp: Interpreter, args: List) -> float:
        interp.charge("fpu", 6)
        try:
            return float(py_fn(float(args[0]), float(args[1])))
        except (ValueError, OverflowError):
            return float("nan")
    return builtin


def _abs(interp: Interpreter, args: List) -> int:
    interp.charge("alu", 1)
    return to_unsigned(abs(to_signed(int(args[0]), 32)), 32)


def _labs(interp: Interpreter, args: List) -> int:
    interp.charge("alu", 1)
    return to_unsigned(abs(to_signed(int(args[0]), 64)), 64)


_RAND_MULT = 1103515245
_RAND_INC = 12345


def _rand(interp: Interpreter, args: List) -> int:
    state = getattr(interp.machine, "rand_state", 1)
    state = (state * _RAND_MULT + _RAND_INC) & 0x7FFFFFFF
    interp.machine.rand_state = state
    interp.charge("alu", 4)
    return state


def _srand(interp: Interpreter, args: List) -> None:
    interp.machine.rand_state = int(args[0]) & 0x7FFFFFFF
    interp.charge("alu", 1)


def _exit(interp: Interpreter, args: List):
    raise ExitProgram(to_signed(int(args[0]), 32))


def _clock_ms(interp: Interpreter, args: List) -> int:
    """Deterministic simulated clock in milliseconds."""
    interp.charge("call", 1)
    return to_unsigned(int(interp.time_seconds * 1000), 64)


_BUILTINS = {
    "malloc": _malloc,
    "free": _free,
    "calloc": _calloc,
    "realloc": _realloc,
    "u_malloc": _u_malloc,
    "u_free": _u_free,
    "u_calloc": _u_calloc,
    "u_realloc": _u_realloc,
    "memcpy": _memcpy,
    "memmove": _memmove,
    "memset": _memset,
    "strlen": _strlen,
    "strcpy": _strcpy,
    "strncpy": _strncpy,
    "strcmp": _strcmp,
    "strncmp": _strncmp,
    "strcat": _strcat,
    "atoi": _atoi,
    "printf": _printf,
    "sprintf": _sprintf,
    "puts": _puts,
    "putchar": _putchar,
    "scanf": _scanf,
    "getchar": _getchar,
    "fopen": _fopen,
    "fclose": _fclose,
    "fread": _fread,
    "fwrite": _fwrite,
    "fgets": _fgets,
    "fgetc": _fgetc,
    "feof": _feof,
    "fprintf": _fprintf,
    "sqrt": _math1(math.sqrt),
    "fabs": _math1(abs),
    "sin": _math1(math.sin),
    "cos": _math1(math.cos),
    "tan": _math1(math.tan),
    "exp": _math1(math.exp),
    "log": _math1(math.log),
    "floor": _math1(math.floor),
    "ceil": _math1(math.ceil),
    "pow": _math2(math.pow),
    "fmod": _math2(math.fmod),
    "atan2": _math2(math.atan2),
    "abs": _abs,
    "labs": _labs,
    "rand": _rand,
    "srand": _srand,
    "exit": _exit,
    "clock_ms": _clock_ms,
}
