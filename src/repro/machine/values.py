"""Scalar encode/decode between Python values and target memory bytes.

All the architecture-awareness of a memory access funnels through here:
byte order, pointer width (with the 32->64 zero extension of the
address-size conversion pass) and IEEE-754 encodings.
"""

from __future__ import annotations

import struct

from ..ir.types import FloatType, IRType, IntType, PointerType
from ..targets.abi import DataLayout


def to_signed(value: int, bits: int) -> int:
    """Reinterpret an unsigned ``bits``-wide value as signed."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int) -> int:
    """Canonicalize a Python int to the unsigned ``bits``-wide form."""
    return value & ((1 << bits) - 1)


def encode_scalar(value, type: IRType, layout: DataLayout) -> bytes:
    """Encode one scalar value for storage under ``layout``."""
    order = layout.byte_order
    if isinstance(type, IntType):
        size = max(1, type.bits // 8)
        return int(value).to_bytes(size, order)
    if isinstance(type, FloatType):
        fmt = ("<" if order == "little" else ">") + ("f" if type.bits == 32 else "d")
        return struct.pack(fmt, float(value))
    if isinstance(type, PointerType):
        size = layout.pointer_bytes
        addr = int(value)
        if addr >= 1 << (size * 8):
            raise OverflowError(
                f"pointer {addr:#x} does not fit in {size}-byte pointer; "
                "address-size unification requires UVA addresses below "
                f"2^{size * 8}")
        return addr.to_bytes(size, order)
    raise TypeError(f"cannot encode non-scalar type {type}")


def decode_scalar(data: bytes, type: IRType, layout: DataLayout):
    """Decode one scalar value stored under ``layout``."""
    order = layout.byte_order
    if isinstance(type, IntType):
        return int.from_bytes(data, order)
    if isinstance(type, FloatType):
        fmt = ("<" if order == "little" else ">") + ("f" if type.bits == 32 else "d")
        return struct.unpack(fmt, data)[0]
    if isinstance(type, PointerType):
        # Zero-extension of narrow stored pointers happens implicitly:
        # the decoded Python int is the full address.
        return int.from_bytes(data, order)
    raise TypeError(f"cannot decode non-scalar type {type}")


def scalar_size(type: IRType, layout: DataLayout) -> int:
    if isinstance(type, IntType):
        return max(1, type.bits // 8)
    if isinstance(type, FloatType):
        return type.bits // 8
    if isinstance(type, PointerType):
        return layout.pointer_bytes
    raise TypeError(f"{type} is not scalar")
