"""First-fit free-list allocator used for native heaps and the UVA heap.

The UVA heap allocator must behave *identically* on the mobile device and
the server (same base, same policy), so that u_malloc produces the same
addresses on both sides and pointers stay valid across migration.  The
allocator is deliberately deterministic and its state is serializable so the
runtime can hand it across machines at offload boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class OutOfMemoryError(Exception):
    pass


class Allocator:
    def __init__(self, base: int, size: int, align: int = 16):
        if base <= 0:
            raise ValueError("allocator base must be positive (0 is NULL)")
        self.base = base
        self.size = size
        self.align = align
        # Sorted list of free (start, size) extents.
        self.free_list: List[Tuple[int, int]] = [(base, size)]
        self.allocations: Dict[int, int] = {}  # addr -> size
        self.peak_bytes = 0
        self.live_bytes = 0
        self.total_allocated = 0

    def alloc(self, size: int) -> int:
        if size <= 0:
            size = 1
        size = _round_up(size, self.align)
        for i, (start, extent) in enumerate(self.free_list):
            if extent >= size:
                self.free_list[i] = (start + size, extent - size)
                if self.free_list[i][1] == 0:
                    del self.free_list[i]
                self.allocations[start] = size
                self.live_bytes += size
                self.total_allocated += size
                self.peak_bytes = max(self.peak_bytes, self.live_bytes)
                return start
        raise OutOfMemoryError(
            f"cannot allocate {size} bytes from heap at {self.base:#x}")

    def free(self, addr: int) -> None:
        if addr == 0:
            return
        size = self.allocations.pop(addr, None)
        if size is None:
            raise ValueError(f"free of unallocated address {addr:#x}")
        self.live_bytes -= size
        self._insert_free(addr, size)

    def size_of(self, addr: int) -> Optional[int]:
        return self.allocations.get(addr)

    def owns(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def _insert_free(self, addr: int, size: int) -> None:
        # Insert keeping order, coalescing with neighbours.
        lo, hi = 0, len(self.free_list)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.free_list[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        self.free_list.insert(lo, (addr, size))
        self._coalesce(lo)
        if lo > 0:
            self._coalesce(lo - 1)

    def _coalesce(self, index: int) -> None:
        while index + 1 < len(self.free_list):
            start, size = self.free_list[index]
            nstart, nsize = self.free_list[index + 1]
            if start + size == nstart:
                self.free_list[index] = (start, size + nsize)
                del self.free_list[index + 1]
            else:
                break

    # -- state transfer ----------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "base": self.base,
            "size": self.size,
            "align": self.align,
            "free_list": list(self.free_list),
            "allocations": dict(self.allocations),
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "total_allocated": self.total_allocated,
        }

    def restore(self, state: dict) -> None:
        if state["base"] != self.base or state["size"] != self.size:
            raise ValueError("allocator geometry mismatch")
        self.free_list = [tuple(e) for e in state["free_list"]]
        self.allocations = dict(state["allocations"])
        self.live_bytes = state["live_bytes"]
        self.peak_bytes = state["peak_bytes"]
        self.total_allocated = state["total_allocated"]


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align
